"""Suspected-peer exclusion via forged protocol messages.

To let a quorum degrade to the live partition, the recovery layer makes a
stalled process *stop waiting* for a suspected peer.  It never writes the
process's variables: it forges exactly the message(s) the suspect would
have sent and feeds them through the process's own receive handlers --
the same channel the wrapper's retransmitted requests use, so the repair
stays inside the protocol's message semantics:

* **RA family** (``RA_ME``, ``RACount_ME``): a forged REPLY from the
  suspect carrying a timestamp above the waiter's request raises
  ``j.REQ_k`` past ``REQ_j`` (and clears ``awaiting`` for the counting
  variant);
* **Lamport_ME**: a forged REPLY sets the grant bit and a forged RELEASE
  removes the suspect's queue entry;
* **TokenRing_ME**: no message can substitute for the token -- exclusion
  is unsupported and the watchdog has to escalate to a reset (the token
  ring stays the negative control under churn too).

Delivery is synthetic-local (``execute_receive`` directly, not through a
channel): the point of exclusion is precisely that the network towards the
suspect may be partitioned away.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.clocks.timestamps import Timestamp
from repro.runtime.messages import Message
from repro.tme.interfaces import RELEASE, REPLY

if TYPE_CHECKING:
    from repro.runtime.simulator import Simulator

#: Message kinds forged per base program to exclude one suspect.
_EXCLUSION_KINDS: dict[str, tuple[str, ...]] = {
    "RA_ME": (REPLY,),
    "RACount_ME": (REPLY,),
    "Lamport_ME": (REPLY, RELEASE),
}


def exclusion_supported(base_name: str) -> bool:
    """Can this implementation exclude a peer by message forgery?"""
    return base_name in _EXCLUSION_KINDS


def _yield_stamp(simulator: "Simulator", waiter: str, suspect: str) -> Timestamp:
    """A timestamp strictly above the waiter's current request, owned by
    the suspect -- what the suspect's reply would have carried had it
    yielded."""
    variables = simulator.processes[waiter].variables
    lc = variables.get("lc")
    if not isinstance(lc, int) or lc < 0:
        lc = 0
    req = variables.get("req")
    req_clock = req.clock if isinstance(req, Timestamp) else 0
    return Timestamp(max(lc, req_clock) + 1, suspect)


def forge_exclusion(
    simulator: "Simulator", waiter: str, suspect: str, base_name: str
) -> int:
    """Deliver the forged message(s) excluding ``suspect`` at ``waiter``.

    Returns the number of messages forged (0 when unsupported).  Any sends
    the handlers produce are forwarded onto the network (none of the four
    implementations reply to a REPLY or RELEASE, but a fifth might).
    """
    kinds = _EXCLUSION_KINDS.get(base_name)
    if not kinds:
        return 0
    proc = simulator.processes[waiter]
    network = simulator.network
    forged = 0
    for kind in kinds:
        stamp = _yield_stamp(simulator, waiter, suspect)
        message = Message(
            uid=network.fresh_uid(),
            kind=kind,
            sender=suspect,
            receiver=waiter,
            payload=stamp,
            send_event_uid=None,
            sender_clock=stamp.clock,
        )
        effect = proc.execute_receive(message)
        forged += 1
        if effect is not None:
            for send in effect.sends:
                network.send(
                    send.kind,
                    waiter,
                    send.receiver,
                    send.payload,
                    send_event_uid=None,
                    sender_clock=None,
                )
    return forged
