"""Self-healing recovery: failure detection, progress watchdog, escalation.

The graybox wrapper of the paper is a *corrector*: it guarantees eventual
convergence after any finite number of transient faults.  Under crash
churn and partitions a production service additionally needs an *online*
recovery layer that notices lost progress and intervenes.  This package
provides one, built from three deterministic parts:

* :class:`~repro.recovery.detector.HeartbeatDetector` -- a timeout-based
  failure detector over an out-of-band heartbeat plane that respects the
  runtime's crash states and link masks, with measured detection latency
  against ground truth;
* :class:`~repro.recovery.watchdog.ProgressWatchdog` -- notices a stalled
  clean window (demand but no CS entries) and schedules escalation stages;
* :mod:`~repro.recovery.exclusion` -- suspected-peer exclusion realized by
  forging the protocol messages a dead peer would have sent (REPLY for the
  RA family, REPLY+RELEASE for Lamport), so quorums degrade gracefully to
  the live partition without touching any private variable directly.

:class:`~repro.recovery.manager.RecoveryManager` composes them behind the
standard :class:`~repro.faults.injector.FaultInjector` hook.  Everything is
RNG-free and keyed only on the observed trajectory, so a trial that runs
with recovery enabled replays bit-for-bit from its recorded scheduler and
fault decisions alone.
"""

from repro.recovery.detector import HeartbeatDetector
from repro.recovery.exclusion import exclusion_supported, forge_exclusion
from repro.recovery.manager import (
    RecoveryConfig,
    RecoveryManager,
    RecoveryMetrics,
    default_stall_window,
)
from repro.recovery.watchdog import ProgressWatchdog

__all__ = [
    "HeartbeatDetector",
    "ProgressWatchdog",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryMetrics",
    "default_stall_window",
    "exclusion_supported",
    "forge_exclusion",
]
