"""The recovery manager: detector + watchdog + staged interventions.

:class:`RecoveryManager` is a :class:`~repro.faults.injector.FaultInjector`
(anti-fault, really): it composes with the campaign's deciding/replaying
injectors through the ordinary :class:`~repro.faults.injector.Composite`
hook and acts before each step.  It is deliberately RNG-free -- every
intervention is a deterministic function of the observed trajectory -- so
recovery actions never need to be recorded for a trial to replay
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.clocks.timestamps import Timestamp
from repro.faults.injector import FaultInjector
from repro.recovery.detector import HeartbeatDetector
from repro.recovery.exclusion import exclusion_supported, forge_exclusion
from repro.recovery.watchdog import (
    STAGE_EXCLUDE,
    STAGE_GLOBAL_RESET,
    STAGE_LOCAL_RESET,
    STAGE_RETRANSMIT,
    ProgressWatchdog,
    base_program_name,
)
from repro.tme.interfaces import REQUEST, adapter_for

if TYPE_CHECKING:
    from repro.runtime.simulator import Simulator

#: Implementations whose stalled requests can be usefully retransmitted.
_RETRANSMIT_BASES = frozenset({"RA_ME", "RACount_ME", "Lamport_ME"})


def default_stall_window(n: int) -> int:
    """Stall threshold: a clean window must fit O(n^2) serialized message
    deliveries per CS entry (same scaling as the campaign monitor)."""
    return max(40, 3 * n * n)


@dataclass(frozen=True)
class RecoveryConfig:
    """Tuning knobs of the recovery subsystem (all in simulator steps)."""

    heartbeat_interval: int = 5
    heartbeat_timeout: int = 20
    #: ``None`` -> :func:`default_stall_window` of the system size.
    stall_window: int | None = None
    #: Initial retransmission backoff; doubles per retransmission.
    #: ``None`` -> ``max(10, stall_window // 4)``.
    backoff_base: int | None = None
    exclusion: bool = True
    resets: bool = True


@dataclass(frozen=True)
class RecoveryMetrics:
    """What the recovery layer observed and did during one run."""

    detection_latencies: tuple[int, ...]
    recovery_latencies: tuple[int, ...]
    stage_counts: tuple[tuple[str, int], ...]
    incidents: int
    retransmissions: int
    exclusions: int
    local_resets: int
    global_resets: int
    entries_seen: int


class RecoveryManager(FaultInjector):
    """Watch, detect, and escalate.  See the package docstring."""

    def __init__(self, config: RecoveryConfig | None = None):
        self.config = config or RecoveryConfig()
        self.detector: HeartbeatDetector | None = None
        self.watchdog: ProgressWatchdog | None = None
        self.retransmissions = 0
        self.exclusions = 0
        self.local_resets = 0
        self.global_resets = 0

    def _attach(self, simulator: "Simulator") -> None:
        n = len(simulator.processes)
        window = self.config.stall_window or default_stall_window(n)
        backoff = self.config.backoff_base or max(10, window // 4)
        self.detector = HeartbeatDetector(
            self.config.heartbeat_interval, self.config.heartbeat_timeout
        )
        self.watchdog = ProgressWatchdog(window, backoff)

    # -- the FaultInjector hook ---------------------------------------------

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.detector is None or self.watchdog is None:
            self._attach(simulator)
        assert self.detector is not None and self.watchdog is not None
        self.detector.observe(simulator, step_index)
        self.watchdog.observe(simulator, step_index)
        actions: list[str] = []
        for stage in self.watchdog.due_stages(step_index):
            if stage == STAGE_RETRANSMIT:
                description = self._retransmit(simulator)
            elif stage == STAGE_EXCLUDE and self.config.exclusion:
                description = self._exclude(simulator)
            elif stage == STAGE_LOCAL_RESET and self.config.resets:
                description = self._local_reset(simulator)
            elif stage == STAGE_GLOBAL_RESET and self.config.resets:
                description = self._global_reset(simulator)
            else:
                description = None
            if description is not None:
                self.watchdog.fired(stage, step_index)
                actions.append(description)
        return actions

    # -- stages --------------------------------------------------------------

    def _lspec(self, simulator: "Simulator", pid: str):
        proc = simulator.processes[pid]
        adapter = adapter_for(base_program_name(proc.program.name))
        return adapter(proc.variables, pid, proc.peers)

    def _retransmit(self, simulator: "Simulator") -> str | None:
        """Re-send each stalled hungry process's request to every peer
        whose copy has not yet risen above it (the wrapper's suspect set,
        computed through the adapter)."""
        assert self.watchdog is not None
        sent = 0
        waiters: list[str] = []
        for pid in self.watchdog.hungry_live_pids(simulator):
            proc = simulator.processes[pid]
            if base_program_name(proc.program.name) not in _RETRANSMIT_BASES:
                continue
            lspec = self._lspec(simulator, pid)
            req = lspec.req
            targets = [
                k
                for k in sorted(lspec.req_of)
                if not (
                    isinstance(lspec.req_of[k], Timestamp)
                    and req.lt(lspec.req_of[k])
                )
            ]
            for k in targets:
                simulator.network.send(
                    REQUEST,
                    pid,
                    k,
                    req,
                    send_event_uid=None,
                    sender_clock=lspec.lc,
                )
            if targets:
                sent += len(targets)
                waiters.append(pid)
        if not sent:
            return None
        self.retransmissions += sent
        return f"recover:retransmit {','.join(waiters)} ({sent} req)"

    def _exclude(self, simulator: "Simulator") -> str | None:
        """Exclude heartbeat-suspected peers at stalled waiters -- but only
        where the waiter's reachable, unsuspected neighbourhood (itself
        included) still forms a strict majority, so a minority partition
        can never grant itself the CS."""
        assert self.detector is not None and self.watchdog is not None
        n = len(simulator.processes)
        network = simulator.network
        excluded: list[str] = []
        for pid in self.watchdog.hungry_live_pids(simulator):
            proc = simulator.processes[pid]
            base = base_program_name(proc.program.name)
            if not exclusion_supported(base):
                continue
            reachable = 1 + sum(
                1
                for k in proc.peers
                if simulator.processes[k].is_live
                and network.link_up(k, pid)
                and network.link_up(pid, k)
                and not self.detector.is_suspected(pid, k)
            )
            if 2 * reachable <= n:
                continue
            lspec = self._lspec(simulator, pid)
            req = lspec.req
            for k in self.detector.suspects_of(pid):
                if k not in lspec.req_of:
                    continue
                copy = lspec.req_of[k]
                if isinstance(copy, Timestamp) and req.lt(copy):
                    continue  # already past our request: nothing to forge
                forged = forge_exclusion(simulator, pid, k, base)
                if forged:
                    self.exclusions += 1
                    excluded.append(f"{pid}-x-{k}")
        if not excluded:
            return None
        return f"recover:exclude {','.join(excluded)}"

    def _local_reset(self, simulator: "Simulator") -> str | None:
        """Last resort, stage 1: reset the stalled hungry processes to
        their initial valuation (the corrector handles the rest)."""
        assert self.watchdog is not None
        reset = []
        for pid in self.watchdog.hungry_live_pids(simulator):
            proc = simulator.processes[pid]
            proc.improper_init(proc.program.initial_vars)
            reset.append(pid)
        if not reset:
            return None
        self.local_resets += len(reset)
        return f"recover:local-reset {','.join(reset)}"

    def _global_reset(self, simulator: "Simulator") -> str | None:
        """Last resort, stage 2: re-initialize every live process and flush
        all channels.  This is the only stage that helps the token ring
        (it mints the ring's single token afresh)."""
        flushed = simulator.network.flush_all()
        reset = []
        for pid in simulator.network.pids:
            proc = simulator.processes[pid]
            if proc.is_live:
                proc.improper_init(proc.program.initial_vars)
                reset.append(pid)
        self.global_resets += 1
        return f"recover:global-reset ({len(reset)} procs, {flushed} msgs flushed)"

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> RecoveryMetrics:
        """Immutable snapshot of everything measured so far."""
        detector = self.detector
        watchdog = self.watchdog
        return RecoveryMetrics(
            detection_latencies=tuple(
                detector.detection_latencies if detector else ()
            ),
            recovery_latencies=tuple(
                watchdog.recovery_latencies if watchdog else ()
            ),
            stage_counts=tuple(
                sorted(watchdog.stage_counts.items()) if watchdog else ()
            ),
            incidents=detector.incidents if detector else 0,
            retransmissions=self.retransmissions,
            exclusions=self.exclusions,
            local_resets=self.local_resets,
            global_resets=self.global_resets,
            entries_seen=watchdog.entries_seen if watchdog else 0,
        )
