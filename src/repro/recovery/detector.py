"""Timeout-based heartbeat failure detection.

The detector models an out-of-band heartbeat plane: every
``heartbeat_interval`` steps each live process emits a heartbeat to every
peer, and the beat arrives iff the emitter is live and the link towards the
observer is up.  An observer suspects a peer once it has heard nothing for
more than ``heartbeat_timeout`` steps.  Nothing here mutates the simulator:
the detector only *reads* lifecycle status and link masks, so it cannot
perturb a trace.

Ground truth is available in simulation (a peer is unreachable from an
observer exactly when it is crashed or the link towards the observer is
cut), so detection latency is measured per incident: the gap between the
onset of unreachability and the step the observer first suspects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.runtime.simulator import Simulator

Pair = tuple[str, str]  # (observer, subject)


class HeartbeatDetector:
    """Per-observer suspicion over the heartbeat plane."""

    def __init__(self, heartbeat_interval: int, heartbeat_timeout: int):
        if heartbeat_interval < 1:
            raise ValueError("heartbeat_interval must be >= 1")
        if heartbeat_timeout < heartbeat_interval:
            raise ValueError("heartbeat_timeout must be >= heartbeat_interval")
        self.interval = heartbeat_interval
        self.timeout = heartbeat_timeout
        self._last_heard: dict[Pair, int] = {}
        self._suspected: set[Pair] = set()
        #: Open incidents: (observer, subject) -> unreachability onset step.
        self._incident_onset: dict[Pair, int] = {}
        self.detection_latencies: list[int] = []
        self.incidents = 0

    def observe(self, simulator: "Simulator", step_index: int) -> None:
        """Advance the heartbeat plane by one step."""
        processes = simulator.processes
        network = simulator.network
        beat = step_index % self.interval == 0
        for subject in network.pids:
            subject_live = processes[subject].is_live
            for observer in network.pids:
                if observer == subject:
                    continue
                pair = (observer, subject)
                if pair not in self._last_heard:
                    # Grace: assume freshly heard at attach time.
                    self._last_heard[pair] = step_index
                reachable = subject_live and network.link_up(subject, observer)
                if beat and reachable:
                    self._last_heard[pair] = step_index
                # Ground-truth incident bookkeeping.
                if not reachable:
                    self._incident_onset.setdefault(pair, step_index)
                elif pair not in self._suspected:
                    # Recovered before anyone noticed: close silently.
                    self._incident_onset.pop(pair, None)
                # Suspicion.
                silent = step_index - self._last_heard[pair]
                if silent > self.timeout:
                    if pair not in self._suspected:
                        self._suspected.add(pair)
                        onset = self._incident_onset.get(pair)
                        if onset is not None:
                            self.incidents += 1
                            self.detection_latencies.append(step_index - onset)
                else:
                    if pair in self._suspected:
                        self._suspected.discard(pair)
                        if reachable:
                            self._incident_onset.pop(pair, None)

    def suspects_of(self, observer: str) -> tuple[str, ...]:
        """Peers ``observer`` currently suspects (sorted)."""
        return tuple(
            sorted(s for (o, s) in self._suspected if o == observer)
        )

    def is_suspected(self, observer: str, subject: str) -> bool:
        """Does ``observer`` currently suspect ``subject``?"""
        return (observer, subject) in self._suspected
