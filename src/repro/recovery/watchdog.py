"""The progress watchdog: stall detection and escalation scheduling.

The watchdog observes the system through the Lspec interface adapters
(phase only -- it needs to know who is hungry and who is eating, nothing
private).  A *stall* is a clean window with demand but no CS entry: some
live process is hungry, yet no process has entered the CS for more than
``stall_window`` steps.  Escalation is staged by stall duration:

=========  ===============================================================
``>= W``   request retransmission, repeated with exponential backoff
``>= 2W``  suspected-peer exclusion (quorums degrade to the live majority)
``>= 3W``  local reset of the stalled hungry processes
``>= 4W``  global reset (all live processes + channel flush); the stall
           clock restarts so the escalation ladder is climbed again
=========  ===============================================================

where ``W`` is the stall window.  Recovery latency is measured per stall
episode: from the first escalation action to the next observed CS entry,
attributed to the highest stage that fired.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tme.interfaces import EATING, HUNGRY, adapter_for

if TYPE_CHECKING:
    from repro.runtime.simulator import Simulator

STAGE_RETRANSMIT = "retransmit"
STAGE_EXCLUDE = "exclude"
STAGE_LOCAL_RESET = "local_reset"
STAGE_GLOBAL_RESET = "global_reset"

_STAGE_ORDER = (
    STAGE_RETRANSMIT,
    STAGE_EXCLUDE,
    STAGE_LOCAL_RESET,
    STAGE_GLOBAL_RESET,
)


def base_program_name(name: str) -> str:
    """The implementation's name without the wrapper suffix
    (``"RA_ME+W'(theta=3)"`` -> ``"RA_ME"``)."""
    return name.split("+")[0]


def lspec_phase(simulator: "Simulator", pid: str) -> str:
    """The Lspec ``phase`` of one process, through its adapter."""
    proc = simulator.processes[pid]
    adapter = adapter_for(base_program_name(proc.program.name))
    return adapter(proc.variables, pid, proc.peers).phase


class ProgressWatchdog:
    """Tracks demand, CS entries, stall duration, and episode metrics."""

    def __init__(self, stall_window: int, backoff_base: int):
        if stall_window < 1:
            raise ValueError("stall_window must be >= 1")
        if backoff_base < 1:
            raise ValueError("backoff_base must be >= 1")
        self.stall_window = stall_window
        self.backoff_base = backoff_base
        self._phases: dict[str, str] = {}
        self._last_progress = 0
        self.entries_seen = 0
        # Stall-episode state.
        self._episode_first_fire: int | None = None
        self._episode_top_stage: str | None = None
        self._next_retransmit_offset = stall_window
        self._backoff = backoff_base
        self._fired_this_episode: set[str] = set()
        # Metrics.
        self.recovery_latencies: list[int] = []
        self.stage_recoveries: dict[str, list[int]] = {
            s: [] for s in _STAGE_ORDER
        }
        self.stage_counts: dict[str, int] = {s: 0 for s in _STAGE_ORDER}

    # -- observation --------------------------------------------------------

    def observe(self, simulator: "Simulator", step_index: int) -> bool:
        """Update phase tracking; returns whether a CS entry was observed."""
        entry = False
        hungry = False
        for pid in simulator.network.pids:
            proc = simulator.processes[pid]
            if not proc.is_live:
                self._phases.pop(pid, None)
                continue
            phase = lspec_phase(simulator, pid)
            if phase == EATING and self._phases.get(pid) != EATING:
                entry = True
            if phase == HUNGRY:
                hungry = True
            self._phases[pid] = phase
        if entry:
            self.entries_seen += 1
            self._last_progress = step_index
            self._close_episode(step_index)
        elif not hungry:
            # No demand: a quiet system is not a stalled one.
            self._last_progress = step_index
        return entry

    def stall_duration(self, step_index: int) -> int:
        """Steps since the last CS entry (0 when there is no demand)."""
        return step_index - self._last_progress

    def hungry_live_pids(self, simulator: "Simulator") -> tuple[str, ...]:
        """Live processes currently hungry (sorted)."""
        return tuple(
            pid
            for pid in simulator.network.pids
            if simulator.processes[pid].is_live
            and self._phases.get(pid) == HUNGRY
        )

    # -- escalation schedule -------------------------------------------------

    def due_stages(self, step_index: int) -> list[str]:
        """Stages whose threshold the current stall has crossed and that
        have not fired yet this episode (retransmission repeats on its
        backoff schedule instead)."""
        stall = self.stall_duration(step_index)
        w = self.stall_window
        due: list[str] = []
        if stall >= self._next_retransmit_offset:
            due.append(STAGE_RETRANSMIT)
        for threshold, stage in (
            (2 * w, STAGE_EXCLUDE),
            (3 * w, STAGE_LOCAL_RESET),
            (4 * w, STAGE_GLOBAL_RESET),
        ):
            if stall >= threshold and stage not in self._fired_this_episode:
                due.append(stage)
        return due

    def fired(self, stage: str, step_index: int) -> None:
        """Record that an escalation stage actually acted."""
        self.stage_counts[stage] += 1
        if self._episode_first_fire is None:
            self._episode_first_fire = step_index
        if self._episode_top_stage is None or _STAGE_ORDER.index(
            stage
        ) > _STAGE_ORDER.index(self._episode_top_stage):
            self._episode_top_stage = stage
        if stage == STAGE_RETRANSMIT:
            self._next_retransmit_offset += self._backoff
            self._backoff *= 2
        else:
            self._fired_this_episode.add(stage)
        if stage == STAGE_GLOBAL_RESET:
            # Restart the stall clock: the system was just re-initialized,
            # give it a full window (and a fresh ladder) to make progress.
            self._last_progress = step_index
            self._next_retransmit_offset = self.stall_window
            self._backoff = self.backoff_base
            self._fired_this_episode.clear()

    def _close_episode(self, step_index: int) -> None:
        if self._episode_first_fire is not None:
            latency = step_index - self._episode_first_fire
            self.recovery_latencies.append(latency)
            if self._episode_top_stage is not None:
                self.stage_recoveries[self._episode_top_stage].append(latency)
        self._episode_first_fire = None
        self._episode_top_stage = None
        self._next_retransmit_offset = self.stall_window
        self._backoff = self.backoff_base
        self._fired_this_episode.clear()
