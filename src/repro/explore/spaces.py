"""State-space adapters for the exploration engine.

A :class:`StateSpace` is anything with root nodes and a successor
function.  Three concrete spaces cover the repository's searches:

* :class:`TransitionSystemSpace` -- the finite graphs of
  :class:`~repro.core.system.TransitionSystem` (reachability for the
  refinement/stabilization relations and the theorem checks);
* :class:`GlobalSimulatorSpace` -- the *global* product space of a live
  :class:`~repro.runtime.simulator.Simulator` (the whitebox verification
  surface of Section 1), expanded by copy-on-write
  :meth:`~repro.runtime.simulator.Simulator.fork` instead of rebuilding a
  simulator per branch;
* :class:`LocalProcessSpace` -- the *local* space of one
  :class:`~repro.runtime.process.ProcessRuntime` under a bounded message
  alphabet (the graybox per-process surface; the system-wide graybox cost
  is the sum over processes, not the product).

Nodes may be arbitrary carrier objects (e.g. live simulators); ``key``
maps a node to the hashable state identity used for deduplication.

Two optional hooks refine how the engine stores and deduplicates keys:

* ``canonical_key(key)`` -- maps a key to its orbit representative under
  process-permutation symmetry (see :mod:`repro.explore.canon`).  The
  simulator-backed spaces opt in via their ``symmetry`` argument;
  :class:`TransitionSystemSpace` deliberately never defines it, so the
  relation/theorem checks stay exact.
* ``codec`` -- a :class:`~repro.explore.store.StateCodec` the engine
  uses to intern keys into packed blobs instead of keeping the full
  object graphs in the visited set (see :mod:`repro.explore.store`).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.core.system import StateLike, TransitionSystem
    from repro.dsl.program import ProcessProgram
    from repro.runtime.simulator import Simulator
    from repro.runtime.trace import GlobalState

#: Symmetry group selectors accepted by the simulator-backed spaces.
FULL_SYMMETRY = "full"
RING_SYMMETRY = "ring"


@runtime_checkable
class StateSpace(Protocol):
    """Root states plus a successor function, with a dedup key."""

    def roots(self) -> Iterable[Any]:
        """The nodes exploration starts from."""
        ...

    def successors(self, node: Any) -> Iterable[Any]:
        """All nodes one transition away from ``node``."""
        ...

    def key(self, node: Any) -> Hashable:
        """The hashable state identity of ``node`` (dedup key)."""
        ...


class TransitionSystemSpace:
    """The graph of a :class:`~repro.core.system.TransitionSystem`.

    ``sources`` overrides the roots (default: the system's initial
    states); unknown sources raise :class:`KeyError` exactly as
    :meth:`TransitionSystem.reachable_from` always has.
    """

    def __init__(
        self,
        system: "TransitionSystem",
        sources: Iterable["StateLike"] | None = None,
    ):
        self.system = system
        self.sources = (
            tuple(system.initial) if sources is None else tuple(sources)
        )

    def roots(self) -> Iterator["StateLike"]:
        for s in self.sources:
            if s not in self.system.transitions:
                raise KeyError(f"{self.system.name}: unknown state {s!r}")
            yield s

    def successors(self, node: "StateLike") -> Iterable["StateLike"]:
        return self.system.transitions[node]

    def key(self, node: "StateLike") -> Hashable:
        return node


class _GlobalNode:
    """A live simulator paired with its (already materialised) snapshot.

    ``delta`` is the touched-component record of the step that produced
    this node from its parent -- ``(changed_pid | None, touched channel
    keys)`` -- or ``None`` for roots.  The packed canonicalizer patches
    parent candidate vectors with exactly these components instead of
    rebuilding them (see :mod:`repro.explore.packed`).
    """

    __slots__ = ("sim", "state", "delta")

    def __init__(
        self,
        sim: "Simulator",
        state: "GlobalState",
        delta: tuple[str | None, tuple[tuple[str, str], ...]] | None = None,
    ):
        self.sim = sim
        self.state = state
        self.delta = delta


class GlobalSimulatorSpace:
    """The global state space of a simulated system (whitebox surface).

    Nodes carry a live :class:`~repro.runtime.simulator.Simulator`
    alongside its :class:`~repro.runtime.trace.GlobalState` snapshot (the
    dedup key).  Expansion forks the node's simulator once per candidate
    step -- no simulator is ever rebuilt from scratch -- and successor
    snapshots are derived *incrementally* from the parent snapshot: one
    step touches exactly one process and at most a handful of channels
    (the executed :class:`~repro.runtime.trace.StepRecord` names them),
    so everything else is shared structurally.

    Snapshots deliberately erase message metadata (uids, piggybacked
    sender clocks), so the successor function must be a function of the
    *snapshot* for the explored graph to be well defined on snapshot
    states.  Simulators are therefore canonicalised on entry to the
    space (:meth:`roots` / :meth:`restore` drop any
    ``send_event_uid``/``sender_clock``), and :meth:`successors` sends
    all messages metadata-free, keeping every reachable node canonical --
    which matches the historical rebuild-from-snapshot semantics exactly.

    ``symmetry`` opts the space into process-permutation reduction:
    ``"full"`` (or ``True``) quotients under every pid permutation --
    sound for the pid-template TME systems (RA, RA-count, Lamport, the
    wrapper) -- while ``"ring"`` quotients under rotations only (the
    token ring's ``nxt`` topology is not invariant under arbitrary
    permutations).  When enabled, :attr:`canonical_key` maps a snapshot
    to its least orbit member and the engine deduplicates in quotient
    space; the frontier still carries the first-seen (genuinely
    reachable) member of each orbit, so expansion never runs from a
    merely-renamed state.
    """

    def __init__(
        self,
        programs: Mapping[str, "ProcessProgram"],
        symmetry: str | bool | None = None,
    ):
        from repro.explore.canon import (
            canonical_global,
            full_symmetry,
            ring_rotations,
        )
        from repro.explore.packed import PackedGlobalCanonicalizer
        from repro.explore.store import GlobalStateCodec

        self.programs = dict(programs)
        #: packs snapshots into interned blobs for the visited store.
        self.codec = GlobalStateCodec()
        pids = tuple(sorted(self.programs))
        if symmetry in (None, False):
            self.symmetry_group: tuple[dict[str, str], ...] = ()
        elif symmetry in (FULL_SYMMETRY, True):
            self.symmetry_group = full_symmetry(pids)
        elif symmetry == RING_SYMMETRY:
            self.symmetry_group = ring_rotations(pids)
        else:
            raise ValueError(
                f"unknown symmetry {symmetry!r}; use "
                f"{FULL_SYMMETRY!r}, {RING_SYMMETRY!r}, True, or None"
            )
        if self.symmetry_group:
            group = self.symmetry_group
            # Reference path (kept as the spec and for callers that want
            # the object-level map) ...
            self.canonical_key = (
                lambda state: canonical_global(state, group)
            )
            # ... and the packed-token fast path the engine prefers.
            self.packed_canon = PackedGlobalCanonicalizer(
                self.codec, pids, group
            )
        # pid -> position in GlobalState.processes, channel -> position in
        # GlobalState.channels; fixed for the whole space, filled lazily
        # from the first snapshot _delta_state sees.
        self._proc_index: dict[str, int] | None = None
        self._chan_index: dict[tuple[str, str], int] = {}

    def roots(self) -> Iterator[_GlobalNode]:
        from repro.runtime.scheduler import RoundRobinScheduler
        from repro.runtime.simulator import Simulator

        sim = Simulator(
            self.programs, RoundRobinScheduler(), record_states=False
        )
        sim.record_trace = False
        self._canonicalize(sim)
        yield _GlobalNode(sim, sim.snapshot())

    @staticmethod
    def _canonicalize(sim: "Simulator") -> None:
        """Strip non-snapshot message metadata in place (own forks only)."""
        for chan in sim.network.channels():
            if chan.empty:
                continue
            if all(
                m.send_event_uid is None and m.sender_clock is None
                for m in chan
            ):
                continue
            chan.replace_contents(
                m
                if m.send_event_uid is None and m.sender_clock is None
                else replace(m, send_event_uid=None, sender_clock=None)
                for m in chan.snapshot()
            )

    def _successor_state(
        self, parent: "GlobalState", branch: "Simulator", record
    ) -> "GlobalState":
        """``branch.snapshot()`` computed from the parent's snapshot plus
        the step record's delta (changed process, touched channels)."""
        touched: set[tuple[str, str]] = set()
        if record.kind == "deliver":
            touched.add((record.delivered_from, record.pid))
        for _kind, receiver in record.sends:
            touched.add((record.pid, receiver))
        return self._delta_state(parent, branch, record.pid, touched)

    def _delta_state(
        self,
        parent: "GlobalState",
        branch: "Simulator",
        changed_pid: str | None,
        touched: set[tuple[str, str]],
    ) -> "GlobalState":
        """One step changes at most one process and a few channels; the
        rest of the parent's snapshot is shared structurally."""
        from repro.runtime.trace import GlobalState

        if self._proc_index is None:
            self._proc_index = {
                pid: i for i, (pid, _) in enumerate(parent.processes)
            }
            self._chan_index = {
                key: i for i, (key, _) in enumerate(parent.channels)
            }
        if changed_pid is not None:
            processes = list(parent.processes)
            processes[self._proc_index[changed_pid]] = (
                changed_pid,
                branch.processes[changed_pid].snapshot(),
            )
            processes = tuple(processes)
        else:
            processes = parent.processes
        if touched:
            channels = list(parent.channels)
            network = branch.network
            for key in touched:
                channels[self._chan_index[key]] = (
                    key,
                    tuple(
                        (m.kind, m.payload) for m in network.channel(*key)
                    ),
                )
            channels = tuple(channels)
        else:
            channels = parent.channels
        return GlobalState(processes, channels)

    @staticmethod
    def _shell(
        sim: "Simulator", acting_pid: str, bproc, bnet
    ) -> "Simulator":
        """Assemble a lean exploration fork around an already-executed
        process fork ``bproc`` and branch network ``bnet``: only
        ``acting_pid`` mutated, so every other
        :class:`~repro.runtime.process.ProcessRuntime` is shared outright.

        Private to exploration: a general-purpose clone must use
        :meth:`~repro.runtime.simulator.Simulator.fork`, which copies all
        process state (callers may mutate any process afterwards).
        """
        from repro.runtime.simulator import Simulator

        clone = Simulator.__new__(Simulator)
        clone.network = bnet
        processes = dict(sim.processes)
        processes[acting_pid] = bproc
        clone.processes = processes
        # Never consulted (exploration enumerates candidates itself) and
        # never mutated (``choose`` is the only mutator), so share it.
        clone.scheduler = sim.scheduler
        clone.fault_hook = None
        clone.record_states = False
        clone.record_trace = False
        clone.trace = sim.trace
        clone._next_event_uid = sim._next_event_uid
        clone.step_index = sim.step_index
        return clone

    def successors(self, node: _GlobalNode) -> Iterator[_GlobalNode]:
        """Expand in the simulator's candidate order: one deliver step per
        non-empty channel, then every enabled internal action.

        This inlines :meth:`Simulator.execute` minus its bookkeeping
        (step records, event uids, trace hooks).  Each candidate first
        runs its effect on a forked copy of the one acting process; only
        then -- once the touched channels are known -- is the branch
        network assembled via
        :meth:`~repro.runtime.network.Network.fork_channels`, so untouched
        channels (and for send-free internal steps the whole network) stay
        shared with the parent.  Messages are sent without piggybacked
        metadata -- exactly what the snapshot (and hence the successor
        function on snapshot states) can carry.

        No canonicalisation happens here: roots and restored simulators
        are canonicalised on entry, and every message this method itself
        sends is metadata-free, so all reachable nodes are canonical by
        induction.
        """
        sim = node.sim
        parent = node.state
        network = sim.network
        for chan in network.nonempty_channels():
            src, dst = chan.src, chan.dst
            message = chan.peek()
            proc = sim.processes[dst]
            handler = proc.program.receive_action_for(message.kind)
            effect = None
            if handler is not None:
                view = proc.view(
                    {
                        "_msg": message.payload,
                        "_sender": message.sender,
                        "_msg_clock": message.sender_clock,
                    }
                )
                if handler.enabled(view):
                    effect = handler.body(view)
            touched = {(src, dst)}
            if effect is not None:
                bproc = proc.fork()
                bproc._apply(effect)
                for send in effect.sends:
                    touched.add((dst, send.receiver))
            else:
                # Unhandled/rejected message: consumed, receiver untouched.
                bproc = proc
            bnet = network.fork_channels(touched)
            bnet.channel(src, dst).dequeue()
            if effect is not None:
                for send in effect.sends:
                    bnet.send(send.kind, dst, send.receiver, send.payload)
            branch = self._shell(sim, dst, bproc, bnet)
            changed = dst if effect is not None else None
            yield _GlobalNode(
                branch,
                self._delta_state(parent, branch, changed, touched),
                delta=(changed, tuple(touched)),
            )
        for pid, proc in sim.processes.items():
            # One view serves every action of this process: guards and
            # bodies are pure, and a fresh fork sees identical variables
            # (this halves the guard/view work of execute_internal).
            view = proc.view()
            for act in proc.program.actions:
                if not act.enabled(view):
                    continue
                effect = act.body(view)
                bproc = proc.fork()
                bproc._apply(effect)
                if effect.sends:
                    touched = {(pid, s.receiver) for s in effect.sends}
                    bnet = network.fork_channels(touched)
                    for send in effect.sends:
                        bnet.send(send.kind, pid, send.receiver, send.payload)
                else:
                    touched = set()
                    bnet = network
                branch = self._shell(sim, pid, bproc, bnet)
                yield _GlobalNode(
                    branch,
                    self._delta_state(parent, branch, pid, touched),
                    delta=(pid, tuple(touched)),
                )

    def key(self, node: _GlobalNode) -> "GlobalState":
        return node.state

    def delta_of(
        self, node: _GlobalNode
    ) -> tuple[str | None, tuple[tuple[str, str], ...]] | None:
        """The touched-component record of the step that produced
        ``node`` (``None`` for roots / unknown provenance)."""
        return node.delta

    # -- key-based expansion (process-pool workers) -----------------------

    def restore(self, state: "GlobalState") -> "Simulator":
        """Reconstruct a live simulator positioned at ``state``."""
        from repro.runtime.scheduler import RoundRobinScheduler
        from repro.runtime.simulator import Simulator

        overrides = {pid: state.process_vars(pid) for pid in state.pids()}
        sim = Simulator(
            self.programs,
            RoundRobinScheduler(),
            overrides=overrides,
            record_states=False,
        )
        sim.record_trace = False
        for (src, dst), content in state.channels:
            for kind, payload in content:
                sim.network.send(kind, src, dst, payload)
        self._canonicalize(sim)
        return sim

    def node_of_key(self, state: "GlobalState") -> _GlobalNode:
        """A live node positioned at ``state``, expandable with
        :meth:`successors` -- the delta-carrying fast path shard workers
        use instead of the record-keeping :meth:`successors_of_key`."""
        return _GlobalNode(self.restore(state), state)

    def successors_of_key(self, state: "GlobalState") -> list["GlobalState"]:
        """Successor snapshots of a snapshot (picklable in and out)."""
        sim = self.restore(state)
        out: list[GlobalState] = []
        for step in sim.candidate_steps():
            branch = sim.fork()
            record = branch.execute(step)
            out.append(self._successor_state(state, branch, record))
        return out


class LocalProcessSpace:
    """The local state space of one process (graybox surface).

    Nodes are hashable :meth:`~repro.runtime.process.ProcessRuntime.
    snapshot` tuples.  A state's successors are every enabled internal
    action plus every acceptable message from the bounded ``alphabet``
    of (sender, kind, payload) triples; successors whose Lamport clock
    exceeds ``max_clock`` fall outside the bounded space and are pruned.

    ``symmetry=True`` quotients the space under permutations of the
    *peers* (``pid`` itself stays fixed): the default message alphabet
    ranges uniformly over the peers, and peers occur in the local state
    only as tuple-map keys and timestamp owners, so peer renaming is a
    bijection on the local space.
    """

    def __init__(
        self,
        program: "ProcessProgram",
        pid: str,
        all_pids: tuple[str, ...],
        alphabet: Iterable[tuple[str, str, Any]],
        max_clock: int,
        symmetry: bool = False,
    ):
        from repro.explore.canon import canonical_local, peer_symmetry
        from repro.explore.packed import CachedCanonicalizer
        from repro.explore.store import StateCodec

        self.program = program
        self.pid = pid
        self.all_pids = tuple(all_pids)
        self.alphabet = tuple(alphabet)
        self.max_clock = max_clock
        self.codec = StateCodec()
        self.symmetry_group: tuple[dict[str, str], ...] = (
            peer_symmetry(pid, self.all_pids) if symmetry else ()
        )
        if self.symmetry_group:
            group = self.symmetry_group
            self.canonical_key = (
                lambda snapshot: canonical_local(snapshot, group)
            )
            # Orbit cache over the reference map: duplicate successors
            # (the majority of examined edges) canonicalize once.
            self.packed_canon = CachedCanonicalizer(
                self.codec, group, canonical_local
            )

    def roots(self) -> Iterator[tuple]:
        from repro.runtime.process import ProcessRuntime

        yield ProcessRuntime(self.pid, self.program, self.all_pids).snapshot()

    def _within_clock_bound(self, proc) -> bool:
        lc = proc.variables.get("lc", 0)
        return isinstance(lc, int) and lc <= self.max_clock

    def successors(self, node: tuple) -> Iterator[tuple]:
        from repro.runtime.process import ProcessRuntime

        base = ProcessRuntime(
            self.pid, self.program, self.all_pids, overrides=dict(node)
        )
        for act in base.enabled_internal_actions():
            clone = base.fork()
            clone.execute_internal(act)
            if self._within_clock_bound(clone):
                yield clone.snapshot()
        for sender, kind, payload in self.alphabet:
            handler = self.program.receive_action_for(kind)
            if handler is None:
                continue
            clone = base.fork()
            view = clone.view({"_msg": payload, "_sender": sender})
            if not handler.enabled(view):
                continue
            clone._apply(handler.body(view))
            if self._within_clock_bound(clone):
                yield clone.snapshot()

    def key(self, node: tuple) -> Hashable:
        return node

    def successors_of_key(self, node: tuple) -> list[tuple]:
        return list(self.successors(node))
