"""Interned, packed storage for exploration visited sets.

The visited set is the memory high-water mark of a global exploration:
every distinct :class:`~repro.runtime.trace.GlobalState` is a deep tree
of tuples, strings, and timestamps, most of it identical between states
(pids, variable names, message kinds, small clocks).  This module packs
each dedup key into a flat ``bytes`` blob over an interning table --
every pid, variable name, kind, and repeated payload is interned to a
small integer exactly once -- and keeps only ``blob -> integer id`` in
the visited dict.  Hashing a blob is one pass over contiguous bytes
instead of a recursive tuple hash, and the per-state footprint drops
from a multi-kilobyte object graph to tens of bytes.

:class:`StateCodec` is value-shape agnostic (ints, bools, strings,
``None``, :class:`~repro.clocks.timestamps.Timestamp`, nested tuples,
frozensets, plus an interned fallback for anything else hashable), so
the same codec packs global snapshots and per-process local snapshots.
Decoding reconstructs the original key exactly; spaces expose it as
``encode_key``/``decode_key`` and the engine picks it up automatically.

The module also owns :func:`order_key`, the history-independent total
order over snapshot values that symmetry canonicalization minimizes:
its branch tags *are* the codec tags, so the packed encoding and the
canonical order can never drift apart (see
:mod:`repro.explore.packed`).
"""

from __future__ import annotations

import re
from array import array
from collections.abc import Hashable, Iterator
from typing import Any

from repro.clocks.timestamps import Timestamp
from repro.runtime.trace import GlobalState

#: The value-type tag table.  This is the *single source of truth* for the
#: total order over the heterogeneous values snapshots carry: the codec
#: writes these tags into packed token streams, and
#: :func:`order_key` (re-exported as ``canon._order_key``) derives the
#: canonicalization order from the very same numbers, so a tag-wise
#: lexicographic comparison of two packed streams agrees with the
#: object-tree order wherever the stream tokens are order-faithful.
TAG_NONE = 0
TAG_FALSE = 1
TAG_TRUE = 2
TAG_INT = 3
TAG_STR = 4
TAG_TS = 5
TAG_TUPLE = 6
TAG_FSET = 7
TAG_OTHER = 8

# Internal aliases (the module predates the public table).
_TAG_NONE = TAG_NONE
_TAG_FALSE = TAG_FALSE
_TAG_TRUE = TAG_TRUE
_TAG_INT = TAG_INT
_TAG_STR = TAG_STR
_TAG_TS = TAG_TS
_TAG_TUPLE = TAG_TUPLE
_TAG_FSET = TAG_FSET
_TAG_OTHER = TAG_OTHER

#: array typecode for packed token streams: signed 64-bit, so clocks,
#: timers, and payload integers fit without escaping.
_TYPECODE = "q"
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

#: CPython's default ``object.__repr__`` embeds the object's memory
#: address, which varies run to run; mask it so the :func:`order_key`
#: fallback never leaks per-run state into a canonical order.
_ADDR_RE = re.compile(r"0x[0-9a-fA-F]+")


def _stable_repr(value: Any) -> str:
    return _ADDR_RE.sub("0x0", repr(value))


def order_key(value: Any) -> tuple:
    """A history-independent total order over snapshot values.

    Branch tags come from the tag table above, so the order is *derived
    from the codec encoding* rather than maintained in parallel with it:
    ``None < False < True < ints < strs < timestamps < tuples <
    frozensets < everything else``.  It must not depend on any per-run
    state (interning order, object ids, hash seeds) so canonical orbit
    representatives agree across runs and across pool workers; the
    fallback therefore masks memory addresses out of ``repr`` (two
    distinct same-type objects whose reprs are both address-based
    compare equal, which keeps the order total and run-stable at the
    cost of an arbitrary-but-fixed tie).
    """
    if value is None:
        return (TAG_NONE,)
    if isinstance(value, bool):
        return (TAG_TRUE,) if value else (TAG_FALSE,)
    if isinstance(value, int):
        return (TAG_INT, value)
    if isinstance(value, str):
        return (TAG_STR, value)
    if isinstance(value, Timestamp):
        return (TAG_TS, value.clock, value.pid)
    if isinstance(value, tuple):
        return (TAG_TUPLE, len(value)) + tuple(order_key(v) for v in value)
    if isinstance(value, frozenset):
        # Sorted element keys: iteration order of a frozenset of strings
        # varies with hash randomization, so it must never leak into the
        # canonical order.
        return (TAG_FSET, len(value)) + tuple(
            sorted(order_key(v) for v in value)
        )
    return (TAG_OTHER, type(value).__name__, _stable_repr(value))


class Interner:
    """Bidirectional value <-> small-integer table (intern once)."""

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: dict[Hashable, int] = {}
        self._values: list[Hashable] = []

    def intern(self, value: Hashable) -> int:
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self._values)
            self._ids[value] = ident
            self._values.append(value)
        return ident

    def value(self, ident: int) -> Hashable:
        return self._values[ident]

    def __len__(self) -> int:
        return len(self._values)


class StateCodec:
    """Pack hashable snapshot values into flat ``bytes`` and back."""

    __slots__ = ("strings", "others")

    def __init__(self) -> None:
        self.strings = Interner()
        self.others = Interner()

    # -- encoding ---------------------------------------------------------

    def _flatten(self, value: Any, out: list[int]) -> None:
        if value is None:
            out.append(_TAG_NONE)
        elif value is True:
            out.append(_TAG_TRUE)
        elif value is False:
            out.append(_TAG_FALSE)
        elif isinstance(value, int) and not isinstance(value, bool):
            if _INT64_MIN < value <= _INT64_MAX:
                out.append(_TAG_INT)
                out.append(value)
            else:
                out.append(_TAG_OTHER)
                out.append(self.others.intern(value))
        elif isinstance(value, str):
            out.append(_TAG_STR)
            out.append(self.strings.intern(value))
        elif isinstance(value, Timestamp):
            out.append(_TAG_TS)
            out.append(value.clock)
            out.append(self.strings.intern(value.pid))
        elif isinstance(value, tuple):
            out.append(_TAG_TUPLE)
            out.append(len(value))
            for item in value:
                self._flatten(item, out)
        elif isinstance(value, frozenset):
            # Flattened in canonical (order_key) element order, so equal
            # sets encode identically regardless of hash randomization
            # and pid members stay visible to packed-token renaming.
            out.append(_TAG_FSET)
            out.append(len(value))
            for item in sorted(value, key=order_key):
                self._flatten(item, out)
        else:
            out.append(_TAG_OTHER)
            out.append(self.others.intern(value))

    def encode(self, value: Any) -> bytes:
        """Pack one hashable value into a flat byte blob."""
        tokens: list[int] = []
        self._flatten(value, tokens)
        return array(_TYPECODE, tokens).tobytes()

    # -- decoding ---------------------------------------------------------

    def decode(self, blob: bytes) -> Any:
        """Reconstruct the value ``encode`` packed (exact round-trip)."""
        tokens = array(_TYPECODE)
        tokens.frombytes(blob)
        value, index = self._read(tokens, 0)
        if index != len(tokens):
            raise ValueError(
                f"trailing tokens in packed state ({len(tokens) - index})"
            )
        return value

    def _read(self, tokens: "array[int]", index: int) -> tuple[Any, int]:
        tag = tokens[index]
        index += 1
        if tag == _TAG_NONE:
            return None, index
        if tag == _TAG_TRUE:
            return True, index
        if tag == _TAG_FALSE:
            return False, index
        if tag == _TAG_INT:
            return tokens[index], index + 1
        if tag == _TAG_STR:
            return self.strings.value(tokens[index]), index + 1
        if tag == _TAG_TS:
            clock = tokens[index]
            pid = self.strings.value(tokens[index + 1])
            return Timestamp(clock, pid), index + 2
        if tag == _TAG_TUPLE:
            length = tokens[index]
            index += 1
            items = []
            for _ in range(length):
                item, index = self._read(tokens, index)
                items.append(item)
            return tuple(items), index
        if tag == _TAG_FSET:
            length = tokens[index]
            index += 1
            items = []
            for _ in range(length):
                item, index = self._read(tokens, index)
                items.append(item)
            return frozenset(items), index
        if tag == _TAG_OTHER:
            return self.others.value(tokens[index]), index + 1
        raise ValueError(f"unknown tag {tag} in packed state")


class GlobalStateCodec(StateCodec):
    """A :class:`StateCodec` that round-trips :class:`GlobalState`.

    Rather than flattening the whole snapshot tree, it interns each
    process's variable tuple and each channel's content tuple as *one*
    id each: distinct per-process valuations number roughly the local
    state count -- the very gap between the per-process sum and the
    global product that Section 1 is about -- so the shared interner
    table stays small while each global state packs into a few dozen
    bytes of ids.
    """

    __slots__ = ()

    def encode_tokens(self, state: GlobalState) -> list[int]:
        """The packed token stream of ``state`` as a plain int list.

        Layout: ``[P, (pid_sid, vars_oid) * P, C, (src_sid, dst_sid,
        content_oid) * C]`` where ``sid`` indexes :attr:`strings` and
        ``oid`` indexes :attr:`others`.  This is the substrate the
        packed canonicalizer permutes (see
        :mod:`repro.explore.packed`); ``encode`` is the same stream
        serialized to bytes.
        """
        strings = self.strings.intern
        others = self.others.intern
        tokens = [len(state.processes)]
        for pid, variables in state.processes:
            tokens.append(strings(pid))
            tokens.append(others(variables))
        tokens.append(len(state.channels))
        for (src, dst), content in state.channels:
            tokens.append(strings(src))
            tokens.append(strings(dst))
            tokens.append(others(content))
        return tokens

    def encode(self, state: GlobalState) -> bytes:  # type: ignore[override]
        return array(_TYPECODE, self.encode_tokens(state)).tobytes()

    def decode(self, blob: bytes) -> GlobalState:  # type: ignore[override]
        tokens = array(_TYPECODE)
        tokens.frombytes(blob)
        strings = self.strings.value
        others = self.others.value
        index = 1
        processes = []
        for _ in range(tokens[0]):
            processes.append(
                (strings(tokens[index]), others(tokens[index + 1]))
            )
            index += 2
        nchan = tokens[index]
        index += 1
        channels = []
        for _ in range(nchan):
            channels.append(
                (
                    (strings(tokens[index]), strings(tokens[index + 1])),
                    others(tokens[index + 2]),
                )
            )
            index += 3
        if index != len(tokens):
            raise ValueError(
                f"trailing tokens in packed state ({len(tokens) - index})"
            )
        return GlobalState(tuple(processes), tuple(channels))


class InternedStateStore:
    """The visited set as ``packed blob -> dense integer id``.

    ``add`` returns the state's id and whether it was fresh; membership
    and sizing never touch the original object graph.  ``keys()``
    decodes the packed blobs back into full dedup keys (insertion
    order), which only materialises the object graphs when a caller
    actually asks for them.
    """

    __slots__ = ("codec", "_ids", "_payload_bytes")

    def __init__(self, codec: StateCodec) -> None:
        self.codec = codec
        self._ids: dict[bytes, int] = {}
        self._payload_bytes = 0

    def add(self, key: Hashable) -> tuple[int, bool]:
        """Intern ``key``; returns ``(id, fresh)``."""
        blob = self.codec.encode(key)
        ident = self._ids.get(blob)
        if ident is not None:
            return ident, False
        ident = len(self._ids)
        self._ids[blob] = ident
        self._payload_bytes += len(blob)
        return ident, True

    def __contains__(self, key: Hashable) -> bool:
        return self.codec.encode(key) in self._ids

    def contains_packed(self, blob: bytes) -> bool:
        """Membership by already-packed blob (no re-encoding)."""
        return blob in self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def keys(self) -> Iterator[Hashable]:
        """Decode every stored key, in insertion (visit) order."""
        decode = self.codec.decode
        return (decode(blob) for blob in self._ids)

    @property
    def bytes_per_state(self) -> float:
        """Mean packed payload bytes per stored state (the blob itself;
        dict-slot and ``bytes``-object overhead excluded)."""
        if not self._ids:
            return 0.0
        return self._payload_bytes / len(self._ids)

    def add_packed(self, blob: bytes) -> tuple[int, bool]:
        """Intern an already-packed blob (pool workers pack remotely is
        *not* supported -- interner ids are per-process -- but the parent
        re-packing a decoded key round-trips through here)."""
        ident = self._ids.get(blob)
        if ident is not None:
            return ident, False
        ident = len(self._ids)
        self._ids[blob] = ident
        self._payload_bytes += len(blob)
        return ident, True

    def into_exploration(self, stats) -> "Exploration":
        from repro.explore.engine import Exploration

        return Exploration(store=self, stats=stats)


class PlainStateStore:
    """Visited keys in an ordinary set (spaces without a codec)."""

    __slots__ = ("_keys",)

    def __init__(self) -> None:
        self._keys: set[Hashable] = set()

    def add(self, key: Hashable) -> tuple[int, bool]:
        if key in self._keys:
            return 0, False
        self._keys.add(key)
        return 0, True

    def __contains__(self, key: Hashable) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._keys)

    @property
    def bytes_per_state(self) -> float:
        return 0.0

    def into_exploration(self, stats) -> "Exploration":
        from repro.explore.engine import Exploration

        return Exploration(visited=frozenset(self._keys), stats=stats)


def make_visited_store(codec: StateCodec | None):
    """The visited-set implementation for a space: interned when the
    space published a codec, a plain set otherwise."""
    if codec is None:
        return PlainStateStore()
    return InternedStateStore(codec)
