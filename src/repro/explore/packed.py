"""Packed-token symmetry canonicalization: the fast path.

:mod:`repro.explore.canon` defines *what* the canonical orbit
representative is -- the least renaming of a state under a permutation
group, ordered by :func:`repro.explore.store.order_key` -- via recursive
object-tree rewrites.  That reference implementation is clear and
obviously correct, but paying a full tree rewrite per permutation per
examined successor made symmetry-reduced exploration ~45x *slower* than
exact exploration.  This module computes the identical representative on
the :class:`~repro.explore.store.GlobalStateCodec`'s packed token
streams instead:

* **the permutation acts on interned ids, not trees** -- a global
  state's tokens are ``(pid_sid, vars_oid)`` per process and
  ``(src_sid, dst_sid, content_oid)`` per channel; renaming a candidate
  is an integer relabel through per-permutation memo tables
  (``vars_oid -> renamed vars_oid``), falling back to one memoized
  tree rewrite (:class:`_Renamer`, semantically
  :func:`~repro.explore.canon.rename_value`) per *distinct*
  (permutation, subtree) pair ever seen;
* **candidate comparison is early-exit lexicographic** -- because the
  pid multiset (and hence the sorted pid/channel-key skeleton) is
  invariant under the group, candidates differ only in the per-slot
  subtree values; each candidate is a flat vector of memoized
  ``order_key`` tuples, and Python's list comparison bails at the first
  differing slot (identical slots are the *same* memoized object, so
  equality there is a pointer check);
* **canonical forms are computed incrementally from the parent** -- one
  transition touches one process and at most two channels (the spaces
  expose that delta), so each candidate vector is the parent's vector
  with a handful of slots patched in place (and un-patched afterwards),
  not rebuilt;
* **an orbit-representative cache keyed on the packed blob** -- the
  engine examines every successor edge including duplicates (dedup hit
  rates of 50-80% are typical), and repeated snapshots canonicalize
  once: the second and later encounters are a dict hit on the interned
  byte blob.

:class:`PackedGlobalCanonicalizer` serves
:class:`~repro.explore.spaces.GlobalSimulatorSpace`;
:class:`CachedCanonicalizer` wraps the reference path for
:class:`~repro.explore.spaces.LocalProcessSpace`, whose small snapshots
don't warrant the template machinery but benefit just as much from the
orbit cache.  Parity with the reference implementation is pinned by
``tests/explore/test_packed_parity.py``.
"""

from __future__ import annotations

from array import array
from collections.abc import Callable, Hashable, Mapping
from typing import Any

from repro.clocks.timestamps import Timestamp
from repro.explore.store import (
    TAG_TUPLE,
    GlobalStateCodec,
    StateCodec,
    order_key,
)
from repro.runtime.trace import GlobalState

_TYPECODE = "q"

_MISSING = object()


class _Renamer:
    """Memoized renaming action and canonical order over subtree values.

    Semantically identical to :func:`repro.explore.canon.rename_value` /
    :func:`repro.explore.store.order_key`, but every order key and every
    tuple-sortedness verdict is computed once per *distinct value* and
    shared across all permutations and all containing subtrees --
    snapshots re-use the same timestamps, tuple-maps, and pid sets over
    and over, and the reference path's biggest cost is recomputing their
    keys on every rewrite.
    """

    __slots__ = ("_keys", "_sorted")

    def __init__(self) -> None:
        self._keys: dict[Hashable, tuple] = {}
        self._sorted: dict[tuple, bool] = {}

    def key(self, value: Hashable) -> tuple:
        key = self._keys.get(value, _MISSING)
        if key is _MISSING:
            if isinstance(value, tuple):
                # Build from memoized child keys (shared substructure).
                key = (TAG_TUPLE, len(value)) + tuple(
                    self.key(v) for v in value
                )
            else:
                key = order_key(value)
            self._keys[value] = key
        return key

    def _was_sorted(self, value: tuple) -> bool:
        verdict = self._sorted.get(value)
        if verdict is None:
            keys = [self.key(v) for v in value]
            verdict = all(a <= b for a, b in zip(keys, keys[1:]))
            self._sorted[value] = verdict
        return verdict

    def rename(self, value: Any, mapping: Mapping[str, str]) -> Any:
        """``canon.rename_value`` with memoized keys and sortedness."""
        if isinstance(value, tuple):
            renamed = tuple(self.rename(v, mapping) for v in value)
            if len(renamed) > 1 and self._was_sorted(value):
                return tuple(sorted(renamed, key=self.key))
            return renamed
        if isinstance(value, str):
            return mapping.get(value, value)
        if isinstance(value, Timestamp):
            new_pid = mapping.get(value.pid)
            if new_pid is None or new_pid == value.pid:
                return value
            return Timestamp(value.clock, new_pid)
        if isinstance(value, frozenset):
            return frozenset(self.rename(v, mapping) for v in value)
        return value


#: A successor's touched components relative to its parent snapshot:
#: ``(changed_pid | None, touched channel keys)``.
Delta = tuple[str | None, tuple[tuple[str, str], ...]]


class CanonStats:
    """Orbit-cache instrumentation shared by both canonicalizers."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of canonicalizations served from the orbit cache."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class PackedGlobalCanonicalizer:
    """Least-orbit-member computation on packed global-state tokens.

    ``canonicalize(state, parent_key, delta)`` returns ``(blob,
    rewritten)`` where ``blob`` is the canonical representative's packed
    encoding (directly storable via
    :meth:`~repro.explore.store.InternedStateStore.add_packed`) and
    ``rewritten`` says whether the representative differs from
    ``state`` -- by value, so it is cache-stable, unlike the reference
    path's identity check.  The result is *identical* to encoding
    :func:`~repro.explore.canon.canonical_global`'s answer.
    """

    def __init__(
        self,
        codec: GlobalStateCodec,
        pids: tuple[str, ...],
        mappings: tuple[Mapping[str, str], ...],
    ) -> None:
        self.codec = codec
        self.mappings = mappings
        self.stats = CanonStats()
        self._pids = tuple(sorted(pids))
        #: packed blob -> (canonical blob, rewritten)
        self._cache: dict[bytes, tuple[bytes, bool]] = {}
        #: per-permutation memo: vars/content oid -> renamed oid
        self._sub: list[dict[int, int]] = [dict() for _ in mappings]
        #: oid -> memoized order_key tuple (shared by all permutations)
        self._keys: dict[int, tuple] = {}
        #: value-level rename/order memos behind the oid memos above
        self._renamer = _Renamer()
        # Slot geometry, derived lazily from the first state seen.
        self._ready = False
        self._nproc = 0
        self._nchan = 0
        self._chan_keys: tuple[tuple[str, str], ...] = ()
        self._skeleton: list[tuple[int, int]] = []  # (token index, sid)
        self._proc_dst: list[list[int]] = []  # perm -> orig idx -> slot
        self._chan_dst: list[list[int]] = []
        self._proc_idx: dict[str, int] = {}
        self._chan_idx: dict[tuple[str, str], int] = {}
        # Candidate templates, currently filled with `_filled`'s values:
        # per permutation (and one identity), a flat [vars keys..,
        # content keys..] compare vector plus the parallel oid vector.
        self._filled: GlobalState | None = None
        self._id_cmp: list = []
        self._id_tok: list[int] = []
        self._cmp: list[list] = []
        self._tok: list[list[int]] = []

    # -- geometry ---------------------------------------------------------

    def _init_layout(self, state: GlobalState) -> None:
        """Fix the slot geometry from the first snapshot.

        The pid set and the channel-key set of a space never change, and
        both are closed under the group (renamed states are states of
        the same system), so a candidate's sorted pid / channel-key
        skeleton equals the original's -- candidates differ only in
        which subtree sits in which slot.
        """
        pids = tuple(pid for pid, _ in state.processes)
        if pids != self._pids:
            raise ValueError(
                f"snapshot pids {pids} != space pids {self._pids}"
            )
        self._nproc = len(pids)
        self._chan_keys = tuple(key for key, _ in state.channels)
        self._nchan = len(self._chan_keys)
        self._proc_idx = {pid: i for i, pid in enumerate(pids)}
        self._chan_idx = {key: i for i, key in enumerate(self._chan_keys)}
        chan_rank = self._chan_idx
        for mapping in self.mappings:
            self._proc_dst.append(
                [self._proc_idx[mapping[pid]] for pid in pids]
            )
            dst = []
            for src, tgt in self._chan_keys:
                renamed = (
                    mapping.get(src, src),
                    mapping.get(tgt, tgt),
                )
                if renamed not in chan_rank:
                    raise ValueError(
                        f"channel set not closed under renaming: "
                        f"{(src, tgt)} -> {renamed}"
                    )
                dst.append(chan_rank[renamed])
            self._chan_dst.append(dst)
        width = self._nproc + self._nchan
        self._id_cmp = [None] * width
        self._id_tok = [0] * width
        self._cmp = [[None] * width for _ in self.mappings]
        self._tok = [[0] * width for _ in self.mappings]
        # The constant (token index, sid) skeleton used both to verify
        # later snapshots and to assemble winning candidates' blobs.
        intern = self.codec.strings.intern
        skeleton = []
        index = 1
        for pid in pids:
            skeleton.append((index, intern(pid)))
            index += 2
        index += 1
        for src, dst_pid in self._chan_keys:
            skeleton.append((index, intern(src)))
            skeleton.append((index + 1, intern(dst_pid)))
            index += 3
        self._skeleton = skeleton
        self._ready = True

    def _check_layout(self, tokens: list[int]) -> None:
        if (
            len(tokens) != 2 + 2 * self._nproc + 3 * self._nchan
            or tokens[0] != self._nproc
            or tokens[2 * self._nproc + 1] != self._nchan
        ):
            raise ValueError("snapshot layout differs from the space's")
        for index, sid in self._skeleton:
            if tokens[index] != sid:
                raise ValueError(
                    "snapshot pid/channel layout differs from the space's"
                )

    # -- memoized per-slot values -----------------------------------------

    def _key_of(self, oid: int) -> tuple:
        key = self._keys.get(oid)
        if key is None:
            key = self._renamer.key(self.codec.others.value(oid))
            self._keys[oid] = key
        return key

    def _renamed(self, perm: int, oid: int) -> int:
        memo = self._sub[perm]
        out = memo.get(oid)
        if out is None:
            renamed = self._renamer.rename(
                self.codec.others.value(oid), self.mappings[perm]
            )
            out = self.codec.others.intern(renamed)
            memo[oid] = out
        return out

    # -- template filling --------------------------------------------------

    def _oids(self, tokens: list[int]) -> list[int]:
        """The per-slot subtree oids of a snapshot, in token order."""
        nproc = self._nproc
        oids = tokens[2 : 2 + 2 * nproc : 2]
        base = 2 * nproc + 2
        oids.extend(tokens[base + 2 :: 3])
        return oids

    def _fill(self, state: GlobalState, tokens: list[int]) -> None:
        """Load every candidate template with ``state``'s values."""
        oids = self._oids(tokens)
        nproc = self._nproc
        key_of = self._key_of
        id_cmp, id_tok = self._id_cmp, self._id_tok
        for slot, oid in enumerate(oids):
            id_cmp[slot] = key_of(oid)
            id_tok[slot] = oid
        for perm in range(len(self.mappings)):
            cmp_vec, tok_vec = self._cmp[perm], self._tok[perm]
            proc_dst, chan_dst = self._proc_dst[perm], self._chan_dst[perm]
            renamed = self._renamed
            for i in range(nproc):
                noid = renamed(perm, oids[i])
                slot = proc_dst[i]
                cmp_vec[slot] = key_of(noid)
                tok_vec[slot] = noid
            for c in range(self._nchan):
                noid = renamed(perm, oids[nproc + c])
                slot = nproc + chan_dst[c]
                cmp_vec[slot] = key_of(noid)
                tok_vec[slot] = noid
        self._filled = state

    def _patch_slots(self, delta: Delta, tokens: list[int]):
        """(slot-in-identity-layout, new oid) pairs for one delta."""
        changed_pid, touched = delta
        nproc = self._nproc
        patches: list[tuple[int, int]] = []
        if changed_pid is not None:
            i = self._proc_idx[changed_pid]
            patches.append((i, tokens[2 + 2 * i]))
        base = 2 * nproc + 2
        for key in touched:
            c = self._chan_idx[key]
            patches.append((nproc + c, tokens[base + 3 * c + 2]))
        return patches

    # -- canonicalization --------------------------------------------------

    def canonicalize(
        self,
        state: GlobalState,
        parent_key: GlobalState | None = None,
        delta: Delta | None = None,
    ) -> tuple[bytes, bool]:
        """The canonical representative's packed blob, plus whether it
        differs from ``state``.

        When ``parent_key`` is the snapshot the candidate templates are
        currently filled with (one engine expansion keeps it fixed) and
        ``delta`` names the touched components, each candidate is
        patched rather than rebuilt.
        """
        tokens = self.codec.encode_tokens(state)
        blob = array(_TYPECODE, tokens).tobytes()
        cached = self._cache.get(blob)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        if not self._ready:
            self._init_layout(state)
        self._check_layout(tokens)

        if delta is not None and parent_key is not None:
            if self._filled is not parent_key:
                # One template fill per engine expansion: every sibling
                # successor patches these parent-filled vectors.
                self._fill(
                    parent_key, self.codec.encode_tokens(parent_key)
                )
            result = self._canonical_delta(tokens, delta)
        else:
            self._fill(state, tokens)
            result = self._canonical_filled(tokens)
        cblob, rewritten = result
        self._cache[blob] = result
        if rewritten:
            # The representative canonicalizes to itself: seed it so a
            # direct encounter is a cache hit, not a recomputation.
            self._cache.setdefault(cblob, (cblob, False))
        return result

    def _canonical_filled(self, tokens: list[int]) -> tuple[bytes, bool]:
        """Least candidate when the templates hold this very state."""
        best_cmp = self._id_cmp
        best_tok = self._id_tok
        rewritten = False
        for perm in range(len(self.mappings)):
            cmp_vec = self._cmp[perm]
            if cmp_vec < best_cmp:
                best_cmp = cmp_vec
                best_tok = self._tok[perm]
                rewritten = True
        if not rewritten:
            return array(_TYPECODE, tokens).tobytes(), False
        return self._assemble(best_tok), True

    def _canonical_delta(
        self, tokens: list[int], delta: Delta
    ) -> tuple[bytes, bool]:
        """Least candidate via in-place patch / compare / un-patch of
        the parent-filled templates."""
        patches = self._patch_slots(delta, tokens)
        key_of = self._key_of
        renamed = self._renamed
        nproc = self._nproc

        id_cmp, id_tok = self._id_cmp, self._id_tok
        saved_id = [(s, id_cmp[s], id_tok[s]) for s, _ in patches]
        for slot, oid in patches:
            id_cmp[slot] = key_of(oid)
            id_tok[slot] = oid
        best_cmp = id_cmp
        best_tok = id_tok
        best_is_template = True
        rewritten = False
        try:
            for perm in range(len(self.mappings)):
                cmp_vec, tok_vec = self._cmp[perm], self._tok[perm]
                proc_dst = self._proc_dst[perm]
                chan_dst = self._chan_dst[perm]
                saved = []
                for slot, oid in patches:
                    if slot < nproc:
                        dst = proc_dst[slot]
                    else:
                        dst = nproc + chan_dst[slot - nproc]
                    saved.append((dst, cmp_vec[dst], tok_vec[dst]))
                    noid = renamed(perm, oid)
                    cmp_vec[dst] = key_of(noid)
                    tok_vec[dst] = noid
                if cmp_vec < best_cmp:
                    # Snapshot: the template is about to be un-patched.
                    best_cmp = list(cmp_vec)
                    best_tok = list(tok_vec)
                    best_is_template = False
                    rewritten = True
                for dst, old_cmp, old_tok in saved:
                    cmp_vec[dst] = old_cmp
                    tok_vec[dst] = old_tok
            if not rewritten:
                return array(_TYPECODE, tokens).tobytes(), False
            assert not best_is_template
            return self._assemble(best_tok), True
        finally:
            for slot, old_cmp, old_tok in saved_id:
                id_cmp[slot] = old_cmp
                id_tok[slot] = old_tok

    def _assemble(self, tok_vec: list[int]) -> bytes:
        """The packed blob of the candidate described by ``tok_vec``
        (per-slot subtree oids over the constant skeleton)."""
        nproc = self._nproc
        out = [nproc]
        skeleton = self._skeleton
        for i in range(nproc):
            out.append(skeleton[i][1])
            out.append(tok_vec[i])
        out.append(self._nchan)
        for c in range(self._nchan):
            out.append(skeleton[nproc + 2 * c][1])
            out.append(skeleton[nproc + 2 * c + 1][1])
            out.append(tok_vec[nproc + c])
        return array(_TYPECODE, out).tobytes()

    # -- object-level conveniences ----------------------------------------

    def decode(self, blob: bytes) -> GlobalState:
        return self.codec.decode(blob)

    def canonical_state(
        self,
        state: GlobalState,
        parent_key: GlobalState | None = None,
        delta: Delta | None = None,
    ) -> tuple[GlobalState, bool]:
        """Object-level variant: ``(canonical state, rewritten)``.

        Returns ``state`` itself when it already is the representative
        (pool workers ship this across the pipe)."""
        blob, rewritten = self.canonicalize(state, parent_key, delta)
        if not rewritten:
            return state, False
        return self.codec.decode(blob), True


class CachedCanonicalizer:
    """Orbit-representative cache around a reference canonical map.

    Local snapshots are small and their spaces shallow, so the template
    machinery above would be overkill -- but the engine still examines
    every duplicate successor, and this wrapper turns each repeat into
    one packed-blob dict hit.  Exposes the same ``canonicalize`` /
    ``canonical_state`` / ``decode`` surface as
    :class:`PackedGlobalCanonicalizer` (the delta arguments are
    accepted and ignored).
    """

    def __init__(
        self,
        codec: StateCodec,
        mappings: tuple[Mapping[str, str], ...],
        reference: Callable[[Any, tuple], Any],
    ) -> None:
        self.codec = codec
        self.mappings = mappings
        self.reference = reference
        self.stats = CanonStats()
        self._cache: dict[bytes, tuple[bytes, bool]] = {}

    def canonicalize(
        self,
        key: Hashable,
        parent_key: Hashable | None = None,
        delta: Any = None,
    ) -> tuple[bytes, bool]:
        blob = self.codec.encode(key)
        cached = self._cache.get(blob)
        if cached is not None:
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        canonical = self.reference(key, self.mappings)
        if canonical is key:
            result = (blob, False)
        else:
            result = (self.codec.encode(canonical), True)
            self._cache.setdefault(result[0], (result[0], False))
        self._cache[blob] = result
        return result

    def canonical_state(
        self,
        key: Hashable,
        parent_key: Hashable | None = None,
        delta: Any = None,
    ) -> tuple[Any, bool]:
        blob, rewritten = self.canonicalize(key, parent_key, delta)
        if not rewritten:
            return key, False
        return self.codec.decode(blob), True

    def decode(self, blob: bytes) -> Hashable:
        return self.codec.decode(blob)
