"""Optional process-pool expansion for global state-space exploration.

Global exploration is embarrassingly parallel per BFS level: each frontier
state's successors depend only on that state.  This module runs a
level-synchronous BFS where successor computation is farmed out to a
``fork``-started process pool; only hashable state keys (snapshots) cross
the pipe, while the space object itself -- including its unpicklable
guarded-command programs -- is inherited by the workers through ``fork``.

Workers also carry the space's symmetry canonicalization: each successor
crosses the pipe as a ``(canonical, first_seen)`` pair, so the *n!-fold
orbit folding* runs on the pool while the parent only deduplicates
canonical keys in quotient space.  Spaces that expose a ``packed_canon``
(see :mod:`repro.explore.packed`) canonicalize on packed tokens with a
per-worker orbit cache, the same fast path the in-process engine uses.  ``first_seen`` (``None`` when the
successor already is canonical) is what enters the next frontier -- the
same first-seen-orbit-member policy as the in-process engine, so serial
and parallel symmetric runs visit identical canonical sets.

Deduplication stays in the parent and consumes worker results in frontier
order, so the visited set (and even the ``max_states`` cut-off point) is
identical to the in-process BFS.  On platforms without ``fork`` (or for
spaces without ``successors_of_key``) :func:`explore_parallel` returns
``None`` and the engine falls back to in-process expansion.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Hashable

from repro.explore.spaces import StateSpace

# The space a forked worker expands against, inherited at pool creation.
# Module-global by necessity (fork inheritance); explore_parallel refuses
# to run re-entrantly rather than silently expanding the wrong space.
_WORKER_SPACE: StateSpace | None = None

#: Worker result: ``(canonical, first_seen_or_None)`` per successor plus
#: the number of successors the canonicalization rewrote.
_ExpandResult = tuple[list[tuple[Hashable, Hashable | None]], int]


def _expand_one(key: Hashable) -> _ExpandResult:
    assert _WORKER_SPACE is not None, "worker used outside a pool"
    succs = _WORKER_SPACE.successors_of_key(key)  # type: ignore[attr-defined]
    packed = getattr(_WORKER_SPACE, "packed_canon", None)
    if packed is not None:
        # The fast path: each worker's canonicalizer (inherited at fork,
        # warmed per-process) reports rewrites by value, which stays
        # correct across its orbit cache.  Canonical *objects* cross the
        # pipe -- packed blobs are meaningless outside their interner.
        pairs = []
        rewrites = 0
        for succ in succs:
            canonical, rewritten = packed.canonical_state(succ)
            pairs.append((canonical, succ if rewritten else None))
            rewrites += rewritten
        return pairs, rewrites
    canon = getattr(_WORKER_SPACE, "canonical_key", None)
    if canon is None:
        return [(succ, None) for succ in succs], 0
    pairs = []
    rewrites = 0
    for succ in succs:
        canonical = canon(succ)
        if canonical is succ:
            pairs.append((succ, None))
        else:
            rewrites += 1
            pairs.append((canonical, succ))
    return pairs, rewrites


def explore_parallel(
    space: StateSpace,
    *,
    workers: int,
    max_depth: int | None,
    max_states: int | None,
    max_seconds: float | None,
    on_visit: Callable[[Hashable, int], None] | None,
):
    """Level-synchronous parallel BFS; ``None`` if unsupported here."""
    from repro.explore.engine import (
        TRUNCATED_BY_STATES,
        TRUNCATED_BY_TIME,
        ExplorationStats,
    )
    from repro.explore.store import make_visited_store

    if not hasattr(space, "successors_of_key"):
        return None
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return None

    global _WORKER_SPACE
    if _WORKER_SPACE is not None:
        raise RuntimeError(
            "explore_parallel is not re-entrant: a parallel exploration "
            "is already running in this process (its forked workers "
            "inherited the module-global space, which a nested call "
            "would clobber).  Run the nested exploration with workers=1."
        )
    started = time.perf_counter()
    packed = getattr(space, "packed_canon", None)
    canon = getattr(space, "canonical_key", None)
    visited = make_visited_store(getattr(space, "codec", None))
    truncated = False
    truncation_cause: str | None = None
    depth_reached = 0
    depth_limited = False
    expansions = 0
    transitions = 0
    dedup_hits = 0
    orbit_reductions = 0

    level: list[Hashable] = []
    for root in space.roots():
        key = space.key(root)
        frontier_key = key
        if packed is not None:
            key, rewritten = packed.canonical_state(key)
            orbit_reductions += rewritten
        elif canon is not None:
            canonical = canon(key)
            if canonical is not key:
                orbit_reductions += 1
            key = canonical
        if max_states is not None and len(visited) >= max_states:
            if key in visited:
                continue
            truncated = True
            truncation_cause = TRUNCATED_BY_STATES
            break
        _ident, fresh = visited.add(key)
        if not fresh:
            continue
        if on_visit is not None:
            on_visit(key, 0)
        level.append(frontier_key)

    # Memory high-water mark: sampled after root insertion (before any
    # expansion) and, below, after every consumed expansion -- counting
    # both the unconsumed remainder of the level and the accumulating
    # next level, exactly like the in-process engine's mixed frontier.
    peak_frontier = len(level)
    depth = 0
    _WORKER_SPACE = space
    try:
        with ctx.Pool(processes=workers) as pool:
            while level and not truncated:
                depth_reached = max(depth_reached, depth)
                if max_depth is not None and depth >= max_depth:
                    depth_limited = True
                    break
                if (
                    max_seconds is not None
                    and time.perf_counter() - started > max_seconds
                ):
                    truncated = True
                    truncation_cause = TRUNCATED_BY_TIME
                    break
                chunksize = max(1, len(level) // (workers * 4))
                results = pool.map(_expand_one, level, chunksize=chunksize)
                expansions += len(level)
                next_level: list[Hashable] = []
                for consumed, (pairs, rewrites) in enumerate(results, 1):
                    if truncated:
                        break
                    orbit_reductions += rewrites
                    for key, first_seen in pairs:
                        transitions += 1
                        if (
                            max_states is not None
                            and len(visited) >= max_states
                        ):
                            if key in visited:
                                dedup_hits += 1
                                continue
                            truncated = True
                            truncation_cause = TRUNCATED_BY_STATES
                            break
                        _ident, fresh = visited.add(key)
                        if not fresh:
                            dedup_hits += 1
                            continue
                        if on_visit is not None:
                            on_visit(key, depth + 1)
                        next_level.append(
                            key if first_seen is None else first_seen
                        )
                    peak_frontier = max(
                        peak_frontier,
                        len(level) - consumed + len(next_level),
                    )
                level = next_level if not truncated else []
                depth += 1
    finally:
        _WORKER_SPACE = None

    stats = ExplorationStats(
        strategy="bfs",
        states=len(visited),
        expansions=expansions,
        transitions=transitions,
        dedup_hits=dedup_hits,
        depth_reached=depth_reached,
        depth_limited=depth_limited,
        peak_frontier=peak_frontier,
        elapsed_seconds=time.perf_counter() - started,
        truncated=truncated,
        truncation_cause=truncation_cause,
        workers=workers,
        orbit_reductions=orbit_reductions,
        bytes_per_state=visited.bytes_per_state,
    )
    return visited.into_exploration(stats)
