"""Optional process-pool expansion for global state-space exploration.

Global exploration is embarrassingly parallel per BFS level: each frontier
state's successors depend only on that state.  This module runs a
level-synchronous BFS where successor computation is farmed out to a
``fork``-started process pool; only hashable state keys (snapshots) cross
the pipe, while the space object itself -- including its unpicklable
guarded-command programs -- is inherited by the workers through ``fork``.

Deduplication stays in the parent and consumes worker results in frontier
order, so the visited set (and even the ``max_states`` cut-off point) is
identical to the in-process BFS.  On platforms without ``fork`` (or for
spaces without ``successors_of_key``) :func:`explore_parallel` returns
``None`` and the engine falls back to in-process expansion.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Hashable

from repro.explore.spaces import StateSpace

# The space a forked worker expands against, inherited at pool creation.
_WORKER_SPACE: StateSpace | None = None


def _expand_one(key: Hashable) -> list[Hashable]:
    assert _WORKER_SPACE is not None, "worker used outside a pool"
    return _WORKER_SPACE.successors_of_key(key)  # type: ignore[attr-defined]


def explore_parallel(
    space: StateSpace,
    *,
    workers: int,
    max_depth: int | None,
    max_states: int | None,
    max_seconds: float | None,
    on_visit: Callable[[Hashable, int], None] | None,
):
    """Level-synchronous parallel BFS; ``None`` if unsupported here."""
    from repro.explore.engine import (
        TRUNCATED_BY_STATES,
        TRUNCATED_BY_TIME,
        Exploration,
        ExplorationStats,
    )

    if not hasattr(space, "successors_of_key"):
        return None
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return None

    global _WORKER_SPACE
    started = time.perf_counter()
    visited: set[Hashable] = set()
    truncated = False
    truncation_cause: str | None = None
    depth_reached = 0
    depth_limited = False
    expansions = 0
    transitions = 0
    dedup_hits = 0

    level: list[Hashable] = []
    for root in space.roots():
        key = space.key(root)
        if key in visited:
            continue
        if max_states is not None and len(visited) >= max_states:
            truncated = True
            truncation_cause = TRUNCATED_BY_STATES
            break
        visited.add(key)
        if on_visit is not None:
            on_visit(key, 0)
        level.append(key)

    peak_frontier = len(level)
    depth = 0
    _WORKER_SPACE = space
    try:
        with ctx.Pool(processes=workers) as pool:
            while level and not truncated:
                depth_reached = max(depth_reached, depth)
                if max_depth is not None and depth >= max_depth:
                    depth_limited = True
                    break
                if (
                    max_seconds is not None
                    and time.perf_counter() - started > max_seconds
                ):
                    truncated = True
                    truncation_cause = TRUNCATED_BY_TIME
                    break
                chunksize = max(1, len(level) // (workers * 4))
                results = pool.map(_expand_one, level, chunksize=chunksize)
                expansions += len(level)
                next_level: list[Hashable] = []
                for succs in results:
                    if truncated:
                        break
                    for key in succs:
                        transitions += 1
                        if key in visited:
                            dedup_hits += 1
                            continue
                        if (
                            max_states is not None
                            and len(visited) >= max_states
                        ):
                            truncated = True
                            truncation_cause = TRUNCATED_BY_STATES
                            break
                        visited.add(key)
                        if on_visit is not None:
                            on_visit(key, depth + 1)
                        next_level.append(key)
                level = next_level if not truncated else []
                depth += 1
                peak_frontier = max(peak_frontier, len(level))
    finally:
        _WORKER_SPACE = None

    stats = ExplorationStats(
        strategy="bfs",
        states=len(visited),
        expansions=expansions,
        transitions=transitions,
        dedup_hits=dedup_hits,
        depth_reached=depth_reached,
        depth_limited=depth_limited,
        peak_frontier=peak_frontier,
        elapsed_seconds=time.perf_counter() - started,
        truncated=truncated,
        truncation_cause=truncation_cause,
        workers=workers,
    )
    return Exploration(visited=frozenset(visited), stats=stats)
