"""Sharded parallel exploration with checkpoint/resume.

The canonical state space is hash-partitioned across ``N`` forked
worker processes by wire digest (:func:`repro.explore.wire.shard_of`):
each worker *owns* deduplication for its shard in its own
:class:`~repro.explore.shard.ShardStore`, successor proposals flow
directly worker-to-worker in batched messages over per-shard queues,
and the parent is a coordinator doing seeding, level commits, bound
enforcement, and stats aggregation -- there is no serial parent dedup
and no per-state pickling anywhere.

**Why levels are committed.**  The successor function is *not*
equivariant under pid renaming (tie-breaks compare pids, e.g. Ricart-
Agrawala's ``(clock, pid)`` priority), so a symmetry-reduced
exploration depends on *which* orbit member it expands.  The serial
engine's contract is "expand the first-seen reachable member"; in a
fully asynchronous sharded BFS "first-seen" would be an arrival-order
race and the visited set nondeterministic.  Instead, every proposal
carries the key ``(parent rank, candidate index)``; serial BFS
provably admits states in exactly lexicographic key order, so each
shard picks the minimum-key proposal per orbit, the coordinator merges
the per-shard sorted key lists into dense global ranks at the level
edge, and the admitted set, the expanded members -- and even the
``max_states`` cut-off point -- reproduce the serial engine bit for
bit, on every run, at any worker count.  Expansion and dedup stay
fully pipelined *within* a level; only the rank merge synchronises.

**Warm start.**  Tiny frontiers are expanded in-process with exact
serial semantics until a BFS level reaches ~2x the worker count; only
then is the accumulated visited set handed to the shards.  Small
spaces (and explorations truncated early) never pay for the pool at
all.

**Durability.**  With a ``store_dir`` each shard appends its admitted
states to its own journal (:mod:`repro.explore.shard`) and the store
spills blobs to the journal instead of RAM; the coordinator appends a
``COMMIT`` record once a level is durable on every shard.  Expansions
are deterministic from the durable member blobs, so they are never
journalled: ``resume=True`` replays the committed levels -- any worker
count, any number of earlier crashed runs -- and re-expands the last
committed level as its frontier, reaching the identical visited set
and content digest as an uninterrupted run.

Workers are plumbed their space, queues, and config through
``Process(args=...)`` under the ``fork`` start method -- inherited
in-memory, never pickled -- so concurrent explorations in one process
cannot clobber each other (no module-global handoff).
"""

from __future__ import annotations

import heapq
import os
import queue as queue_mod
import time
import traceback
from collections.abc import Callable, Hashable, Iterable, Iterator
from typing import Any

from repro.explore.shard import (
    COORDINATOR_LOG,
    ShardLog,
    ShardStore,
    WireVisitedView,
    last_committed_level,
    prepare_run_dir,
    replay_admits,
    run_dir_logs,
    shard_log_name,
    valid_prefix_len,
)
from repro.explore.spaces import StateSpace
from repro.explore.wire import (
    REC_ADMIT,
    REC_COMMIT,
    REC_MEMBER,
    WireCodec,
    shard_of,
    wire_digest,
)

#: Items per worker-to-worker proposal batch.
BATCH_SIZE = 64
#: Items per coordinator seed batch.
SEED_BATCH_SIZE = 256
#: A fresh run stays in-process until a BFS level reaches this many
#: states per worker (the adaptive serial fallback for small frontiers).
WARM_LEVEL_FACTOR = 2

#: Orbit-blob -> wire-blob memo bound (see :class:`_WireCanon`).
_MEMO_MAX = 1 << 18


class _WireCanon:
    """``key -> (canonical wire blob, digest, rewritten)`` for one process.

    Bridges a space's canonicalizer (packed fast path when available,
    object-level ``canonical_key`` otherwise, identity for exact
    spaces) to the cross-process wire encoding.  A bounded memo maps
    canonical packed blobs to their wire form, so duplicate successors
    -- the majority of examined edges -- cost one dict hit instead of a
    decode + re-encode.
    """

    __slots__ = ("packed", "canon", "wire", "_memo")

    def __init__(self, space: StateSpace):
        self.packed = getattr(space, "packed_canon", None)
        self.canon = (
            getattr(space, "canonical_key", None)
            if self.packed is None
            else None
        )
        self.wire = WireCodec()
        self._memo: dict[bytes, tuple[bytes, bytes]] = {}

    def convert(
        self, key: Hashable, parent_key: Hashable = None, delta: Any = None
    ) -> tuple[bytes, bytes, bool]:
        packed = self.packed
        if packed is not None:
            cblob, rewritten = packed.canonicalize(key, parent_key, delta)
            hit = self._memo.get(cblob)
            if hit is None:
                if len(self._memo) >= _MEMO_MAX:
                    self._memo.clear()
                blob = self.wire.encode(packed.decode(cblob))
                hit = (blob, wire_digest(blob))
                self._memo[cblob] = hit
            return hit[0], hit[1], rewritten
        rewritten = False
        if self.canon is not None:
            canonical = self.canon(key)
            rewritten = canonical is not key
            key = canonical
        blob = self.wire.encode(key)
        return blob, wire_digest(blob), rewritten

    def cache_counts(self) -> tuple[int, int]:
        if self.packed is None:
            return 0, 0
        return self.packed.stats.hits, self.packed.stats.misses


def _space_signature(space: StateSpace, max_depth: int | None) -> str:
    """A cheap fingerprint of the exploration *problem* -- pins a run
    directory to one space configuration and depth bound."""
    wc = _WireCanon(space)
    xor = 0
    count = 0
    for root in space.roots():
        _blob, digest, _rw = wc.convert(space.key(root))
        xor ^= int.from_bytes(digest, "little")
        count += 1
    group = len(getattr(space, "symmetry_group", ()) or ())
    return (
        f"{type(space).__name__}|roots={count}:{xor:032x}"
        f"|sym={group}|depth={max_depth}"
    )


# -- warm start (adaptive in-process phase) --------------------------------


class _WarmResult:
    """Outcome of the in-process phase: counters plus either a finished
    visited set or a ranked handoff for the shards.

    States are admitted in serial BFS order, so a state's index in
    ``blobs`` *is* its global rank.  ``commit_through`` is the highest
    fully-admitted level (the handoff frontier level, or for finished
    runs one past the last level so resume finds an empty frontier);
    ``members`` maps a frontier rank to its first-seen member blob when
    symmetry rewriting made it differ from the canonical blob.
    """

    __slots__ = (
        "finished",
        "blobs",
        "digest_list",
        "depths",
        "digests",
        "members",
        "commit_through",
        "xor",
        "payload_bytes",
        "expansions",
        "transitions",
        "dedup_hits",
        "orbit_reductions",
        "peak_frontier",
        "depth_reached",
        "depth_limited",
        "truncated",
        "truncation_cause",
    )

    def __init__(self) -> None:
        self.finished = False
        self.blobs: list[bytes] = []
        self.digest_list: list[bytes] = []
        self.depths: list[int] = []
        self.digests: dict[bytes, int] = {}
        self.members: dict[int, bytes] = {}
        self.commit_through = -1
        self.xor = 0
        self.payload_bytes = 0
        self.expansions = 0
        self.transitions = 0
        self.dedup_hits = 0
        self.orbit_reductions = 0
        self.peak_frontier = 0
        self.depth_reached = 0
        self.depth_limited = False
        self.truncated = False
        self.truncation_cause: str | None = None

    def seed_items(
        self,
    ) -> Iterator[tuple[bytes, int, int, bytes, bytes | None, bool]]:
        """``(digest, rank, depth, canonical_blob, member_blob,
        is_frontier)`` for every committed state."""
        frontier_level = self.commit_through
        for rank, blob in enumerate(self.blobs):
            depth = self.depths[rank]
            if depth > frontier_level:
                continue
            yield (
                self.digest_list[rank],
                rank,
                depth,
                blob,
                self.members.get(rank),
                depth == frontier_level,
            )


def _warm_start(
    space: StateSpace,
    wc: _WireCanon,
    *,
    threshold: int,
    max_depth: int | None,
    max_states: int | None,
    max_seconds: float | None,
    started: float,
) -> _WarmResult:
    """Serial-semantics level BFS until the frontier outgrows
    ``threshold`` (handoff) or the exploration ends (finished)."""
    from repro.explore.engine import TRUNCATED_BY_STATES, TRUNCATED_BY_TIME

    out = _WarmResult()
    delta_of = getattr(space, "delta_of", None)
    key_of = space.key

    def admit(blob: bytes, digest: bytes, depth: int) -> int | None:
        rank = out.digests.get(digest)
        if rank is not None:
            return None
        rank = len(out.blobs)
        out.digests[digest] = rank
        out.digest_list.append(digest)
        out.blobs.append(blob)
        out.depths.append(depth)
        out.xor ^= int.from_bytes(digest, "little")
        out.payload_bytes += len(blob)
        return rank

    level: list[tuple[Any, int]] = []
    for root in space.roots():
        blob, digest, rewritten = wc.convert(key_of(root))
        out.orbit_reductions += rewritten
        if max_states is not None and len(out.digests) >= max_states:
            if digest in out.digests:
                continue
            out.truncated = True
            out.truncation_cause = TRUNCATED_BY_STATES
            break
        rank = admit(blob, digest, 0)
        if rank is not None:
            level.append((root, rank))
    out.peak_frontier = len(level)

    depth = 0
    while level and not out.truncated:
        out.commit_through = depth
        out.depth_reached = max(out.depth_reached, depth)
        if max_depth is not None and depth >= max_depth:
            out.depth_limited = True
            break
        if len(level) >= threshold:
            # Handoff: this level expands on the shards.  Record the
            # first-seen members the serial contract says the shards
            # must expand (non-equivariance: the canonical blob may
            # behave differently from the state actually reached).
            for node, rank in level:
                member = wc.wire.encode(key_of(node))
                if member != out.blobs[rank]:
                    out.members[rank] = member
            return out
        next_level: list[tuple[Any, int]] = []
        for consumed, (node, rank) in enumerate(level, 1):
            if (
                max_seconds is not None
                and time.perf_counter() - started > max_seconds
            ):
                out.truncated = True
                out.truncation_cause = TRUNCATED_BY_TIME
                break
            out.expansions += 1
            parent_key = key_of(node)
            for succ in space.successors(node):
                out.transitions += 1
                blob, digest, rewritten = wc.convert(
                    key_of(succ),
                    parent_key,
                    delta_of(succ) if delta_of is not None else None,
                )
                out.orbit_reductions += rewritten
                if (
                    max_states is not None
                    and len(out.digests) >= max_states
                ):
                    if digest in out.digests:
                        out.dedup_hits += 1
                        continue
                    out.truncated = True
                    out.truncation_cause = TRUNCATED_BY_STATES
                    break
                child = admit(blob, digest, depth + 1)
                if child is None:
                    out.dedup_hits += 1
                    continue
                next_level.append((succ, child))
            out.peak_frontier = max(
                out.peak_frontier,
                len(level) - consumed + len(next_level),
            )
            if out.truncated:
                break
        level = next_level if not out.truncated else []
        depth += 1

    if not out.truncated and not out.depth_limited:
        # Natural completion: commit one final *empty* level, so a
        # resume of this directory finds an empty frontier and returns
        # the finished set without re-expanding anything.
        out.commit_through = depth
    out.finished = True
    return out


# -- worker process --------------------------------------------------------


class _Shard:
    """One worker: owns a shard's dedup, admits by global rank."""

    def __init__(
        self,
        space: StateSpace,
        wid: int,
        shards: int,
        inboxes: list,
        coord_q,
        log_path: str | None,
    ):
        self.space = space
        self.wid = wid
        self.shards = shards
        self.inboxes = inboxes
        self.inbox = inboxes[wid]
        self.coord_q = coord_q
        self.parent_pid = os.getppid()
        self.log = ShardLog(log_path) if log_path is not None else None
        self.store = ShardStore(keep_blobs=self.log is None)
        self.wc = _WireCanon(space)
        self.canon0 = self.wc.cache_counts()
        self.node_of = getattr(space, "node_of_key", None)
        self.delta_of = getattr(space, "delta_of", None)

        #: (global rank, member blob) -- the level currently owed
        #: expansion.
        self.frontier: list[tuple[int, bytes]] = []
        #: Proposals received for the level being built:
        #: (digest, parent rank, candidate index, canonical blob,
        #: member blob when it differs).
        self.props: list[tuple[bytes, int, int, bytes, bytes | None]] = []
        self.winners: list | None = None
        self.recv_batches: dict[int, int] = {}
        self.sent_batches = 0
        self.expansions = 0
        self.transitions = 0
        self.dedup_hits = 0
        self.orbit_reductions = 0
        self.halted = False
        self.stopping = False

    # -- message plumbing --------------------------------------------------

    def _get(self, timeout: float = 0.3):
        while True:
            try:
                return self.inbox.get(timeout=timeout)
            except queue_mod.Empty:
                if os.getppid() != self.parent_pid:
                    raise SystemExit(0) from None  # orphaned

    def _drain_nowait(self) -> None:
        while not (self.halted or self.stopping):
            try:
                message = self.inbox.get_nowait()
            except queue_mod.Empty:
                return
            self.handle(message)

    def handle(self, message: tuple) -> None:
        kind = message[0]
        if kind == "P":
            level, items = message[1], message[2]
            self.props.extend(items)
            self.recv_batches[level] = self.recv_batches.get(level, 0) + 1
        elif kind == "SEED":
            for digest, rank, _depth, cblob, mblob, is_front in message[1]:
                self.store.admit(digest, cblob)
                if is_front:
                    self.frontier.append(
                        (rank, mblob if mblob is not None else cblob)
                    )
        elif kind == "EXPAND":
            self.expand_level(message[1])
        elif kind == "CLOSE":
            self.close_level(message[1], message[2])
        elif kind == "RANKS":
            self.admit_level(message[1], message[2])
        elif kind == "HALT":
            self.halted = True
            self.frontier = []
            self.props = []
            self.winners = None
        elif kind == "STOP":
            self.stopping = True

    # -- the level protocol ------------------------------------------------

    def expand_level(self, level: int) -> None:
        """Expand every frontier member, routing proposals by digest."""
        wc = self.wc
        space = self.space
        key_of = space.key
        node_of = self.node_of
        delta_of = self.delta_of
        out: list[list] = [[] for _ in range(self.shards)]
        counts = [0] * self.shards
        for rank, member_blob in self.frontier:
            if self.halted or self.stopping:
                return
            self.expansions += 1
            state = wc.wire.decode(member_blob)
            if node_of is not None:
                succs: Iterable[Any] = space.successors(node_of(state))
            else:
                succs = space.successors_of_key(state)
            cand = 0
            for succ in succs:
                self.transitions += 1
                if node_of is not None:
                    skey = key_of(succ)
                    delta = delta_of(succ) if delta_of is not None else None
                else:
                    skey, delta = succ, None
                cblob, digest, rewritten = wc.convert(skey, state, delta)
                self.orbit_reductions += rewritten
                member = wc.wire.encode(skey) if rewritten else None
                item = (digest, rank, cand, cblob, member)
                cand += 1
                dest = shard_of(digest, self.shards)
                if dest == self.wid:
                    self.props.append(item)
                    continue
                bucket = out[dest]
                bucket.append(item)
                if len(bucket) >= BATCH_SIZE:
                    self.inboxes[dest].put(("P", level, bucket))
                    out[dest] = []
                    counts[dest] += 1
                    self.sent_batches += 1
            self._drain_nowait()  # stay responsive to HALT/STOP
        if self.halted or self.stopping:
            return
        for dest in range(self.shards):
            if out[dest]:
                self.inboxes[dest].put(("P", level, out[dest]))
                counts[dest] += 1
                self.sent_batches += 1
        self.frontier = []
        self.coord_q.put(("LDONE", self.wid, level, counts))

    def close_level(self, level: int, expected: int) -> None:
        """Await the level's full proposal set, pick min-key winners."""
        while (
            self.recv_batches.get(level, 0) < expected
            and not (self.halted or self.stopping)
        ):
            self.handle(self._get())
        if self.halted or self.stopping:
            return
        self.recv_batches.pop(level, None)
        fresh: dict[bytes, tuple] = {}
        for item in self.props:
            digest = item[0]
            if digest in self.store.digests:
                self.dedup_hits += 1
                continue
            current = fresh.get(digest)
            if current is None:
                fresh[digest] = item
            else:
                self.dedup_hits += 1
                if (item[1], item[2]) < (current[1], current[2]):
                    fresh[digest] = item
        self.props = []
        self.winners = sorted(fresh.values(), key=lambda it: (it[1], it[2]))
        self.coord_q.put(
            (
                "KEYS",
                self.wid,
                level,
                [(it[1], it[2]) for it in self.winners],
            )
        )

    def admit_level(self, level: int, ranks: list[int]) -> None:
        """Admit the globally-ranked prefix of this shard's winners.

        ``ranks`` aligns with the sorted winner list; it is shorter
        when the coordinator cut admission at the ``max_states``
        budget (exactly where the serial engine would have stopped).
        """
        log = self.log
        next_frontier = []
        for offset, rank in enumerate(ranks):
            digest, _prank, _cand, cblob, mblob = self.winners[offset]
            if log is not None:
                log.append(REC_ADMIT, level + 1, rank, digest + cblob)
                if mblob is not None:
                    log.append(REC_MEMBER, level + 1, rank, mblob)
            self.store.admit(digest, cblob)
            next_frontier.append(
                (rank, mblob if mblob is not None else cblob)
            )
        self.winners = None
        self.frontier = next_frontier
        if log is not None:
            log.flush()  # durable before the coordinator may COMMIT
        self.coord_q.put(("LSTATS", self.wid, level, len(ranks)))

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        while not self.stopping:
            self.handle(self._get())
        if self.log is not None:
            self.log.flush()
        self.collect()

    def collect(self) -> None:
        store = self.store
        if store.blobs is not None:
            for start in range(0, len(store.blobs), 512):
                self.coord_q.put(
                    ("BLOBS", self.wid, store.blobs[start : start + 512])
                )
        else:
            digests = store.digests_blob()
            step = 1 << 20
            for start in range(0, len(digests), step):
                self.coord_q.put(
                    ("DIGESTS", self.wid, digests[start : start + step])
                )
        canon_hits, canon_misses = self.wc.cache_counts()
        self.coord_q.put(
            (
                "DONE",
                self.wid,
                {
                    "admitted": len(store),
                    "expansions": self.expansions,
                    "transitions": self.transitions,
                    "dedup_hits": self.dedup_hits,
                    "orbit_reductions": self.orbit_reductions,
                    "canon_hits": canon_hits - self.canon0[0],
                    "canon_misses": canon_misses - self.canon0[1],
                    "batches": self.sent_batches,
                    "payload_bytes": store.payload_bytes,
                    "xor": store.xor,
                    "spill_bytes": (
                        self.log.bytes_written if self.log else 0
                    ),
                },
            )
        )


def _worker_main(
    space: StateSpace,
    wid: int,
    shards: int,
    inboxes: list,
    coord_q,
    log_path: str | None,
) -> None:
    shard = _Shard(space, wid, shards, inboxes, coord_q, log_path)
    try:
        shard.run()
    except SystemExit:
        pass
    except Exception:  # pragma: no cover - surfaced via coordinator
        coord_q.put(("ERR", wid, traceback.format_exc()))
    finally:
        if shard.log is not None:
            shard.log.close()
        for index, peer in enumerate(inboxes):
            if index != wid:
                peer.close()
                peer.cancel_join_thread()


# -- coordinator -----------------------------------------------------------


def _route_seeds(inboxes: list, shards: int, items: Iterable[tuple]) -> int:
    """Batch seed tuples to their owners; returns states routed."""
    buffers: list[list] = [[] for _ in range(shards)]
    routed = 0
    for item in items:
        dest = shard_of(item[0], shards)
        buffers[dest].append(item)
        routed += 1
        if len(buffers[dest]) >= SEED_BATCH_SIZE:
            inboxes[dest].put(("SEED", buffers[dest]))
            buffers[dest] = []
    for dest in range(shards):
        if buffers[dest]:
            inboxes[dest].put(("SEED", buffers[dest]))
    return routed


def _merge_ranks(
    keys_by_wid: dict[int, list[tuple[int, int]]],
    base: int,
    budget: int | None,
) -> tuple[dict[int, list[int]], int, bool]:
    """Merge per-shard sorted winner keys into dense global ranks.

    Keys are globally unique (a parent rank plus a candidate index
    identifies one proposal), so the merge is unambiguous.  With a
    ``budget`` the assignment stops at exactly the serial engine's
    ``max_states`` cut-off point; ``cut`` reports whether anything was
    dropped.
    """
    streams = [
        [key + (wid,) for key in keys] for wid, keys in keys_by_wid.items()
    ]
    ranks: dict[int, list[int]] = {wid: [] for wid in keys_by_wid}
    assigned = 0
    cut = False
    for _prank, _cand, wid in heapq.merge(*streams):
        if budget is not None and assigned >= budget:
            cut = True
            break
        ranks[wid].append(base + assigned)
        assigned += 1
    return ranks, assigned, cut


def explore_parallel(
    space: StateSpace,
    *,
    workers: int,
    max_depth: int | None,
    max_states: int | None,
    max_seconds: float | None,
    on_visit: Callable[[Hashable, int], None] | None,
    store_dir: str | None = None,
    resume: bool = False,
):
    """Sharded level-committed BFS; ``None`` if unsupported.

    Unsupported cases (no ``fork``, no ``successors_of_key``, or an
    ``on_visit`` callback, which needs the serial engine's in-order
    visits) fall back to in-process exploration in the caller.
    """
    import multiprocessing

    from repro.explore.engine import (
        TRUNCATED_BY_STATES,
        TRUNCATED_BY_TIME,
        ExplorationStats,
    )

    if on_visit is not None:
        return None
    if not hasattr(space, "successors_of_key"):
        return None
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return None

    started = time.perf_counter()
    shards = max(1, workers)
    wc = _WireCanon(space)
    canon0 = wc.cache_counts()

    # -- durable run directory --------------------------------------------
    coord_log: ShardLog | None = None
    committed = -1
    if store_dir is not None:
        prepare_run_dir(store_dir, _space_signature(space, max_depth))
        for path in run_dir_logs(store_dir):
            # A fresh run restarts the directory; a resume only trims
            # torn record tails so appends stay frame-aligned.
            os.truncate(path, valid_prefix_len(path) if resume else 0)
        if resume:
            committed = last_committed_level(store_dir)
        coord_log = ShardLog(os.path.join(store_dir, COORDINATOR_LOG))
    elif resume:
        raise ValueError("resume=True requires a store_dir")
    resuming = committed >= 0

    # -- warm start / seed derivation -------------------------------------
    warm: _WarmResult | None = None
    if not resuming:
        warm = _warm_start(
            space,
            wc,
            threshold=WARM_LEVEL_FACTOR * shards,
            max_depth=max_depth,
            max_states=max_states,
            max_seconds=max_seconds,
            started=started,
        )
        if coord_log is not None:
            for rank, blob in enumerate(warm.blobs):
                depth = warm.depths[rank]
                if depth > warm.commit_through:
                    continue  # truncated mid-level: not checkpointable
                coord_log.append(
                    REC_ADMIT, depth, rank, warm.digest_list[rank] + blob
                )
                member = warm.members.get(rank)
                if member is not None:
                    coord_log.append(REC_MEMBER, depth, rank, member)
            for lvl in range(warm.commit_through + 1):
                admitted = sum(
                    1
                    for depth in warm.depths
                    if depth == lvl
                )
                coord_log.append(
                    REC_COMMIT, lvl, 0, admitted.to_bytes(8, "little")
                )
            coord_log.flush()
        if warm.finished:
            if coord_log is not None:
                coord_log.close()
            canon_hits, canon_misses = wc.cache_counts()
            view = WireVisitedView(
                set(warm.digests),
                warm.blobs,
                None,
                warm.payload_bytes,
                warm.xor,
            )
            stats = ExplorationStats(
                strategy="bfs",
                states=len(view),
                expansions=warm.expansions,
                transitions=warm.transitions,
                dedup_hits=warm.dedup_hits,
                depth_reached=warm.depth_reached,
                depth_limited=warm.depth_limited,
                peak_frontier=warm.peak_frontier,
                elapsed_seconds=time.perf_counter() - started,
                truncated=warm.truncated,
                truncation_cause=warm.truncation_cause,
                workers=workers,
                orbit_reductions=warm.orbit_reductions,
                bytes_per_state=view.bytes_per_state,
                canon_cache_hits=canon_hits - canon0[0],
                canon_cache_misses=canon_misses - canon0[1],
            )
            return view.into_exploration(stats)

    # -- spin up the shards -----------------------------------------------
    inboxes = [ctx.Queue() for _ in range(shards)]
    coord_q = ctx.Queue()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(
                space,
                wid,
                shards,
                inboxes,
                coord_q,
                (
                    os.path.join(store_dir, shard_log_name(wid))
                    if store_dir is not None
                    else None
                ),
            ),
            daemon=True,
        )
        for wid in range(shards)
    ]
    for proc in procs:
        proc.start()

    truncated = False
    truncation_cause: str | None = None
    depth_limited = False
    resumed_states = 0
    reexpansions = 0
    seed_batches = 0
    level_sizes: list[int] = []
    halted = False
    try:

        def broadcast(message: tuple) -> None:
            for dest in range(shards):
                inboxes[dest].put(message)

        def overtime() -> bool:
            return (
                max_seconds is not None
                and time.perf_counter() - started > max_seconds
            )

        def gather(kind: str, level: int) -> dict[int, Any] | None:
            """Collect one protocol message per shard; ``None`` means
            the run was halted (time budget) while waiting."""
            nonlocal halted, truncated, truncation_cause
            out: dict[int, Any] = {}
            while len(out) < shards:
                if overtime() and not halted:
                    truncated = True
                    truncation_cause = TRUNCATED_BY_TIME
                    halted = True
                    broadcast(("HALT",))
                    return None
                try:
                    message = coord_q.get(timeout=0.05)
                except queue_mod.Empty:
                    for proc in procs:
                        if not proc.is_alive():
                            raise RuntimeError(
                                f"exploration worker {proc.pid} died "
                                "unexpectedly"
                            ) from None
                    continue
                if message[0] == "ERR":
                    raise RuntimeError(
                        f"exploration worker {message[1]} failed:\n"
                        f"{message[2]}"
                    )
                if message[0] == kind and message[2] == level:
                    out[message[1]] = message[3]
            return out

        # -- seeding ------------------------------------------------------
        if resuming:
            frontier_level = committed
            seeds = replay_admits(run_dir_logs(store_dir), committed)
            frontier_total = 0
            visited_total = 0

            def tag_frontier(items):
                nonlocal frontier_total, visited_total
                for digest, rank, depth, cblob, mblob in items:
                    visited_total += 1
                    is_front = depth == frontier_level
                    frontier_total += is_front
                    yield digest, rank, depth, cblob, mblob, is_front

            _route_seeds(inboxes, shards, tag_frontier(seeds))
            resumed_states = visited_total
            reexpansions = frontier_total
        else:
            frontier_level = warm.commit_through
            visited_total = sum(
                1
                for depth in warm.depths
                if depth <= warm.commit_through
            )
            frontier_total = sum(
                1
                for depth in warm.depths
                if depth == warm.commit_through
            )
            _route_seeds(inboxes, shards, warm.seed_items())
        next_rank = visited_total
        depth_reached = max(frontier_level, 0)

        # -- the level loop -----------------------------------------------
        while True:
            if frontier_total == 0:
                break
            if max_depth is not None and frontier_level >= max_depth:
                depth_limited = True
                break
            if overtime():
                truncated = True
                truncation_cause = TRUNCATED_BY_TIME
                halted = True
                broadcast(("HALT",))
                break
            broadcast(("EXPAND", frontier_level))
            ldone = gather("LDONE", frontier_level)
            if ldone is None:
                break
            for dest in range(shards):
                expected = sum(ldone[wid][dest] for wid in range(shards))
                inboxes[dest].put(("CLOSE", frontier_level, expected))
            keys = gather("KEYS", frontier_level)
            if keys is None:
                break
            budget = (
                None
                if max_states is None
                else max(0, max_states - visited_total)
            )
            ranks, admitted_total, cut = _merge_ranks(
                keys, next_rank, budget
            )
            for wid in range(shards):
                inboxes[wid].put(("RANKS", frontier_level, ranks[wid]))
            if gather("LSTATS", frontier_level) is None:
                break
            visited_total += admitted_total
            next_rank += admitted_total
            if admitted_total:
                level_sizes.append(admitted_total)
                depth_reached = frontier_level + 1
            if cut:
                # The serial engine stops at its first over-budget
                # fresh state; the partial level is in the result but
                # deliberately *not* committed (resume recomputes it).
                truncated = True
                truncation_cause = TRUNCATED_BY_STATES
                break
            if coord_log is not None:
                coord_log.append(
                    REC_COMMIT,
                    frontier_level + 1,
                    0,
                    admitted_total.to_bytes(8, "little"),
                )
                coord_log.flush()
            frontier_level += 1
            frontier_total = admitted_total

        # -- collection ---------------------------------------------------
        broadcast(("STOP",))
        digests: set[bytes] = set()
        blobs: list[bytes] | None = None if store_dir is not None else []
        worker_stats: dict[int, dict] = {}
        while len(worker_stats) < shards:
            message = coord_q.get(timeout=60.0)
            kind = message[0]
            if kind == "BLOBS":
                for blob in message[2]:
                    digests.add(wire_digest(blob))
                    blobs.append(blob)
            elif kind == "DIGESTS":
                raw = message[2]
                for start in range(0, len(raw), 16):
                    digests.add(raw[start : start + 16])
            elif kind == "DONE":
                worker_stats[message[1]] = message[2]
            elif kind == "ERR":
                raise RuntimeError(
                    f"exploration worker {message[1]} failed:\n{message[2]}"
                )
            # stale LDONE/KEYS/LSTATS from a halted level are ignored
        for proc in procs:
            proc.join(timeout=10.0)
    finally:
        if coord_log is not None:
            coord_log.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for box in inboxes:
            box.close()
            box.cancel_join_thread()
        coord_q.close()
        coord_q.cancel_join_thread()

    # -- aggregation ------------------------------------------------------
    stats_by_wid = [worker_stats[wid] for wid in range(shards)]
    xor = 0
    for ws in stats_by_wid:
        xor ^= ws["xor"]
    payload_bytes = sum(ws["payload_bytes"] for ws in stats_by_wid)
    view = WireVisitedView(
        digests,
        blobs,
        run_dir_logs(store_dir) if store_dir is not None else None,
        payload_bytes,
        xor,
    )
    canon_hits, canon_misses = wc.cache_counts()
    warm_expansions = warm.expansions if warm is not None else 0
    warm_transitions = warm.transitions if warm is not None else 0
    warm_dedup = warm.dedup_hits if warm is not None else 0
    warm_orbit = warm.orbit_reductions if warm is not None else 0
    warm_peak = warm.peak_frontier if warm is not None else 0
    stats = ExplorationStats(
        strategy="bfs",
        states=len(view),
        expansions=warm_expansions
        + sum(ws["expansions"] for ws in stats_by_wid),
        transitions=warm_transitions
        + sum(ws["transitions"] for ws in stats_by_wid),
        dedup_hits=warm_dedup
        + sum(ws["dedup_hits"] for ws in stats_by_wid),
        depth_reached=depth_reached,
        depth_limited=depth_limited,
        peak_frontier=max(
            [warm_peak] + level_sizes
        ),
        elapsed_seconds=time.perf_counter() - started,
        truncated=truncated,
        truncation_cause=truncation_cause,
        workers=workers,
        orbit_reductions=warm_orbit
        + sum(ws["orbit_reductions"] for ws in stats_by_wid),
        bytes_per_state=view.bytes_per_state,
        canon_cache_hits=(canon_hits - canon0[0])
        + sum(ws["canon_hits"] for ws in stats_by_wid),
        canon_cache_misses=(canon_misses - canon0[1])
        + sum(ws["canon_misses"] for ws in stats_by_wid),
        shard_states=tuple(ws["admitted"] for ws in stats_by_wid),
        batches=seed_batches + sum(ws["batches"] for ws in stats_by_wid),
        reexpansions=reexpansions,
        spill_bytes=sum(ws["spill_bytes"] for ws in stats_by_wid),
        resumed_states=resumed_states,
    )
    return view.into_exploration(stats)
