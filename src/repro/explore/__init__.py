"""Unified state-space exploration: one engine for every bounded search.

See :mod:`repro.explore.engine` for the engine and its instrumentation,
:mod:`repro.explore.spaces` for the adapters (transition-system graphs,
global simulator spaces, per-process local spaces), and
:mod:`repro.explore.parallel` for process-pool expansion.
"""

from repro.explore.engine import (
    BFS,
    DFS,
    TRUNCATED_BY_STATES,
    TRUNCATED_BY_TIME,
    Exploration,
    ExplorationStats,
    explore,
)
from repro.explore.spaces import (
    GlobalSimulatorSpace,
    LocalProcessSpace,
    StateSpace,
    TransitionSystemSpace,
)

__all__ = [
    "BFS",
    "DFS",
    "TRUNCATED_BY_STATES",
    "TRUNCATED_BY_TIME",
    "Exploration",
    "ExplorationStats",
    "GlobalSimulatorSpace",
    "LocalProcessSpace",
    "StateSpace",
    "TransitionSystemSpace",
    "explore",
]
