"""Unified state-space exploration: one engine for every bounded search.

See :mod:`repro.explore.engine` for the engine and its instrumentation,
:mod:`repro.explore.spaces` for the adapters (transition-system graphs,
global simulator spaces, per-process local spaces),
:mod:`repro.explore.canon` for process-permutation symmetry reduction,
:mod:`repro.explore.store` for the interned packed visited store, and
:mod:`repro.explore.parallel` for process-pool expansion.
"""

from repro.explore.canon import (
    canonical_global,
    canonical_local,
    full_symmetry,
    orbit_of,
    peer_symmetry,
    rename_global_state,
    rename_local_snapshot,
    rename_value,
    ring_rotations,
)
from repro.explore.engine import (
    BFS,
    DFS,
    TRUNCATED_BY_STATES,
    TRUNCATED_BY_TIME,
    Exploration,
    ExplorationStats,
    PhaseProfile,
    explore,
)
from repro.explore.packed import (
    CachedCanonicalizer,
    PackedGlobalCanonicalizer,
)
from repro.explore.spaces import (
    FULL_SYMMETRY,
    RING_SYMMETRY,
    GlobalSimulatorSpace,
    LocalProcessSpace,
    StateSpace,
    TransitionSystemSpace,
)
from repro.explore.store import (
    GlobalStateCodec,
    InternedStateStore,
    Interner,
    PlainStateStore,
    StateCodec,
    make_visited_store,
    order_key,
)

__all__ = [
    "BFS",
    "DFS",
    "FULL_SYMMETRY",
    "RING_SYMMETRY",
    "TRUNCATED_BY_STATES",
    "TRUNCATED_BY_TIME",
    "CachedCanonicalizer",
    "Exploration",
    "ExplorationStats",
    "GlobalSimulatorSpace",
    "GlobalStateCodec",
    "InternedStateStore",
    "Interner",
    "LocalProcessSpace",
    "PackedGlobalCanonicalizer",
    "PhaseProfile",
    "PlainStateStore",
    "StateCodec",
    "StateSpace",
    "TransitionSystemSpace",
    "canonical_global",
    "canonical_local",
    "explore",
    "full_symmetry",
    "make_visited_store",
    "orbit_of",
    "order_key",
    "peer_symmetry",
    "rename_global_state",
    "rename_local_snapshot",
    "rename_value",
    "ring_rotations",
]
