"""The unified state-space exploration engine.

Every bounded search in this repository -- whitebox global-state
enumeration, graybox per-process enumeration, transition-system
reachability, and the operational convergence-point scan -- is one
instance of the same loop: pop a node from a frontier, deduplicate its
successors against a visited set, push the fresh ones.  This module owns
that loop once, with

* pluggable frontier strategies (:data:`BFS` / :data:`DFS`),
* uniform bounds (``max_depth``, ``max_states``, ``max_seconds``), and
* a :class:`ExplorationStats` record attached to every result, so the
  paper's central cost claim (Section 1: whitebox verification covers the
  *global* product space, graybox verification the per-process *sum*) is
  measured by instrumented runs rather than ad-hoc counters.

The searched object is abstracted behind the
:class:`~repro.explore.spaces.StateSpace` protocol; see
:mod:`repro.explore.spaces` for the three concrete adapters and
:mod:`repro.explore.parallel` for the optional process-pool expansion
mode used by global exploration.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

from repro.explore.spaces import StateSpace

BFS = "bfs"
DFS = "dfs"

#: Truncation causes reported by :class:`ExplorationStats`.
TRUNCATED_BY_STATES = "max_states"
TRUNCATED_BY_TIME = "time_budget"


@dataclass(frozen=True)
class PhaseProfile:
    """Wall-clock breakdown of one exploration's inner loop.

    Phases (seconds, non-overlapping):

    ``expand``
        Generating successors (simulator forking, effect application).
    ``canonicalize``
        Symmetry canonicalization of roots and successors (0.0 when the
        space defines no symmetry).
    ``store``
        Visited-set insertions that stored a fresh state (encode +
        intern + dict insert).
    ``dedup``
        Visited-set probes that hit an already-stored state.

    ``overhead_seconds`` is the run's elapsed time minus the four
    phases: frontier bookkeeping, bound checks, timer cost.
    """

    expand_seconds: float
    canonicalize_seconds: float
    store_seconds: float
    dedup_seconds: float
    elapsed_seconds: float

    @property
    def overhead_seconds(self) -> float:
        return max(
            0.0,
            self.elapsed_seconds
            - self.expand_seconds
            - self.canonicalize_seconds
            - self.store_seconds
            - self.dedup_seconds,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "expand_seconds": round(self.expand_seconds, 6),
            "canonicalize_seconds": round(self.canonicalize_seconds, 6),
            "store_seconds": round(self.store_seconds, 6),
            "dedup_seconds": round(self.dedup_seconds, 6),
            "overhead_seconds": round(self.overhead_seconds, 6),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }

    def describe(self) -> str:
        """Multi-line human-readable phase table."""
        total = self.elapsed_seconds or 1.0
        rows = [
            ("expand", self.expand_seconds),
            ("canonicalize", self.canonicalize_seconds),
            ("store", self.store_seconds),
            ("dedup", self.dedup_seconds),
            ("overhead", self.overhead_seconds),
        ]
        lines = ["phase breakdown:"]
        for name, seconds in rows:
            lines.append(
                f"  {name:<13} {seconds:8.3f}s  {seconds / total:6.1%}"
            )
        lines.append(f"  {'total':<13} {self.elapsed_seconds:8.3f}s")
        return "\n".join(lines)


@dataclass(frozen=True)
class ExplorationStats:
    """Instrumentation of one exploration run.

    ``states``
        Distinct states visited (roots included).
    ``expansions``
        Nodes whose successors were enumerated (nodes cut by the depth
        bound are visited but never expanded).
    ``transitions``
        Successor edges examined, including duplicates.
    ``dedup_hits``
        Successors discarded because their key was already visited.
    ``depth_reached``
        Deepest node popped from the frontier.
    ``depth_limited``
        Some node was left unexpanded because of ``max_depth``.
    ``peak_frontier``
        Largest frontier observed (memory high-water mark).
    ``truncated`` / ``truncation_cause``
        Whether the search stopped early and why (``"max_states"`` or
        ``"time_budget"``); a pure depth bound is *not* a truncation --
        the bounded space was explored exhaustively.
    ``workers``
        Process-pool size used for expansion (1 = in-process).
    ``orbit_reductions``
        Examined keys (roots and successors, duplicates included) that
        symmetry canonicalization rewrote to a different orbit
        representative; 0 when the space defines no symmetry.
    ``bytes_per_state``
        Mean packed payload bytes per visited state in the interned
        store; 0.0 when the space defines no ``codec`` (plain-set
        storage of the original keys).
    ``canon_cache_hits`` / ``canon_cache_misses``
        Orbit-representative cache activity (packed canonicalization
        only): a hit means an examined key's canonical form was served
        from the blob-keyed cache without touching the permutation
        group.
    ``shard_states``
        Per-shard visited counts of a sharded run (empty for serial
        runs) -- the shard-balance view of the hash partition.
    ``batches``
        Proposal batches that crossed inter-process queues.
    ``reexpansions``
        States re-expanded by a checkpoint resume: the last committed
        frontier level is expanded again because expansions are never
        journalled (they are deterministic from the durable members).
    ``spill_bytes``
        Bytes appended to on-disk shard journals (0 without a
        ``store_dir``).
    ``resumed_states``
        States seeded from replayed checkpoint journals.
    ``profile``
        Per-phase wall-clock breakdown (only when the exploration ran
        with ``profile=True``).
    """

    strategy: str
    states: int
    expansions: int
    transitions: int
    dedup_hits: int
    depth_reached: int
    depth_limited: bool
    peak_frontier: int
    elapsed_seconds: float
    truncated: bool
    truncation_cause: str | None
    workers: int = 1
    orbit_reductions: int = 0
    bytes_per_state: float = 0.0
    canon_cache_hits: int = 0
    canon_cache_misses: int = 0
    shard_states: tuple[int, ...] = ()
    batches: int = 0
    reexpansions: int = 0
    spill_bytes: int = 0
    resumed_states: int = 0
    profile: PhaseProfile | None = None

    @property
    def states_per_second(self) -> float:
        """Visit throughput (0.0 for an instantaneous run)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.states / self.elapsed_seconds

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of examined transitions that hit the visited set."""
        if self.transitions == 0:
            return 0.0
        return self.dedup_hits / self.transitions

    @property
    def canon_cache_hit_rate(self) -> float:
        """Fraction of canonicalizations served from the orbit cache."""
        lookups = self.canon_cache_hits + self.canon_cache_misses
        if lookups == 0:
            return 0.0
        return self.canon_cache_hits / lookups

    def describe(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.states} states in {self.elapsed_seconds:.3f}s "
            f"({self.states_per_second:,.0f} states/s, {self.strategy}"
        )
        if self.workers > 1:
            text += f" x{self.workers} workers"
        text += (
            f"), depth {self.depth_reached}, "
            f"dedup {self.dedup_hit_rate:.0%}, "
            f"peak frontier {self.peak_frontier}"
        )
        if self.orbit_reductions:
            text += f", {self.orbit_reductions} orbit rewrites"
        if self.canon_cache_hits or self.canon_cache_misses:
            text += f", canon cache {self.canon_cache_hit_rate:.0%}"
        if self.shard_states:
            lo, hi = min(self.shard_states), max(self.shard_states)
            text += f", shards {lo}-{hi}"
        if self.reexpansions:
            text += f", {self.reexpansions} re-expansions"
        if self.spill_bytes:
            text += f", {self.spill_bytes / 1024:.0f} KiB spilled"
        if self.resumed_states:
            text += f", {self.resumed_states} resumed"
        if self.bytes_per_state:
            text += f", {self.bytes_per_state:.0f} B/state"
        if self.truncated:
            text += f", TRUNCATED by {self.truncation_cause}"
        elif self.depth_limited:
            text += ", depth-bounded"
        return text


class Exploration:
    """Result of one exploration: the visited keys plus statistics.

    When the search ran over an interned store, the packed blobs are
    kept and :attr:`visited` decodes them back into full keys only on
    first access; membership tests re-encode the probe instead of
    materialising anything.  For plain-set searches this is exactly the
    old frozenset-carrying record.
    """

    __slots__ = ("stats", "_visited", "_store")

    def __init__(
        self,
        visited: frozenset[Hashable] | None = None,
        stats: ExplorationStats | None = None,
        store: Any = None,
    ):
        if (visited is None) == (store is None):
            raise ValueError("pass exactly one of visited= or store=")
        self._visited = visited
        self._store = store
        self.stats = stats

    @property
    def visited(self) -> frozenset[Hashable]:
        """The distinct visited keys (decoded lazily from the store)."""
        if self._visited is None:
            self._visited = frozenset(self._store.keys())
        return self._visited

    @property
    def states(self) -> int:
        """Distinct states visited."""
        return len(self)

    def __len__(self) -> int:
        if self._store is not None:
            return len(self._store)
        return len(self._visited)

    def __contains__(self, key: Hashable) -> bool:
        if self._store is not None:
            return key in self._store
        return key in self._visited

    def content_digest(self) -> str:
        """Order-independent 128-bit digest of the visited set.

        Serial, sharded, and checkpoint-resumed explorations of the
        same bounded space produce the same hex string (the XOR of
        per-state wire digests plus the cardinality -- see
        :mod:`repro.explore.wire`), so it serves as the re-validation
        anchor for a run: equal digest, equal visited set.
        """
        if self._store is not None and hasattr(
            self._store, "content_digest"
        ):
            return self._store.content_digest()
        from repro.explore.wire import (
            WireCodec,
            content_digest,
            wire_digest,
        )

        codec = WireCodec()
        xor = 0
        count = 0
        keys = self._store.keys() if self._store is not None else self._visited
        for key in keys:
            xor ^= int.from_bytes(
                wire_digest(codec.encode(key)), "little"
            )
            count += 1
        return content_digest(xor, count)


#: Sentinel for exhausted successor iterators (profiled iteration).
_DONE = object()


def explore(
    space: StateSpace,
    *,
    strategy: str = BFS,
    max_depth: int | None = None,
    max_states: int | None = None,
    max_seconds: float | None = None,
    workers: int = 1,
    on_visit: Callable[[Hashable, int], None] | None = None,
    profile: bool = False,
    store_dir: str | None = None,
    resume: bool = False,
) -> Exploration:
    """Explore ``space`` from its roots under the given strategy and bounds.

    ``on_visit(key, depth)`` is called exactly once per distinct state, in
    visit order (roots first).  ``workers > 1`` requests the sharded
    pipelined engine (BFS only; the space must implement
    ``successors_of_key`` -- see :mod:`repro.explore.parallel`); it falls
    back to in-process expansion when the platform cannot fork or an
    ``on_visit`` callback needs serial in-order visits.  ``profile=True``
    attaches a :class:`PhaseProfile` wall-clock breakdown (expand /
    canonicalize / store / dedup) to the result's stats (in-process
    exploration only).

    ``store_dir`` backs the sharded engine with out-of-core spill and
    crash-durable journals (and forces the sharded path even at
    ``workers=1``); ``resume=True`` replays the directory's journals
    first, so a killed exploration continues to the identical visited
    set and :meth:`Exploration.content_digest`.

    Symmetric spaces canonicalize on the fast path when they expose a
    ``packed_canon`` (see :mod:`repro.explore.packed`): successors are
    encoded once into packed token streams, orbit representatives come
    from a blob-keyed cache or an incremental patch of the parent's
    candidate vectors, and the canonical *blob* enters the visited store
    directly -- the legacy ``canonical_key`` object path is kept for
    spaces without one.
    """
    if strategy not in (BFS, DFS):
        raise ValueError(f"unknown frontier strategy {strategy!r}")
    if resume and store_dir is None:
        raise ValueError("resume=True requires store_dir")
    if workers > 1 or store_dir is not None:
        from repro.explore.parallel import explore_parallel

        if strategy != BFS:
            raise ValueError("parallel expansion supports only BFS")
        result = explore_parallel(
            space,
            workers=max(1, workers),
            max_depth=max_depth,
            max_states=max_states,
            max_seconds=max_seconds,
            on_visit=on_visit,
            store_dir=store_dir,
            resume=resume,
        )
        if result is not None:
            return result
        if store_dir is not None:
            # Durability was explicitly requested: never silently
            # degrade to the journal-less in-process engine.
            raise RuntimeError(
                "checkpointed exploration is unsupported here (the "
                "space lacks successors_of_key, the platform cannot "
                "fork, or an on_visit callback was given)"
            )
        # fall through: platform cannot fork -- explore in-process

    from repro.explore.store import make_visited_store

    started = time.perf_counter()
    canon = getattr(space, "canonical_key", None)
    visited = make_visited_store(getattr(space, "codec", None))
    packed = getattr(space, "packed_canon", None)
    if packed is not None and not hasattr(visited, "add_packed"):
        packed = None  # packed canon requires the interned store
    delta_of = getattr(space, "delta_of", None) if packed else None
    cache_hits0 = packed.stats.hits if packed is not None else 0
    cache_misses0 = packed.stats.misses if packed is not None else 0
    frontier: deque[tuple[Any, int]] = deque()
    truncated = False
    truncation_cause: str | None = None
    depth_reached = 0
    depth_limited = False
    expansions = 0
    transitions = 0
    dedup_hits = 0
    orbit_reductions = 0
    clock = time.perf_counter if profile else None
    expand_s = canon_s = store_s = dedup_s = 0.0

    for root in space.roots():
        key = space.key(root)
        if packed is not None:
            if clock:
                t0 = clock()
            cblob, rewritten = packed.canonicalize(key)
            if clock:
                canon_s += clock() - t0
            if rewritten:
                orbit_reductions += 1
            if max_states is not None and len(visited) >= max_states:
                if visited.contains_packed(cblob):
                    continue
                truncated = True
                truncation_cause = TRUNCATED_BY_STATES
                break
            _ident, fresh = visited.add_packed(cblob)
            if not fresh:
                continue
            if on_visit is not None:
                on_visit(packed.decode(cblob) if rewritten else key, 0)
        else:
            if canon is not None:
                canonical = canon(key)
                if canonical is not key:
                    orbit_reductions += 1
                key = canonical
            if max_states is not None and len(visited) >= max_states:
                if key in visited:
                    continue
                truncated = True
                truncation_cause = TRUNCATED_BY_STATES
                break
            _ident, fresh = visited.add(key)
            if not fresh:
                continue
            if on_visit is not None:
                on_visit(key, 0)
        frontier.append((root, 0))

    peak_frontier = len(frontier)
    pop = frontier.popleft if strategy == BFS else frontier.pop
    while frontier:
        if (
            max_seconds is not None
            and time.perf_counter() - started > max_seconds
        ):
            truncated = True
            truncation_cause = TRUNCATED_BY_TIME
            break
        node, depth = pop()
        depth_reached = max(depth_reached, depth)
        if max_depth is not None and depth >= max_depth:
            depth_limited = True
            continue
        expansions += 1
        parent_key = space.key(node) if packed is not None else None
        succs = iter(space.successors(node))
        while True:
            if clock:
                t0 = clock()
            succ = next(succs, _DONE)
            if clock:
                expand_s += clock() - t0
            if succ is _DONE:
                break
            transitions += 1
            key = space.key(succ)
            if packed is not None:
                delta = delta_of(succ) if delta_of is not None else None
                if clock:
                    t0 = clock()
                cblob, rewritten = packed.canonicalize(
                    key, parent_key, delta
                )
                if clock:
                    canon_s += clock() - t0
                if rewritten:
                    orbit_reductions += 1
                if max_states is not None and len(visited) >= max_states:
                    if visited.contains_packed(cblob):
                        dedup_hits += 1
                        continue
                    truncated = True
                    truncation_cause = TRUNCATED_BY_STATES
                    frontier.clear()
                    break
                if clock:
                    t0 = clock()
                _ident, fresh = visited.add_packed(cblob)
                if clock:
                    if fresh:
                        store_s += clock() - t0
                    else:
                        dedup_s += clock() - t0
                if not fresh:
                    dedup_hits += 1
                    continue
                if on_visit is not None:
                    on_visit(
                        packed.decode(cblob) if rewritten else key,
                        depth + 1,
                    )
            else:
                if canon is not None:
                    if clock:
                        t0 = clock()
                    canonical = canon(key)
                    if clock:
                        canon_s += clock() - t0
                    if canonical is not key:
                        orbit_reductions += 1
                    key = canonical
                if max_states is not None and len(visited) >= max_states:
                    if key in visited:
                        dedup_hits += 1
                        continue
                    truncated = True
                    truncation_cause = TRUNCATED_BY_STATES
                    frontier.clear()
                    break
                if clock:
                    t0 = clock()
                _ident, fresh = visited.add(key)
                if clock:
                    if fresh:
                        store_s += clock() - t0
                    else:
                        dedup_s += clock() - t0
                if not fresh:
                    dedup_hits += 1
                    continue
                if on_visit is not None:
                    on_visit(key, depth + 1)
            # The frontier keeps the first-seen orbit member: ``succ``
            # is reachable by construction, while the canonical
            # representative may be a renaming never actually executed.
            frontier.append((succ, depth + 1))
        peak_frontier = max(peak_frontier, len(frontier))

    elapsed = time.perf_counter() - started
    stats = ExplorationStats(
        strategy=strategy,
        states=len(visited),
        expansions=expansions,
        transitions=transitions,
        dedup_hits=dedup_hits,
        depth_reached=depth_reached,
        depth_limited=depth_limited,
        peak_frontier=peak_frontier,
        elapsed_seconds=elapsed,
        truncated=truncated,
        truncation_cause=truncation_cause,
        workers=1,
        orbit_reductions=orbit_reductions,
        bytes_per_state=visited.bytes_per_state,
        canon_cache_hits=(
            packed.stats.hits - cache_hits0 if packed is not None else 0
        ),
        canon_cache_misses=(
            packed.stats.misses - cache_misses0
            if packed is not None
            else 0
        ),
        profile=(
            PhaseProfile(
                expand_seconds=expand_s,
                canonicalize_seconds=canon_s,
                store_seconds=store_s,
                dedup_seconds=dedup_s,
                elapsed_seconds=elapsed,
            )
            if profile
            else None
        ),
    )
    return visited.into_exploration(stats)
