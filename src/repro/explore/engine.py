"""The unified state-space exploration engine.

Every bounded search in this repository -- whitebox global-state
enumeration, graybox per-process enumeration, transition-system
reachability, and the operational convergence-point scan -- is one
instance of the same loop: pop a node from a frontier, deduplicate its
successors against a visited set, push the fresh ones.  This module owns
that loop once, with

* pluggable frontier strategies (:data:`BFS` / :data:`DFS`),
* uniform bounds (``max_depth``, ``max_states``, ``max_seconds``), and
* a :class:`ExplorationStats` record attached to every result, so the
  paper's central cost claim (Section 1: whitebox verification covers the
  *global* product space, graybox verification the per-process *sum*) is
  measured by instrumented runs rather than ad-hoc counters.

The searched object is abstracted behind the
:class:`~repro.explore.spaces.StateSpace` protocol; see
:mod:`repro.explore.spaces` for the three concrete adapters and
:mod:`repro.explore.parallel` for the optional process-pool expansion
mode used by global exploration.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

from repro.explore.spaces import StateSpace

BFS = "bfs"
DFS = "dfs"

#: Truncation causes reported by :class:`ExplorationStats`.
TRUNCATED_BY_STATES = "max_states"
TRUNCATED_BY_TIME = "time_budget"


@dataclass(frozen=True)
class ExplorationStats:
    """Instrumentation of one exploration run.

    ``states``
        Distinct states visited (roots included).
    ``expansions``
        Nodes whose successors were enumerated (nodes cut by the depth
        bound are visited but never expanded).
    ``transitions``
        Successor edges examined, including duplicates.
    ``dedup_hits``
        Successors discarded because their key was already visited.
    ``depth_reached``
        Deepest node popped from the frontier.
    ``depth_limited``
        Some node was left unexpanded because of ``max_depth``.
    ``peak_frontier``
        Largest frontier observed (memory high-water mark).
    ``truncated`` / ``truncation_cause``
        Whether the search stopped early and why (``"max_states"`` or
        ``"time_budget"``); a pure depth bound is *not* a truncation --
        the bounded space was explored exhaustively.
    ``workers``
        Process-pool size used for expansion (1 = in-process).
    ``orbit_reductions``
        Examined keys (roots and successors, duplicates included) that
        symmetry canonicalization rewrote to a different orbit
        representative; 0 when the space defines no ``canonical_key``.
    ``bytes_per_state``
        Mean packed payload bytes per visited state in the interned
        store; 0.0 when the space defines no ``codec`` (plain-set
        storage of the original keys).
    """

    strategy: str
    states: int
    expansions: int
    transitions: int
    dedup_hits: int
    depth_reached: int
    depth_limited: bool
    peak_frontier: int
    elapsed_seconds: float
    truncated: bool
    truncation_cause: str | None
    workers: int = 1
    orbit_reductions: int = 0
    bytes_per_state: float = 0.0

    @property
    def states_per_second(self) -> float:
        """Visit throughput (0.0 for an instantaneous run)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.states / self.elapsed_seconds

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of examined transitions that hit the visited set."""
        if self.transitions == 0:
            return 0.0
        return self.dedup_hits / self.transitions

    def describe(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.states} states in {self.elapsed_seconds:.3f}s "
            f"({self.states_per_second:,.0f} states/s, {self.strategy}"
        )
        if self.workers > 1:
            text += f" x{self.workers} workers"
        text += (
            f"), depth {self.depth_reached}, "
            f"dedup {self.dedup_hit_rate:.0%}, "
            f"peak frontier {self.peak_frontier}"
        )
        if self.orbit_reductions:
            text += f", {self.orbit_reductions} orbit rewrites"
        if self.bytes_per_state:
            text += f", {self.bytes_per_state:.0f} B/state"
        if self.truncated:
            text += f", TRUNCATED by {self.truncation_cause}"
        elif self.depth_limited:
            text += ", depth-bounded"
        return text


class Exploration:
    """Result of one exploration: the visited keys plus statistics.

    When the search ran over an interned store, the packed blobs are
    kept and :attr:`visited` decodes them back into full keys only on
    first access; membership tests re-encode the probe instead of
    materialising anything.  For plain-set searches this is exactly the
    old frozenset-carrying record.
    """

    __slots__ = ("stats", "_visited", "_store")

    def __init__(
        self,
        visited: frozenset[Hashable] | None = None,
        stats: ExplorationStats | None = None,
        store: Any = None,
    ):
        if (visited is None) == (store is None):
            raise ValueError("pass exactly one of visited= or store=")
        self._visited = visited
        self._store = store
        self.stats = stats

    @property
    def visited(self) -> frozenset[Hashable]:
        """The distinct visited keys (decoded lazily from the store)."""
        if self._visited is None:
            self._visited = frozenset(self._store.keys())
        return self._visited

    @property
    def states(self) -> int:
        """Distinct states visited."""
        return len(self)

    def __len__(self) -> int:
        if self._store is not None:
            return len(self._store)
        return len(self._visited)

    def __contains__(self, key: Hashable) -> bool:
        if self._store is not None:
            return key in self._store
        return key in self._visited


def explore(
    space: StateSpace,
    *,
    strategy: str = BFS,
    max_depth: int | None = None,
    max_states: int | None = None,
    max_seconds: float | None = None,
    workers: int = 1,
    on_visit: Callable[[Hashable, int], None] | None = None,
) -> Exploration:
    """Explore ``space`` from its roots under the given strategy and bounds.

    ``on_visit(key, depth)`` is called exactly once per distinct state, in
    visit order (roots first).  ``workers > 1`` requests process-pool
    expansion (BFS only; the space must implement ``successors_of_key`` --
    see :mod:`repro.explore.parallel`); it falls back to in-process
    expansion when the platform cannot fork.
    """
    if strategy not in (BFS, DFS):
        raise ValueError(f"unknown frontier strategy {strategy!r}")
    if workers > 1:
        from repro.explore.parallel import explore_parallel

        if strategy != BFS:
            raise ValueError("parallel expansion supports only BFS")
        result = explore_parallel(
            space,
            workers=workers,
            max_depth=max_depth,
            max_states=max_states,
            max_seconds=max_seconds,
            on_visit=on_visit,
        )
        if result is not None:
            return result
        # fall through: platform cannot fork -- explore in-process

    from repro.explore.store import make_visited_store

    started = time.perf_counter()
    canon = getattr(space, "canonical_key", None)
    visited = make_visited_store(getattr(space, "codec", None))
    frontier: deque[tuple[Any, int]] = deque()
    truncated = False
    truncation_cause: str | None = None
    depth_reached = 0
    depth_limited = False
    expansions = 0
    transitions = 0
    dedup_hits = 0
    orbit_reductions = 0

    for root in space.roots():
        key = space.key(root)
        if canon is not None:
            canonical = canon(key)
            if canonical is not key:
                orbit_reductions += 1
            key = canonical
        if max_states is not None and len(visited) >= max_states:
            if key in visited:
                continue
            truncated = True
            truncation_cause = TRUNCATED_BY_STATES
            break
        _ident, fresh = visited.add(key)
        if not fresh:
            continue
        if on_visit is not None:
            on_visit(key, 0)
        frontier.append((root, 0))

    peak_frontier = len(frontier)
    pop = frontier.popleft if strategy == BFS else frontier.pop
    while frontier:
        if (
            max_seconds is not None
            and time.perf_counter() - started > max_seconds
        ):
            truncated = True
            truncation_cause = TRUNCATED_BY_TIME
            break
        node, depth = pop()
        depth_reached = max(depth_reached, depth)
        if max_depth is not None and depth >= max_depth:
            depth_limited = True
            continue
        expansions += 1
        for succ in space.successors(node):
            transitions += 1
            key = space.key(succ)
            if canon is not None:
                canonical = canon(key)
                if canonical is not key:
                    orbit_reductions += 1
                key = canonical
            if max_states is not None and len(visited) >= max_states:
                if key in visited:
                    dedup_hits += 1
                    continue
                truncated = True
                truncation_cause = TRUNCATED_BY_STATES
                frontier.clear()
                break
            _ident, fresh = visited.add(key)
            if not fresh:
                dedup_hits += 1
                continue
            if on_visit is not None:
                on_visit(key, depth + 1)
            # The frontier keeps the first-seen orbit member: ``succ``
            # is reachable by construction, while the canonical
            # representative may be a renaming never actually executed.
            frontier.append((succ, depth + 1))
        peak_frontier = max(peak_frontier, len(frontier))

    stats = ExplorationStats(
        strategy=strategy,
        states=len(visited),
        expansions=expansions,
        transitions=transitions,
        dedup_hits=dedup_hits,
        depth_reached=depth_reached,
        depth_limited=depth_limited,
        peak_frontier=peak_frontier,
        elapsed_seconds=time.perf_counter() - started,
        truncated=truncated,
        truncation_cause=truncation_cause,
        workers=1,
        orbit_reductions=orbit_reductions,
        bytes_per_state=visited.bytes_per_state,
    )
    return visited.into_exploration(stats)
