"""Cross-process wire encoding for exploration dedup keys.

The interned blobs of :mod:`repro.explore.store` are the *fastest*
representation of a state -- but their tokens index per-process interner
tables, so a blob produced in one worker is meaningless in another and
unusable on disk.  The sharded exploration engine
(:mod:`repro.explore.parallel`) needs the opposite trade-off in three
places:

* **routing** -- a successor is owned by shard ``hash(state) % N``, and
  every process (and every *run*, for checkpoint resume) must compute
  the same hash for the same state;
* **transport** -- successor proposals (canonical blob, and the
  first-seen member blob when renaming changed it) cross
  worker-to-worker queues;
* **durability** -- admitted states (canonical blob plus, when it
  differs, the first-seen member blob that exploration actually
  expands) are journalled to append-only shard logs a later run
  replays.

:class:`WireCodec` therefore packs a dedup key into a *self-contained*,
deterministic byte string: strings are inlined, frozensets are written
in :func:`~repro.explore.store.order_key` order (frozenset iteration
order varies with hash randomization), and the branch tags are the
codec's own tag table, so two equal keys encode identically in any
process on any run.  :func:`wire_digest` is the 128-bit BLAKE2b digest
of that encoding -- the shard router, the dedup index key, and the
per-state contribution to a run's order-independent content digest are
all derived from it.

The module also owns the journal record framing used by
:mod:`repro.explore.shard`: fixed 13-byte headers followed by the wire
payload, written append-only and parsed back with torn-tail tolerance
(a record cut short by ``kill -9`` is discarded, never misread).  The
framing is deliberately payload-agnostic and has a second consumer: the
durable campaign journal (:mod:`repro.campaign.journal`) appends its
lease/result/requeue records through the same header format and replay
helpers.  Record tags are coordinated across consumers -- exploration
owns ``A``/``M``/``C`` below, campaigns own ``L``/``R``/``Q`` -- so a
journal misfiled into the wrong reader fails loudly instead of parsing.
"""

from __future__ import annotations

import pickle
import struct
from collections.abc import Iterator
from hashlib import blake2b
from typing import Any

from repro.clocks.timestamps import Timestamp
from repro.explore.store import (
    TAG_FSET,
    TAG_INT,
    TAG_NONE,
    TAG_OTHER,
    TAG_STR,
    TAG_TRUE,
    TAG_TS,
    TAG_TUPLE,
    order_key,
)
from repro.explore.store import TAG_FALSE as _TAG_FALSE
from repro.runtime.trace import GlobalState

#: Wire-only tags, continuing the codec tag table.
TAG_GSTATE = 9  #: a :class:`~repro.runtime.trace.GlobalState`
TAG_BIGINT = 10  #: an int outside the signed-64-bit range

_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

#: Bytes of a :func:`wire_digest` (128-bit: collisions are negligible at
#: any reachable state count, so digests stand in for full blobs in the
#: in-RAM dedup index of a disk-backed shard store).
DIGEST_SIZE = 16


class WireCodec:
    """Deterministic self-contained encoding of hashable dedup keys.

    Unlike :class:`~repro.explore.store.StateCodec` there is no shared
    interner: the encoding of a value is a pure function of the value.
    Repeated subtrees (per-process variable tuples, channel contents,
    timestamps) are still cheap because their encodings are memoized by
    value -- snapshots reuse a small set of distinct subtrees, so most
    of an encode is dict hits.

    The ``TAG_OTHER`` fallback pickles the value; pickle output is
    stable for the value shapes this repository stores, but exotic key
    types that pickle nondeterministically would break cross-run digest
    stability -- every type snapshots actually contain has a dedicated
    branch above the fallback.
    """

    __slots__ = ("_memo",)

    def __init__(self) -> None:
        self._memo: dict[Any, bytes] = {}

    # -- encoding ---------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        """The canonical wire bytes of ``value``."""
        out = bytearray()
        self._write(value, out)
        return bytes(out)

    def _write(self, value: Any, out: bytearray) -> None:
        if value is None:
            out.append(TAG_NONE)
        elif value is True:
            out.append(TAG_TRUE)
        elif value is False:
            out.append(_TAG_FALSE)
        elif type(value) is int:
            if _I64_MIN <= value <= _I64_MAX:
                out.append(TAG_INT)
                out += _I64.pack(value)
            else:
                raw = value.to_bytes(
                    (value.bit_length() + 8) // 8, "little", signed=True
                )
                out.append(TAG_BIGINT)
                out += _U32.pack(len(raw))
                out += raw
        elif type(value) is str:
            raw = value.encode()
            out.append(TAG_STR)
            out += _U32.pack(len(raw))
            out += raw
        elif isinstance(value, GlobalState):
            # Deliberately unmemoized: snapshots are almost all distinct
            # and each is encoded once, while their *subtrees* repeat
            # heavily and hit the memo below.
            out.append(TAG_GSTATE)
            self._write(value.processes, out)
            self._write(value.channels, out)
            self._write(value.down, out)
        else:
            enc = self._memo.get(value)
            if enc is None:
                enc = self._composite(value)
                self._memo[value] = enc
            out += enc

    def _composite(self, value: Any) -> bytes:
        out = bytearray()
        if isinstance(value, Timestamp):
            raw = value.pid.encode()
            out.append(TAG_TS)
            out += _I64.pack(value.clock)
            out += _U32.pack(len(raw))
            out += raw
        elif isinstance(value, tuple):
            out.append(TAG_TUPLE)
            out += _U32.pack(len(value))
            for item in value:
                self._write(item, out)
        elif isinstance(value, frozenset):
            # order_key order, so equal sets encode identically under
            # any hash seed (frozenset iteration order is randomized).
            out.append(TAG_FSET)
            out += _U32.pack(len(value))
            for item in sorted(value, key=order_key):
                self._write(item, out)
        elif isinstance(value, bool):  # bool subclass-of-int edge
            out.append(TAG_TRUE if value else _TAG_FALSE)
        elif isinstance(value, int):
            out.append(TAG_INT)
            out += _I64.pack(int(value))
        elif isinstance(value, str):
            raw = value.encode()
            out.append(TAG_STR)
            out += _U32.pack(len(raw))
            out += raw
        else:
            raw = pickle.dumps(value, protocol=4)
            out.append(TAG_OTHER)
            out += _U32.pack(len(raw))
            out += raw
        return bytes(out)

    # -- decoding ---------------------------------------------------------

    def decode(self, blob: bytes) -> Any:
        """Reconstruct the value ``encode`` packed (exact round-trip)."""
        value, index = self._read(blob, 0)
        if index != len(blob):
            raise ValueError(
                f"trailing bytes in wire value ({len(blob) - index})"
            )
        return value

    def _read(self, blob: bytes, index: int) -> tuple[Any, int]:
        tag = blob[index]
        index += 1
        if tag == TAG_NONE:
            return None, index
        if tag == TAG_TRUE:
            return True, index
        if tag == _TAG_FALSE:
            return False, index
        if tag == TAG_INT:
            return _I64.unpack_from(blob, index)[0], index + 8
        if tag == TAG_BIGINT:
            (length,) = _U32.unpack_from(blob, index)
            index += 4
            raw = blob[index : index + length]
            return int.from_bytes(raw, "little", signed=True), index + length
        if tag == TAG_STR:
            (length,) = _U32.unpack_from(blob, index)
            index += 4
            return blob[index : index + length].decode(), index + length
        if tag == TAG_TS:
            (clock,) = _I64.unpack_from(blob, index)
            index += 8
            (length,) = _U32.unpack_from(blob, index)
            index += 4
            pid = blob[index : index + length].decode()
            return Timestamp(clock, pid), index + length
        if tag == TAG_TUPLE:
            (length,) = _U32.unpack_from(blob, index)
            index += 4
            items = []
            for _ in range(length):
                item, index = self._read(blob, index)
                items.append(item)
            return tuple(items), index
        if tag == TAG_FSET:
            (length,) = _U32.unpack_from(blob, index)
            index += 4
            items = []
            for _ in range(length):
                item, index = self._read(blob, index)
                items.append(item)
            return frozenset(items), index
        if tag == TAG_GSTATE:
            processes, index = self._read(blob, index)
            channels, index = self._read(blob, index)
            down, index = self._read(blob, index)
            return GlobalState(processes, channels, down), index
        if tag == TAG_OTHER:
            (length,) = _U32.unpack_from(blob, index)
            index += 4
            return pickle.loads(blob[index : index + length]), index + length
        raise ValueError(f"unknown tag {tag} in wire value")


def wire_digest(blob: bytes) -> bytes:
    """The 128-bit identity of a wire blob (routing, dedup, digests)."""
    return blake2b(blob, digest_size=DIGEST_SIZE).digest()


def shard_of(digest: bytes, shards: int) -> int:
    """The shard that owns a state, stable across processes and runs."""
    return int.from_bytes(digest[:8], "little") % shards


def content_digest(xor: int, count: int) -> str:
    """A run's visited-set content digest, as a hex string.

    ``xor`` is the XOR of :func:`wire_digest` over the *distinct*
    visited states -- order-independent, so serial, sharded, and
    resumed explorations of the same space agree bit-for-bit -- and
    ``count`` pins the cardinality.
    """
    raw = count.to_bytes(8, "little") + xor.to_bytes(DIGEST_SIZE, "little")
    return blake2b(raw, digest_size=DIGEST_SIZE).hexdigest()


# -- journal record framing -----------------------------------------------

#: Record kinds (see :mod:`repro.explore.shard` for who writes what).
#: A level's expansions are deliberately *not* journalled: expansion is
#: deterministic from the durable member blobs, so resume simply
#: re-expands the last committed frontier level.
REC_ADMIT = ord("A")  #: payload ``digest || canonical blob``, aux = rank
REC_MEMBER = ord("M")  #: payload = first-seen member blob (when it
#: differs from the canonical representative), same depth/aux as the
#: ADMIT record it directly follows in the log
REC_COMMIT = ord("C")  #: coordinator mark: level ``depth`` fully
#: admitted and durable on every shard (payload = admitted count, u64)

_HEADER = struct.Struct("<BiiI")  # tag, depth, aux, payload length
HEADER_SIZE = _HEADER.size
unpack_header = _HEADER.unpack_from


def pack_record(tag: int, depth: int, aux: int, payload: bytes) -> bytes:
    """One framed journal record (header + wire payload)."""
    return _HEADER.pack(tag, depth, aux, len(payload)) + payload


def iter_records(
    raw: bytes,
) -> Iterator[tuple[int, int, int, bytes]]:
    """Parse ``(tag, depth, aux, payload)`` records from journal bytes.

    Stops silently at a torn tail (a header or payload cut short by a
    crash): append-only journals are only ever damaged at the end, and
    a truncated record was by construction never acknowledged, so
    dropping it is exactly the crash semantics resume expects.
    """
    index = 0
    total = len(raw)
    while index + HEADER_SIZE <= total:
        tag, depth, aux, length = _HEADER.unpack_from(raw, index)
        index += HEADER_SIZE
        if index + length > total:
            return
        yield tag, depth, aux, raw[index : index + length]
        index += length
