"""Process-permutation symmetry: canonical orbit representatives.

The TME systems of Section 5 are built from one program template
instantiated per pid: every process runs the same guarded commands over
the same variable shapes, and pids enter the state only as *data* --
timestamp owners, tuple-map keys, channel endpoints.  Renaming the pids
of a global state by a permutation therefore yields another legal global
state of the *same* system, and any pid-symmetric property (mutual
exclusion, deadlock, phase coverage, the Section 3 specs) holds of one
iff it holds of the other.  Exploring one representative per orbit --
the quotient under the permutation group -- shrinks the whitebox surface
by up to ``n!`` while preserving every symmetric verdict.

This module implements the renaming action and the canonicalization map:

* :func:`rename_value` / :func:`rename_global_state` /
  :func:`rename_local_snapshot` -- apply one pid bijection to snapshot
  data (timestamps, tuple-maps, queues, channel endpoints), restoring
  the sortedness invariants the runtime maintains (tuple-maps are sorted
  by key, Lamport queues by ``lt``), so the renamed state is exactly the
  snapshot the renamed execution would have produced;
* :func:`full_symmetry` / :func:`ring_rotations` / :func:`peer_symmetry`
  -- the permutation groups: the full symmetric group for RA/Lamport
  (every process runs an identical template), the cyclic group for the
  token ring (whose ``nxt`` topology is only rotation-equivariant), and
  the peer-permuting stabilizer used by local spaces;
* :func:`canonical_global` / :func:`canonical_local` -- the least orbit
  member under a fixed, history-independent total order (so the chosen
  representative is stable across runs and across processes).

Channel *contents* are never re-ordered: FIFO order is semantic.  Only
containers the runtime itself keeps sorted (tuple-maps, timestamp
queues) are re-sorted after renaming.
"""

from __future__ import annotations

from itertools import permutations
from typing import Any, Mapping

from repro.clocks.timestamps import Timestamp
from repro.explore.store import order_key
from repro.runtime.trace import GlobalState

#: A pid renaming: old pid -> new pid (bijective on the pid set).
PidMapping = Mapping[str, str]


# ---------------------------------------------------------------------------
# Permutation groups
# ---------------------------------------------------------------------------


def full_symmetry(pids: tuple[str, ...]) -> tuple[dict[str, str], ...]:
    """Every non-identity permutation of ``pids`` (the symmetric group).

    Sound for systems built from one per-pid program template whose only
    pid dependence is through the data the renaming rewrites (RA_ME,
    RA-count, Lamport_ME, and the graybox wrapper).
    """
    ordered = tuple(sorted(pids))
    return tuple(
        dict(zip(ordered, image))
        for image in permutations(ordered)
        if image != ordered
    )


def ring_rotations(pids: tuple[str, ...]) -> tuple[dict[str, str], ...]:
    """The non-identity rotations of ``pids`` (the cyclic group).

    The token ring's ``nxt`` topology is only rotation-equivariant, so
    arbitrary permutations are unsound for it; rotations commute with
    "send the token to my ring successor".
    """
    ordered = tuple(sorted(pids))
    n = len(ordered)
    return tuple(
        {ordered[i]: ordered[(i + k) % n] for i in range(n)}
        for k in range(1, n)
    )


def peer_symmetry(
    pid: str, all_pids: tuple[str, ...]
) -> tuple[dict[str, str], ...]:
    """Non-identity permutations of ``pid``'s peers (``pid`` fixed).

    The local space of one process is symmetric in its *peers*: the
    bounded message alphabet ranges uniformly over them, and peers occur
    in the local state only as tuple-map keys and timestamp owners.
    """
    peers = tuple(sorted(p for p in all_pids if p != pid))
    mappings = []
    for image in permutations(peers):
        if image == peers:
            continue
        mapping = dict(zip(peers, image))
        mapping[pid] = pid
        mappings.append(mapping)
    return tuple(mappings)


# ---------------------------------------------------------------------------
# The renaming action
# ---------------------------------------------------------------------------


# The total order over heterogeneous snapshot values: owned by
# repro.explore.store (its branch tags are the codec's tag table, one
# source of truth for both the packed encoding and the canonical
# order).  Kept under the historical private name -- this module is the
# order's primary consumer.
_order_key = order_key


def _is_sorted(values: tuple) -> bool:
    keys = [_order_key(v) for v in values]
    return all(a <= b for a, b in zip(keys, keys[1:]))


def rename_value(value: Any, mapping: PidMapping) -> Any:
    """Apply a pid renaming to one snapshot value.

    * timestamps: the owner pid is renamed;
    * strings: renamed iff they are pids (pid-valued variables and
      tuple-map keys; phase/kind literals never collide with pids);
    * tuples: element-wise, and re-sorted iff the original was sorted
      under the natural order -- this restores the invariants the
      runtime maintains (tuple-maps sorted by key, Lamport queues by
      ``lt``) so the result equals the renamed execution's snapshot;
    * everything else (ints, bools, ``None``): unchanged.
    """
    if isinstance(value, Timestamp):
        new_pid = mapping.get(value.pid)
        if new_pid is None or new_pid == value.pid:
            return value
        return Timestamp(value.clock, new_pid)
    if isinstance(value, str):
        return mapping.get(value, value)
    if isinstance(value, tuple):
        renamed = tuple(rename_value(v, mapping) for v in value)
        if len(renamed) > 1 and _is_sorted(value):
            return tuple(sorted(renamed, key=_order_key))
        return renamed
    if isinstance(value, frozenset):
        # Unordered, so no sortedness to restore (pid sets like
        # RACount_ME's ``awaiting``/``deferred``).
        return frozenset(rename_value(v, mapping) for v in value)
    return value


def rename_global_state(
    state: GlobalState, mapping: PidMapping
) -> GlobalState:
    """The renamed global state: process labels, local data, and channel
    endpoints rewritten; processes and channels re-sorted into the
    simulator's snapshot order (sorted by pid / channel key); channel
    *contents* kept in FIFO order with only payloads renamed."""
    processes = tuple(
        sorted(
            (mapping.get(pid, pid), rename_value(variables, mapping))
            for pid, variables in state.processes
        )
    )
    channels = tuple(
        sorted(
            (
                (mapping.get(src, src), mapping.get(dst, dst)),
                tuple(
                    (kind, rename_value(payload, mapping))
                    for kind, payload in content
                ),
            )
            for (src, dst), content in state.channels
        )
    )
    return GlobalState(processes, channels)


def rename_local_snapshot(snapshot: tuple, mapping: PidMapping) -> tuple:
    """The renamed local snapshot (a name-sorted variable tuple-map)."""
    return rename_value(snapshot, mapping)


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------


def _global_order_key(state: GlobalState) -> tuple:
    return (_order_key(state.processes), _order_key(state.channels))


def canonical_global(
    state: GlobalState, mappings: tuple[PidMapping, ...]
) -> GlobalState:
    """The least orbit member of ``state`` under ``mappings``.

    Returns ``state`` itself (same object) when it already is the
    representative, so callers can count orbit rewrites with an ``is``
    check instead of a deep comparison.
    """
    best = state
    best_key = _global_order_key(state)
    for mapping in mappings:
        candidate = rename_global_state(state, mapping)
        key = _global_order_key(candidate)
        if key < best_key:
            best, best_key = candidate, key
    return best


def canonical_local(
    snapshot: tuple, mappings: tuple[PidMapping, ...]
) -> tuple:
    """The least orbit member of a local snapshot under ``mappings``."""
    best = snapshot
    best_key = _order_key(snapshot)
    for mapping in mappings:
        candidate = rename_value(snapshot, mapping)
        key = _order_key(candidate)
        if key < best_key:
            best, best_key = candidate, key
    return best


def orbit_of(
    state: GlobalState, mappings: tuple[PidMapping, ...]
) -> frozenset[GlobalState]:
    """Every renaming of ``state`` (itself included) -- test/audit aid."""
    members = {state}
    members.update(rename_global_state(state, m) for m in mappings)
    return frozenset(members)
