"""Durable shard journals and stores for sharded exploration.

The sharded engine (:mod:`repro.explore.parallel`) hash-partitions the
canonical state space across worker processes by wire digest
(:func:`repro.explore.wire.shard_of`).  This module owns everything a
shard keeps *outside* the worker's message loop:

* :class:`ShardLog` -- an append-only journal of framed records
  (:func:`repro.explore.wire.pack_record`).  Each shard journals the
  states it admits: an ``ADMIT`` record carries ``digest || canonical
  blob`` with the state's global BFS rank in ``aux``, directly followed
  by a ``MEMBER`` record holding the first-seen orbit member's blob
  whenever symmetry rewriting made it differ from the canonical
  representative (exploration *expands* the member -- the successor
  function is not equivariant under pid renaming, so the canonical
  representative may behave differently from any state the system
  actually reaches).  After every shard has flushed a level's admits,
  the coordinator appends a ``COMMIT`` record for that level to its own
  journal.  Under ``kill -9`` the OS page cache survives the process,
  so "durable" means "accepted by the kernel" -- there is deliberately
  no fsync on the hot path (the model is process death, not power
  loss).

* :class:`ShardStore` -- one shard's visited set in RAM: the 16-byte
  wire digests plus (only when the shard has no journal) the canonical
  blob payloads.  With a journal, the ``ADMIT`` records *are* the blob
  storage and the store is out-of-core -- nothing re-reads them during
  the run.

* streaming replay -- :func:`last_committed_level` and
  :func:`replay_admits`.  Expansions are deterministic from the
  durable member blobs, so journals never record them: resume replays
  the admits of every *committed* level (records above the last
  committed level belong to a partially-admitted level and are
  discarded -- the resumed run re-derives them bit-identically) and
  simply re-expands the final committed level as its frontier.

* :class:`WireVisitedView` -- the :class:`~repro.explore.engine.
  Exploration`-facing visited set over collected canonical wire blobs
  (in RAM) or over the journals themselves (spilled shards ship only
  16-byte digests back to the coordinator), decoding states lazily
  when a caller actually iterates ``visited``.
"""

from __future__ import annotations

import json
import os
from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.explore.wire import (
    DIGEST_SIZE,
    HEADER_SIZE,
    REC_ADMIT,
    REC_COMMIT,
    REC_MEMBER,
    WireCodec,
    content_digest,
    pack_record,
    unpack_header,
    wire_digest,
)

#: ``meta.json`` format stamp for run directories.
META_FORMAT = 2

COORDINATOR_LOG = "coordinator.log"


def shard_log_name(shard: int) -> str:
    return f"shard-{shard:04d}.log"


# -- run directory metadata -----------------------------------------------


def prepare_run_dir(store_dir: str, signature: str) -> None:
    """Create ``store_dir`` (if needed) and pin its space signature.

    A run directory is only meaningful for one exploration *problem*
    (space, symmetry, depth bound): replaying journals from a different
    problem would silently merge unrelated state sets, so the signature
    is written on first use and verified ever after.
    """
    os.makedirs(store_dir, exist_ok=True)
    meta_path = os.path.join(store_dir, "meta.json")
    if os.path.exists(meta_path):
        with open(meta_path, encoding="utf-8") as fh:
            meta = json.load(fh)
        if meta.get("format") != META_FORMAT:
            raise ValueError(
                f"{meta_path}: unsupported checkpoint format "
                f"{meta.get('format')!r}"
            )
        if meta.get("signature") != signature:
            raise ValueError(
                f"{meta_path}: checkpoint belongs to a different "
                f"exploration ({meta.get('signature')!r}, this run is "
                f"{signature!r}); use a fresh --store-dir"
            )
        return
    with open(meta_path, "w", encoding="utf-8") as fh:
        json.dump({"format": META_FORMAT, "signature": signature}, fh)
        fh.write("\n")


def run_dir_logs(store_dir: str) -> list[str]:
    """Every journal in a run directory (coordinator first, then shards
    in name order -- a deterministic replay order)."""
    names = sorted(
        name
        for name in os.listdir(store_dir)
        if name.endswith(".log") and name != COORDINATOR_LOG
    )
    paths = []
    coord = os.path.join(store_dir, COORDINATOR_LOG)
    if os.path.exists(coord):
        paths.append(coord)
    paths.extend(os.path.join(store_dir, name) for name in names)
    return paths


# -- the append-only journal ----------------------------------------------


class ShardLog:
    """Append-only framed journal with buffered, unbuffered-on-flush IO.

    ``append`` only extends an in-process buffer; :meth:`flush` hands
    the buffer to ``os.write`` in one call.  Shards flush their level's
    ``ADMIT`` records before acknowledging the level to the
    coordinator, so a durable ``COMMIT`` implies every shard's admits
    for that level are durable too.
    """

    __slots__ = ("path", "_fd", "_buf", "bytes_written")

    def __init__(self, path: str):
        self.path = path
        self._fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._buf = bytearray()
        self.bytes_written = 0

    def append(self, tag: int, depth: int, aux: int, payload: bytes) -> None:
        self._buf += pack_record(tag, depth, aux, payload)

    def flush(self) -> None:
        if self._buf:
            os.write(self._fd, self._buf)
            self.bytes_written += len(self._buf)
            self._buf.clear()

    def close(self) -> None:
        self.flush()
        os.close(self._fd)


def iter_log_records(
    path: str, chunk_size: int = 1 << 20
) -> Iterator[tuple[int, int, int, bytes]]:
    """Stream ``(tag, depth, aux, payload)`` records from one journal.

    Constant memory in the journal size; a torn tail (header or payload
    cut short by a crash) ends iteration silently -- the coordinator
    never commits a level before its records are durable, so a
    truncated record only ever belongs to an uncommitted level that
    replay discards anyway.
    """
    with open(path, "rb") as fh:
        buf = b""
        while True:
            data = fh.read(chunk_size)
            if not data:
                return
            buf += data
            consumed = 0
            limit = len(buf)
            while limit - consumed >= HEADER_SIZE:
                tag, depth, aux, length = unpack_header(buf, consumed)
                start = consumed + HEADER_SIZE
                if limit - start < length:
                    break
                yield tag, depth, aux, buf[start : start + length]
                consumed = start + length
            buf = buf[consumed:]


def valid_prefix_len(path: str, chunk_size: int = 1 << 20) -> int:
    """Byte length of the longest whole-record prefix of a journal.

    Appending a new run's records after a torn tail would misalign the
    framing for every later replay, so the coordinator truncates each
    journal to this length before any worker reopens it for append.
    """
    with open(path, "rb") as fh:
        buf = b""
        offset = 0  # file offset of buf[0]
        good = 0
        while True:
            data = fh.read(chunk_size)
            if not data:
                return good
            buf += data
            consumed = 0
            limit = len(buf)
            while limit - consumed >= HEADER_SIZE:
                _tag, _depth, _aux, length = unpack_header(buf, consumed)
                start = consumed + HEADER_SIZE
                if limit - start < length:
                    break
                consumed = start + length
                good = offset + consumed
            buf = buf[consumed:]
            offset += consumed


# -- streaming replay ------------------------------------------------------


def last_committed_level(store_dir: str) -> int:
    """The highest level the coordinator durably committed (-1: none).

    Levels are committed in order, so every level up to this one is
    fully admitted on every shard; admits above it belong to a level
    that was mid-admission when the run died and are discarded by
    :func:`replay_admits` (the resumed run re-derives them
    bit-identically by re-expanding the committed frontier).
    """
    path = os.path.join(store_dir, COORDINATOR_LOG)
    if not os.path.exists(path):
        return -1
    level = -1
    for tag, depth, _aux, _payload in iter_log_records(path):
        if tag == REC_COMMIT and depth > level:
            level = depth
    return level


def replay_admits(
    paths: Iterable[str], max_level: int
) -> Iterator[tuple[bytes, int, int, bytes, bytes | None]]:
    """Stream every committed admit once, with its first-seen member.

    Yields ``(digest, rank, depth, canonical_blob, member_blob)`` for
    each distinct digest admitted at ``depth <= max_level`` --
    ``member_blob`` is ``None`` when the first-seen member *is* the
    canonical representative.  A digest can appear in several journals
    (a partially-admitted level re-admitted by a resumed run carries
    identical records); the first sighting wins, and later duplicates
    are bit-identical by construction.
    """
    seen: set[bytes] = set()
    for path in paths:
        pending: tuple[bytes, int, int, bytes] | None = None
        for tag, depth, aux, payload in iter_log_records(path):
            if (
                tag == REC_MEMBER
                and pending is not None
                and pending[2] == depth
                and pending[1] == aux
            ):
                digest, rank, at, cblob = pending
                pending = None
                yield digest, rank, at, cblob, payload
                continue
            if pending is not None:
                yield pending + (None,)
                pending = None
            if tag != REC_ADMIT or depth > max_level:
                continue
            digest = payload[:DIGEST_SIZE]
            if digest in seen:
                continue
            seen.add(digest)
            pending = (digest, aux, depth, payload[DIGEST_SIZE:])
        if pending is not None:
            yield pending + (None,)


# -- one shard's visited set ----------------------------------------------


class ShardStore:
    """One shard's visited set: digests in RAM, blobs durable or in RAM.

    The worker loop drives all policy (winner selection, admission
    order, journalling); this class only owns the index structures:
    the 16-byte digest set (dedup and the XOR content-digest
    accumulator) plus the canonical blob payloads, kept only when the
    shard has no journal -- with one, ADMIT records hold them and RAM
    keeps ~16 B/state.
    """

    __slots__ = ("digests", "blobs", "payload_bytes", "xor")

    def __init__(self, keep_blobs: bool):
        self.digests: set[bytes] = set()
        self.blobs: list[bytes] | None = [] if keep_blobs else None
        self.payload_bytes = 0
        self.xor = 0

    def __len__(self) -> int:
        return len(self.digests)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self.digests

    def admit(self, digest: bytes, blob: bytes) -> None:
        self.digests.add(digest)
        if self.blobs is not None:
            self.blobs.append(blob)
        self.payload_bytes += len(blob)
        self.xor ^= int.from_bytes(digest, "little")

    def digests_blob(self) -> bytes:
        """All admitted digests, concatenated (collection message for
        spilled shards -- 16 bytes per state instead of the payload)."""
        return b"".join(self.digests)


# -- the Exploration-facing visited view ----------------------------------


class WireVisitedView:
    """The merged visited set of a sharded run, as an Exploration store.

    Holds the 16-byte digests of every visited state plus either the
    canonical wire blobs themselves (in-RAM shards) or the journal
    paths to stream them from (spilled shards).  Keys decode lazily to
    the canonical representatives -- the same states a serial
    symmetry-reduced exploration stores -- and membership re-encodes
    the probe without materialising anything.
    """

    __slots__ = ("_digests", "_blobs", "_log_paths", "_payload_bytes", "_xor")

    def __init__(
        self,
        digests: set[bytes],
        blobs: list[bytes] | None,
        log_paths: list[str] | None,
        payload_bytes: int,
        xor: int,
    ):
        if (blobs is None) == (log_paths is None):
            raise ValueError("pass exactly one of blobs= or log_paths=")
        self._digests = digests
        self._blobs = blobs
        self._log_paths = log_paths
        self._payload_bytes = payload_bytes
        self._xor = xor

    def __len__(self) -> int:
        return len(self._digests)

    def __contains__(self, key: Hashable) -> bool:
        return wire_digest(WireCodec().encode(key)) in self._digests

    def keys(self) -> Iterator[Hashable]:
        codec = WireCodec()
        if self._blobs is not None:
            for blob in self._blobs:
                yield codec.decode(blob)
            return
        # Spilled: stream the journals.  ADMIT payloads carry the
        # canonical encoding after the digest; decode the first
        # sighting of each visited digest and skip the rest.
        remaining = set(self._digests)
        for path in self._log_paths:
            if not remaining:
                return
            for tag, _depth, _aux, payload in iter_log_records(path):
                if tag != REC_ADMIT:
                    continue
                digest = payload[:DIGEST_SIZE]
                if digest in remaining:
                    remaining.discard(digest)
                    yield codec.decode(payload[DIGEST_SIZE:])

    @property
    def bytes_per_state(self) -> float:
        """Mean wire payload bytes per visited state (the durable
        encoding -- not the per-process interned packed form serial
        runs report)."""
        if not self._digests:
            return 0.0
        return self._payload_bytes / len(self._digests)

    def content_digest(self) -> str:
        return content_digest(self._xor, len(self._digests))

    def into_exploration(self, stats: Any):
        from repro.explore.engine import Exploration

        return Exploration(store=self, stats=stats)
