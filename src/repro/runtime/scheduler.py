"""Schedulers: who moves next in the asynchronous interleaving.

Execution in the TME model is asynchronous -- every process at its own
speed, arbitrary finite message delays.  The scheduler realizes that
nondeterminism.  Candidate steps are:

* ``DeliverStep(src, dst)`` -- hand the head message of a non-empty channel
  to its receiver;
* ``InternalStep(pid, action)`` -- run an enabled internal guarded action.

Three schedulers are provided:

* :class:`RandomScheduler` -- uniform choice (weakly fair with probability
  1; the workhorse for experiments);
* :class:`RoundRobinScheduler` -- deterministic least-recently-served
  choice (weakly fair by construction; used where determinism matters);
* :class:`AdversarialScheduler` -- a caller-supplied policy, for forcing
  worst-case interleavings in tests.
"""

from __future__ import annotations

import copy
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class DeliverStep:
    """Candidate step: deliver the head message of channel src->dst."""

    src: str
    dst: str

    @property
    def key(self) -> tuple:
        return ("deliver", self.src, self.dst)


@dataclass(frozen=True)
class InternalStep:
    """Candidate step: run the named internal action at ``pid``."""

    pid: str
    action: str

    @property
    def key(self) -> tuple:
        return ("internal", self.pid, self.action)


Step = DeliverStep | InternalStep


class Scheduler:
    """Interface: pick one of the candidate steps."""

    def choose(self, candidates: Sequence[Step], step_index: int) -> Step:
        raise NotImplementedError

    def fork(self) -> "Scheduler":
        """An independent copy (simulator forks must not share mutable
        scheduler state).  Subclasses with cheap state override this."""
        return copy.deepcopy(self)


class RandomScheduler(Scheduler):
    """Uniformly random choice; weights may bias step classes.

    ``deliver_bias`` > 1 favours message delivery over internal actions
    (shorter message delays), < 1 lengthens delays.

    ``rng`` is required and may be a :class:`random.Random` or an int seed
    -- never an unseeded RNG.  Every run in this repo must be reproducible
    from its seeds alone, so constructing a scheduler on wall-clock
    entropy is a bug by policy.
    """

    def __init__(self, rng: random.Random | int, deliver_bias: float = 1.0):
        if deliver_bias <= 0:
            raise ValueError("deliver_bias must be positive")
        if isinstance(rng, bool) or not isinstance(rng, (random.Random, int)):
            raise TypeError(
                "rng must be a random.Random or an int seed; an unseeded "
                "scheduler would make runs irreproducible"
            )
        self._rng = random.Random(rng) if isinstance(rng, int) else rng
        self._deliver_bias = deliver_bias

    def choose(self, candidates: Sequence[Step], step_index: int) -> Step:
        if not candidates:
            raise ValueError("no candidate steps")
        ordered = sorted(candidates, key=lambda s: s.key)
        weights = [
            self._deliver_bias if isinstance(s, DeliverStep) else 1.0
            for s in ordered
        ]
        return self._rng.choices(ordered, weights=weights, k=1)[0]

    def fork(self) -> "RandomScheduler":
        # The seed is irrelevant (setstate overwrites it), but an explicit
        # one keeps the repo free of unseeded random.Random() calls.
        rng = random.Random(0)
        rng.setstate(self._rng.getstate())
        return RandomScheduler(rng, self._deliver_bias)


class RoundRobinScheduler(Scheduler):
    """Least-recently-served among enabled candidates (deterministic,
    weakly fair: a continuously enabled step is eventually chosen)."""

    def __init__(self) -> None:
        self._last_served: dict[tuple, int] = {}

    def choose(self, candidates: Sequence[Step], step_index: int) -> Step:
        if not candidates:
            raise ValueError("no candidate steps")
        chosen = min(
            sorted(candidates, key=lambda s: s.key),
            key=lambda s: self._last_served.get(s.key, -1),
        )
        self._last_served[chosen.key] = step_index
        return chosen

    def fork(self) -> "RoundRobinScheduler":
        clone = RoundRobinScheduler()
        clone._last_served = dict(self._last_served)
        return clone


class AdversarialScheduler(Scheduler):
    """Delegates to a policy ``(candidates, step_index) -> Step``.

    The policy may starve steps (the paper's specifications only assume the
    built-in weak fairness of UNITY; adversarial schedules are used in tests
    to show which guarantees do NOT survive unfair scheduling).
    """

    def __init__(self, policy: Callable[[Sequence[Step], int], Step]):
        self._policy = policy

    def choose(self, candidates: Sequence[Step], step_index: int) -> Step:
        chosen = self._policy(candidates, step_index)
        if chosen not in candidates:
            raise ValueError("adversarial policy chose a non-candidate step")
        return chosen

    def fork(self) -> "AdversarialScheduler":
        return AdversarialScheduler(self._policy)
