"""The network: one FIFO channel per ordered process pair.

The TME system model assumes processes are connected; we use a complete
graph of directional FIFO channels.  The network also owns message-uid
allocation (so duplicates and corruptions get fresh physical identities) and
aggregate message accounting used by the overhead experiments.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.runtime.channel import FifoChannel
from repro.runtime.messages import Message


class Network:
    """All channels among a fixed set of process ids.

    This is the simulator's implementation of the
    :class:`~repro.runtime.transport.ChannelTransport` contract (and
    thereby of the medium-independent
    :class:`~repro.runtime.transport.Transport` send/deliver contract the
    live socket transport shares -- see :mod:`repro.service.transport`).
    """

    def __init__(self, pids: Iterable[str]):
        self.pids = tuple(sorted(pids))
        if len(self.pids) != len(set(self.pids)):
            raise ValueError("duplicate process ids")
        self._channels: dict[tuple[str, str], FifoChannel] = {
            (a, b): FifoChannel(a, b)
            for a in self.pids
            for b in self.pids
            if a != b
        }
        self._next_uid = 0
        self.sent_by_kind: dict[str, int] = {}
        # Link masks: a link present in _down is cut.  The value is the
        # simulator step index at which it heals automatically (None = stays
        # down until heal_link/heal_all).
        self._down: dict[tuple[str, str], int | None] = {}

    # -- identity allocation --------------------------------------------------

    def fresh_uid(self) -> int:
        """Allocate a unique physical message id."""
        self._next_uid += 1
        return self._next_uid

    # -- sending / delivery ---------------------------------------------------

    def channel(self, src: str, dst: str) -> FifoChannel:
        """The directional channel from ``src`` to ``dst``."""
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise KeyError(f"no channel {src}->{dst}") from None

    def channels(self) -> Iterator[FifoChannel]:
        """Iterate over every channel."""
        return iter(self._channels.values())

    def nonempty_channels(self) -> list[FifoChannel]:
        """Channels currently carrying at least one message."""
        return [c for c in self._channels.values() if not c.empty]

    def deliverable_channels(self) -> list[FifoChannel]:
        """Nonempty channels whose link is up (same order as
        :meth:`nonempty_channels`, so schedules stay comparable)."""
        down = self._down
        return [
            c
            for c in self._channels.values()
            if not c.empty and (c.src, c.dst) not in down
        ]

    # -- link masks (partitions) ----------------------------------------------

    def link_up(self, src: str, dst: str) -> bool:
        """Is the directional link ``src -> dst`` currently up?"""
        return (src, dst) not in self._down

    def cut_link(
        self, src: str, dst: str, heal_at: int | None = None
    ) -> None:
        """Cut one directional link.  Queued messages stay queued (they are
        in flight on the far side of the cut) but become undeliverable, and
        new sends over the link are dropped, until the link heals."""
        if (src, dst) not in self._channels:
            raise KeyError(f"no channel {src}->{dst}")
        self._down[(src, dst)] = heal_at

    def heal_link(self, src: str, dst: str) -> bool:
        """Heal one directional link; returns whether it was down."""
        return self._down.pop((src, dst), "absent") != "absent"

    def cut(
        self, side: Iterable[str], heal_at: int | None = None
    ) -> tuple[tuple[str, str], ...]:
        """Partition fault: cut every link crossing between ``side`` and its
        complement (both directions).  Returns the links cut, sorted."""
        side_set = frozenset(side)
        unknown = side_set - set(self.pids)
        if unknown:
            raise ValueError(f"unknown pids in partition side: {sorted(unknown)}")
        links = tuple(
            sorted(
                (a, b)
                for (a, b) in self._channels
                if (a in side_set) != (b in side_set)
            )
        )
        for link in links:
            self._down[link] = heal_at
        return links

    def heal_all(self) -> tuple[tuple[str, str], ...]:
        """Heal fault: bring every cut link back up; returns them sorted."""
        healed = tuple(sorted(self._down))
        self._down.clear()
        return healed

    def heal_due(self, step_index: int) -> tuple[tuple[str, str], ...]:
        """Heal every link whose scheduled heal time has arrived."""
        due = tuple(
            sorted(
                link
                for link, heal_at in self._down.items()
                if heal_at is not None and heal_at <= step_index
            )
        )
        for link in due:
            del self._down[link]
        return due

    def down_links(self) -> tuple[tuple[str, str], ...]:
        """Currently cut links, sorted (used in global-state snapshots)."""
        return tuple(sorted(self._down))

    def send(  # noqa: PLR0913 -- a message has this many fields
        self,
        kind: str,
        sender: str,
        receiver: str,
        payload: Any,
        send_event_uid: int | None = None,
        sender_clock: int | None = None,
    ) -> Message:
        msg = Message(
            uid=self.fresh_uid(),
            kind=kind,
            sender=sender,
            receiver=receiver,
            payload=payload,
            send_event_uid=send_event_uid,
            sender_clock=sender_clock,
        )
        channel = self.channel(sender, receiver)
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1
        if (sender, receiver) in self._down:
            # The link is cut: the send happens (it counts as sent) but the
            # message is lost on the wire.
            channel.total_dropped += 1
            return msg
        channel.enqueue(msg)
        return msg

    def in_flight(self) -> int:
        """Total messages queued across all channels."""
        return sum(len(c) for c in self._channels.values())

    def flush_all(self) -> int:
        """Fault helper: drop every in-flight message everywhere."""
        return sum(c.clear() for c in self._channels.values())

    def fork(self) -> "Network":
        """An independent copy: channel queues are copied, the immutable
        :class:`Message` instances are shared, and uid allocation continues
        from the same point so forked runs never reuse a live uid."""
        clone = Network.__new__(Network)
        clone.pids = self.pids
        clone._channels = {
            pair: chan.fork() for pair, chan in self._channels.items()
        }
        clone._next_uid = self._next_uid
        clone.sent_by_kind = dict(self.sent_by_kind)
        clone._down = dict(self._down)
        return clone

    def fork_channels(
        self, pairs: Iterable[tuple[str, str]]
    ) -> "Network":
        """A clone for single-step branching: only the channels named in
        ``pairs`` get independent (copy-on-write) forks; every other
        channel *object* is shared with the parent and must not be mutated
        through the clone.  Use :meth:`fork` for a general-purpose copy.
        """
        clone = Network.__new__(Network)
        clone.pids = self.pids
        channels = dict(self._channels)
        for pair in pairs:
            channels[pair] = channels[pair].fork()
        clone._channels = channels
        clone._next_uid = self._next_uid
        clone.sent_by_kind = dict(self.sent_by_kind)
        clone._down = dict(self._down)
        return clone

    def snapshot(self) -> tuple[tuple[tuple[str, str], tuple[Message, ...]], ...]:
        """Hashable global channel snapshot (sorted by channel id)."""
        return tuple(
            (pair, chan.snapshot())
            for pair, chan in sorted(self._channels.items())
        )

    def total_sent(self) -> int:
        """Messages sent since construction (all kinds)."""
        return sum(self.sent_by_kind.values())

    def total_dropped(self) -> int:
        """Messages lost so far, across all channels (faults + cut links)."""
        return sum(c.total_dropped for c in self._channels.values())

    def total_corrupted(self) -> int:
        """Messages corrupted in place so far, across all channels."""
        return sum(c.total_corrupted for c in self._channels.values())

    def __repr__(self) -> str:
        return (
            f"Network(n={len(self.pids)}, in_flight={self.in_flight()}, "
            f"sent={self.total_sent()})"
        )
