"""The network: one FIFO channel per ordered process pair.

The TME system model assumes processes are connected; we use a complete
graph of directional FIFO channels.  The network also owns message-uid
allocation (so duplicates and corruptions get fresh physical identities) and
aggregate message accounting used by the overhead experiments.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.runtime.channel import FifoChannel
from repro.runtime.messages import Message


class Network:
    """All channels among a fixed set of process ids."""

    def __init__(self, pids: Iterable[str]):
        self.pids = tuple(sorted(pids))
        if len(self.pids) != len(set(self.pids)):
            raise ValueError("duplicate process ids")
        self._channels: dict[tuple[str, str], FifoChannel] = {
            (a, b): FifoChannel(a, b)
            for a in self.pids
            for b in self.pids
            if a != b
        }
        self._next_uid = 0
        self.sent_by_kind: dict[str, int] = {}

    # -- identity allocation --------------------------------------------------

    def fresh_uid(self) -> int:
        """Allocate a unique physical message id."""
        self._next_uid += 1
        return self._next_uid

    # -- sending / delivery ---------------------------------------------------

    def channel(self, src: str, dst: str) -> FifoChannel:
        """The directional channel from ``src`` to ``dst``."""
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise KeyError(f"no channel {src}->{dst}") from None

    def channels(self) -> Iterator[FifoChannel]:
        """Iterate over every channel."""
        return iter(self._channels.values())

    def nonempty_channels(self) -> list[FifoChannel]:
        """Channels currently carrying at least one message."""
        return [c for c in self._channels.values() if not c.empty]

    def send(  # noqa: PLR0913 -- a message has this many fields
        self,
        kind: str,
        sender: str,
        receiver: str,
        payload: Any,
        send_event_uid: int | None = None,
        sender_clock: int | None = None,
    ) -> Message:
        msg = Message(
            uid=self.fresh_uid(),
            kind=kind,
            sender=sender,
            receiver=receiver,
            payload=payload,
            send_event_uid=send_event_uid,
            sender_clock=sender_clock,
        )
        self.channel(sender, receiver).enqueue(msg)
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1
        return msg

    def in_flight(self) -> int:
        """Total messages queued across all channels."""
        return sum(len(c) for c in self._channels.values())

    def flush_all(self) -> int:
        """Fault helper: drop every in-flight message everywhere."""
        return sum(c.clear() for c in self._channels.values())

    def fork(self) -> "Network":
        """An independent copy: channel queues are copied, the immutable
        :class:`Message` instances are shared, and uid allocation continues
        from the same point so forked runs never reuse a live uid."""
        clone = Network.__new__(Network)
        clone.pids = self.pids
        clone._channels = {
            pair: chan.fork() for pair, chan in self._channels.items()
        }
        clone._next_uid = self._next_uid
        clone.sent_by_kind = dict(self.sent_by_kind)
        return clone

    def fork_channels(
        self, pairs: Iterable[tuple[str, str]]
    ) -> "Network":
        """A clone for single-step branching: only the channels named in
        ``pairs`` get independent (copy-on-write) forks; every other
        channel *object* is shared with the parent and must not be mutated
        through the clone.  Use :meth:`fork` for a general-purpose copy.
        """
        clone = Network.__new__(Network)
        clone.pids = self.pids
        channels = dict(self._channels)
        for pair in pairs:
            channels[pair] = channels[pair].fork()
        clone._channels = channels
        clone._next_uid = self._next_uid
        clone.sent_by_kind = dict(self.sent_by_kind)
        return clone

    def snapshot(self) -> tuple[tuple[tuple[str, str], tuple[Message, ...]], ...]:
        """Hashable global channel snapshot (sorted by channel id)."""
        return tuple(
            (pair, chan.snapshot())
            for pair, chan in sorted(self._channels.items())
        )

    def total_sent(self) -> int:
        """Messages sent since construction (all kinds)."""
        return sum(self.sent_by_kind.values())

    def __repr__(self) -> str:
        return (
            f"Network(n={len(self.pids)}, in_flight={self.in_flight()}, "
            f"sent={self.total_sent()})"
        )
