"""Process runtime: executes a guarded-command program for one process.

A :class:`ProcessRuntime` owns the mutable local variables of one process
and executes the (pure) guarded actions of its :class:`~repro.dsl.program.
ProcessProgram`, applying returned :class:`~repro.dsl.guards.Effect`\\ s
atomically.  The fault model's "transient state corruption" and "improper
initialization" act directly on :attr:`variables`.

Wrapping (the paper's ``M box W``) happens at this level by composing the
process program with a wrapper program -- see
:meth:`ProcessRuntime.variables` remains a single flat namespace, matching
UNITY union semantics.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.dsl.guards import Effect, GuardedAction, LocalView
from repro.dsl.program import ProcessProgram
from repro.runtime.messages import Message

#: Lifecycle states.  LIVE processes execute normally.  CRASHED processes
#: have lost their volatile state and take no steps.  RECOVERING processes
#: have restarted (from an improperly initialized valuation) but have not
#: yet executed a step; they become LIVE on their first step.
LIVE = "live"
CRASHED = "crashed"
RECOVERING = "recovering"


class ProcessRuntime:
    """One process: identity + program + mutable local variables."""

    def __init__(
        self,
        pid: str,
        program: ProcessProgram,
        peers: tuple[str, ...],
        overrides: Mapping[str, Any] | None = None,
    ):
        self.pid = pid
        self.program = program
        self.peers = tuple(p for p in peers if p != pid)
        self.variables: dict[str, Any] = dict(program.initial_vars)
        if overrides:
            self.variables.update(overrides)
        self.event_seq = 0
        self.steps_taken = 0
        self._snapshot_keys: tuple[str, ...] | None = None
        self.status = LIVE
        self.restart_at: int | None = None
        self.restart_vars: tuple[tuple[str, Any], ...] | None = None

    @property
    def is_live(self) -> bool:
        """Can this process take steps?  (RECOVERING counts as yes.)"""
        return self.status != CRASHED

    # -- views and execution ------------------------------------------------

    def view(self, extra: Mapping[str, Any] | None = None) -> LocalView:
        """Read-only view of the local variables (plus ``_pid``/``_peers``
        and any receive-time extras)."""
        merged = dict(self.variables)
        merged["_pid"] = self.pid
        merged["_peers"] = self.peers
        if extra:
            merged.update(extra)
        return LocalView(merged)

    def enabled_internal_actions(self) -> list[GuardedAction]:
        """Internal actions whose guards hold in the current state."""
        v = self.view()
        return [a for a in self.program.actions if a.enabled(v)]

    def execute_internal(self, action: GuardedAction) -> Effect:
        """Run one enabled internal action and apply its effect."""
        effect = action.execute(self.view())
        self._apply(effect)
        return effect

    def execute_receive(self, message: Message) -> Effect | None:
        """Run the receive action matching ``message.kind``.

        Returns ``None`` when the program has no handler for the kind or the
        handler's guard rejects the message (the message is consumed either
        way -- an unrecognized message is garbage from the fault model's
        point of view and discarding it is the only sound reaction).
        """
        handler = self.program.receive_action_for(message.kind)
        if handler is None:
            return None
        v = self.view(
            {
                "_msg": message.payload,
                "_sender": message.sender,
                "_msg_clock": message.sender_clock,
            }
        )
        if not handler.enabled(v):
            return None
        effect = handler.body(v)
        self._apply(effect)
        return effect

    def _apply(self, effect: Effect) -> None:
        for name, value in effect.updates.items():
            if name.startswith("_"):
                raise ValueError(f"cannot assign reserved variable {name!r}")
            self.variables[name] = value
        self.steps_taken += 1

    # -- fault surface ------------------------------------------------------

    def corrupt(self, updates: Mapping[str, Any]) -> None:
        """Transient state corruption: overwrite variables arbitrarily."""
        self.variables.update(updates)

    def improper_init(self, variables: Mapping[str, Any]) -> None:
        """Improper initialization: replace the whole valuation."""
        self.variables = dict(variables)

    def crash(
        self,
        restart_at: int | None = None,
        restart_vars: Mapping[str, Any] | None = None,
    ) -> None:
        """Crash fault: volatile state is lost, no further steps are taken.

        ``restart_at`` schedules a revival at that simulator step index
        (``None`` = crash-stop, never restarts unless :meth:`restart` is
        called explicitly).  ``restart_vars`` fixes the valuation the
        process restarts from; recording it at crash time keeps
        crash-restart trials bit-for-bit replayable.
        """
        self.status = CRASHED
        self.variables = {}
        self._snapshot_keys = None
        self.restart_at = restart_at
        self.restart_vars = (
            tuple(sorted(restart_vars.items())) if restart_vars is not None else None
        )

    def restart(self) -> None:
        """Restart after a crash: re-enter from improper initialization.

        The restart valuation is the one recorded by :meth:`crash` (or the
        program's initial state when none was recorded -- still "improper"
        in the paper's sense because the rest of the system has moved on).
        """
        if self.status != CRASHED:
            raise RuntimeError(f"{self.pid} is not crashed (status={self.status})")
        base = (
            dict(self.restart_vars)
            if self.restart_vars is not None
            else dict(self.program.initial_vars)
        )
        self.improper_init(base)
        self._snapshot_keys = None
        self.status = RECOVERING
        self.restart_at = None
        self.restart_vars = None

    # -- snapshots ------------------------------------------------------------

    def fork(self) -> "ProcessRuntime":
        """An independent copy sharing the (immutable) program.

        Variable *values* are shared: programs store only hashable,
        immutable values (see :meth:`snapshot`), so copying the dict is a
        full state copy.
        """
        clone = ProcessRuntime.__new__(ProcessRuntime)
        clone.pid = self.pid
        clone.program = self.program
        clone.peers = self.peers
        clone.variables = dict(self.variables)
        clone.event_seq = self.event_seq
        clone.steps_taken = self.steps_taken
        clone._snapshot_keys = self._snapshot_keys
        clone.status = self.status
        clone.restart_at = self.restart_at
        clone.restart_vars = self.restart_vars
        return clone

    def snapshot(self) -> tuple[tuple[str, Any], ...]:
        """Hashable snapshot of the local state (sorted name/value pairs).

        Values must be hashable; lists/sets/dicts in programs should be
        stored as tuples/frozensets.  The sorted key order is cached: the
        variable *names* are fixed by the program's initial state, only
        values change (a renamed key raises ``KeyError`` here rather than
        silently reordering).
        """
        variables = self.variables
        keys = self._snapshot_keys
        if keys is None or len(keys) != len(variables):
            keys = self._snapshot_keys = tuple(sorted(variables))
        pairs = tuple((k, variables[k]) for k in keys)
        if self.status != LIVE:
            # Sentinel entry only when not live, so snapshots (and every
            # digest derived from them) are unchanged for crash-free runs.
            return (("__status__", self.status), *pairs)
        return pairs

    def next_event_seq(self) -> int:
        """Allocate the next per-process event sequence number."""
        self.event_seq += 1
        return self.event_seq

    def __repr__(self) -> str:
        return f"ProcessRuntime({self.pid}, program={self.program.name})"
