"""The transport contract: what it means to "be the network".

Historically :class:`~repro.runtime.network.Network` was the only way
messages moved, and everything that needed to send, cut, or heal links
typed against it directly.  The live service (:mod:`repro.service`) runs
the very same :class:`~repro.dsl.program.ProcessProgram`\\ s over real TCP
sockets, so the contract is now explicit: anything that implements
:class:`Transport` can carry the protocols, the wrapper's corrections,
and the recovery subsystem's interventions.

Two protocols, two consumers:

:class:`Transport`
    The *send/deliver contract* shared by every medium -- sending typed
    messages between named processes, per-link up/down masks (the
    partition fault surface doubles as the live chaos layer), and the
    aggregate accounting the experiments read.  Implemented by the
    simulator :class:`~repro.runtime.network.Network`, by the per-node
    :class:`~repro.service.transport.SocketTransport`, and by the
    cluster-wide :class:`~repro.service.transport.ClusterNetwork` facade
    that the recovery manager and the chaos layer act through.

:class:`ChannelTransport`
    The *scheduler-facing surface* on top: explicit FIFO channel objects
    whose queued messages the simulator's scheduler enumerates as
    candidate deliver steps, and whose contents fault injectors mutate
    in place.  Only the simulator :class:`~repro.runtime.network.Network`
    implements it -- a socket transport has no queue to enumerate; its
    in-flight messages live in the kernel, which is exactly the point of
    running outside the simulator.

Both are :func:`typing.runtime_checkable` ``Protocol``\\ s, so conformance
is structural (no inheritance required) and asserted in the test suite
rather than enforced by a base class: the simulator ``Network`` is
unchanged by this refactor.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any, Protocol, runtime_checkable

from repro.runtime.channel import FifoChannel
from repro.runtime.messages import Message


@runtime_checkable
class Transport(Protocol):
    """The medium-independent send/deliver contract (see module docstring)."""

    pids: tuple[str, ...]

    # -- identity allocation --------------------------------------------------

    def fresh_uid(self) -> int:
        """Allocate a unique physical message id."""
        ...

    # -- sending --------------------------------------------------------------

    def send(  # noqa: PLR0913 -- a message has this many fields
        self,
        kind: str,
        sender: str,
        receiver: str,
        payload: Any,
        send_event_uid: int | None = None,
        sender_clock: int | None = None,
    ) -> Message:
        """Send one message; over a down link the send counts but the
        message is lost on the wire."""
        ...

    # -- link masks (the partition-fault / chaos surface) ---------------------

    def link_up(self, src: str, dst: str) -> bool:
        """Is the directional link ``src -> dst`` currently up?"""
        ...

    def cut_link(self, src: str, dst: str, heal_at: int | None = None) -> None:
        """Cut one directional link (``heal_at``: step/tick index at which
        it heals automatically; ``None`` = until healed explicitly)."""
        ...

    def heal_link(self, src: str, dst: str) -> bool:
        """Heal one directional link; returns whether it was down."""
        ...

    def cut(
        self, side: Iterable[str], heal_at: int | None = None
    ) -> tuple[tuple[str, str], ...]:
        """Partition fault: cut every link crossing between ``side`` and
        its complement (both directions).  Returns the links cut, sorted."""
        ...

    def heal_all(self) -> tuple[tuple[str, str], ...]:
        """Bring every cut link back up; returns them sorted."""
        ...

    def heal_due(self, step_index: int) -> tuple[tuple[str, str], ...]:
        """Heal every link whose scheduled heal time has arrived."""
        ...

    def down_links(self) -> tuple[tuple[str, str], ...]:
        """Currently cut links, sorted."""
        ...

    # -- accounting -----------------------------------------------------------

    def total_sent(self) -> int:
        """Messages sent since construction (all kinds)."""
        ...

    def total_dropped(self) -> int:
        """Messages lost so far (faults + cut links)."""
        ...

    def flush_all(self) -> int:
        """Drop every in-flight message the transport still holds;
        returns the number lost (0 where in-flight messages live in the
        kernel rather than in inspectable queues)."""
        ...


@runtime_checkable
class ChannelTransport(Transport, Protocol):
    """The scheduler-facing surface: enumerable FIFO channels.

    The simulator's scheduler turns every non-empty, up channel into a
    candidate deliver step, and the fault injectors mutate queue contents
    in place -- both need the channels as first-class objects.
    """

    def channel(self, src: str, dst: str) -> FifoChannel:
        """The directional channel from ``src`` to ``dst``."""
        ...

    def channels(self) -> Iterator[FifoChannel]:
        """Iterate over every channel."""
        ...

    def nonempty_channels(self) -> list[FifoChannel]:
        """Channels currently carrying at least one message."""
        ...

    def deliverable_channels(self) -> list[FifoChannel]:
        """Nonempty channels whose link is up."""
        ...

    def in_flight(self) -> int:
        """Total messages queued across all channels."""
        ...
