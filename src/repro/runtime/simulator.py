"""The simulator: asynchronous interleaving of processes and deliveries.

One simulator *step* is either the delivery of one channel-head message to
its receiver, or the execution of one enabled internal action at one
process -- exactly the interleaving semantics of the paper's system model
(asynchronous execution, arbitrary finite message delays realized by the
scheduler's choices).

The simulator records a full :class:`~repro.runtime.trace.Trace` (global
state snapshots, step records, event log) and offers the fault injector a
hook before every step.  Everything stochastic flows through explicitly
seeded ``random.Random`` instances: runs are reproducible bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any, Protocol

from repro.clocks.happened_before import RecordedEvent
from repro.clocks.timestamps import Timestamp
from repro.dsl.guards import Effect
from repro.dsl.program import ProcessProgram
from repro.runtime.network import Network
from repro.runtime.process import CRASHED, LIVE, RECOVERING, ProcessRuntime
from repro.runtime.scheduler import (
    DeliverStep,
    InternalStep,
    Scheduler,
    Step,
)
from repro.runtime.trace import GlobalState, StepRecord, Trace


class FaultHook(Protocol):
    """A fault injector: may mutate the simulator before each step."""

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        """Inject faults; return human-readable descriptions of what struck."""
        ...


class Simulator:
    """Drives a set of processes over a network under a scheduler."""

    def __init__(
        self,
        programs: Mapping[str, ProcessProgram],
        scheduler: Scheduler,
        fault_hook: FaultHook | None = None,
        overrides: Mapping[str, Mapping[str, Any]] | None = None,
        record_states: bool = True,
    ):
        pids = tuple(sorted(programs))
        if len(pids) < 2:
            raise ValueError("need at least two processes")
        self.network = Network(pids)
        self.processes: dict[str, ProcessRuntime] = {
            pid: ProcessRuntime(
                pid,
                programs[pid],
                pids,
                overrides=(overrides or {}).get(pid),
            )
            for pid in pids
        }
        self.scheduler = scheduler
        self.fault_hook = fault_hook
        self.record_states = record_states
        self.record_trace = True
        self.trace = Trace()
        self._next_event_uid = 0
        self.step_index = 0
        if record_states:
            self.trace.states.append(self.snapshot())

    # -- forking --------------------------------------------------------------

    def fork(self) -> "Simulator":
        """A copy-on-write clone positioned at the current global state.

        Process variables and channel queues are copied; the immutable
        programs and :class:`~repro.runtime.messages.Message` instances are
        shared.  The clone starts with a fresh, empty trace and does not
        record states or steps (``record_trace=False``) -- it is a branch
        point for state-space exploration, not a recorded run.  The fault
        hook is *not* inherited: a fork explores the fault-free transition
        relation from wherever its parent stands.

        Compared to rebuilding a :class:`Simulator` from a snapshot, a fork
        skips network construction, program re-validation, and snapshot
        re-materialisation -- this is what makes global state-space
        exploration affordable (see :mod:`repro.explore`).
        """
        clone = Simulator.__new__(Simulator)
        clone.network = self.network.fork()
        clone.processes = {
            pid: proc.fork() for pid, proc in self.processes.items()
        }
        clone.scheduler = self.scheduler.fork()
        clone.fault_hook = None
        clone.record_states = False
        clone.record_trace = False
        clone.trace = Trace()
        clone._next_event_uid = self._next_event_uid
        clone.step_index = self.step_index
        return clone

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> GlobalState:
        """Hashable global state: all process vars + channel contents
        (message uids erased)."""
        processes = tuple(
            (pid, proc.snapshot()) for pid, proc in sorted(self.processes.items())
        )
        channels = tuple(
            (key, tuple((m.kind, m.payload) for m in content))
            for key, content in self.network.snapshot()
        )
        return GlobalState(processes, channels, self.network.down_links())

    # -- step enumeration -------------------------------------------------

    def candidate_steps(self) -> list[Step]:
        """Everything that could happen next: one deliver step per
        non-empty channel whose link is up and whose receiver is not
        crashed, plus every enabled internal action of a non-crashed
        process."""
        steps: list[Step] = []
        processes = self.processes
        for chan in self.network.deliverable_channels():
            if processes[chan.dst].is_live:
                steps.append(DeliverStep(chan.src, chan.dst))
        for pid, proc in processes.items():
            if not proc.is_live:
                continue
            for act in proc.enabled_internal_actions():
                steps.append(InternalStep(pid, act.name))
        return steps

    # -- execution ----------------------------------------------------------

    def _fresh_event_uid(self) -> int:
        self._next_event_uid += 1
        return self._next_event_uid

    def _record_event(
        self, pid: str, label: str, send_uid: int | None, pre_clock: int
    ) -> RecordedEvent:
        proc = self.processes[pid]
        clock = proc.variables.get("lc", 0)
        if not isinstance(clock, int) or clock < 0:
            clock = 0
        event = RecordedEvent(
            uid=self._fresh_event_uid(),
            pid=pid,
            seq=proc.next_event_seq(),
            kind=label,
            timestamp=Timestamp(clock, pid),
            send_uid=send_uid,
            step_index=self.step_index,
            clock_event=clock != pre_clock,
        )
        if self.record_trace:
            self.trace.events.append(event)
        return event

    def _apply_sends(self, pid: str, effect: Effect, event_uid: int) -> tuple[tuple[str, str], ...]:
        sent: list[tuple[str, str]] = []
        clock = self.processes[pid].variables.get("lc")
        sender_clock = clock if isinstance(clock, int) and clock >= 0 else None
        for send in effect.sends:
            self.network.send(
                send.kind,
                pid,
                send.receiver,
                send.payload,
                send_event_uid=event_uid,
                sender_clock=sender_clock,
            )
            sent.append((send.kind, send.receiver))
        return tuple(sent)

    def execute(self, step: Step, faults: tuple[str, ...] = ()) -> StepRecord:
        """Execute one chosen step and record it on the trace."""
        if isinstance(step, DeliverStep):
            record = self._execute_deliver(step, faults)
        else:
            record = self._execute_internal(step, faults)
        if self.record_trace:
            self.trace.steps.append(record)
        if self.record_states:
            self.trace.states.append(self.snapshot())
        self.step_index += 1
        return record

    def _execute_deliver(
        self, step: DeliverStep, faults: tuple[str, ...]
    ) -> StepRecord:
        chan = self.network.channel(step.src, step.dst)
        message = chan.dequeue()
        proc = self.processes[step.dst]
        pre_clock = proc.variables.get("lc", 0)
        if not isinstance(pre_clock, int) or pre_clock < 0:
            pre_clock = 0
        effect = proc.execute_receive(message)
        if proc.status == RECOVERING:
            proc.status = LIVE
        sends: tuple[tuple[str, str], ...] = ()
        action_name = None
        if effect is not None:
            handler = proc.program.receive_action_for(message.kind)
            action_name = handler.name if handler else None
            if self.record_trace:
                event_uid = self._record_event(
                    step.dst,
                    action_name or f"recv:{message.kind}",
                    message.send_event_uid,
                    pre_clock,
                ).uid
            else:
                event_uid = self._fresh_event_uid()
            sends = self._apply_sends(step.dst, effect, event_uid)
        return StepRecord(
            index=self.step_index,
            kind="deliver",
            pid=step.dst,
            action=action_name,
            delivered_kind=message.kind,
            delivered_from=step.src,
            sends=sends,
            faults=faults,
        )

    def _execute_internal(
        self, step: InternalStep, faults: tuple[str, ...]
    ) -> StepRecord:
        proc = self.processes[step.pid]
        act = next(
            (a for a in proc.program.actions if a.name == step.action), None
        )
        if act is None:
            raise KeyError(f"{step.pid} has no action {step.action!r}")
        pre_clock = proc.variables.get("lc", 0)
        if not isinstance(pre_clock, int) or pre_clock < 0:
            pre_clock = 0
        effect = proc.execute_internal(act)
        if proc.status == RECOVERING:
            proc.status = LIVE
        if self.record_trace:
            event_uid = self._record_event(
                step.pid, step.action, None, pre_clock
            ).uid
        else:
            event_uid = self._fresh_event_uid()
        sends = self._apply_sends(step.pid, effect, event_uid)
        return StepRecord(
            index=self.step_index,
            kind="internal",
            pid=step.pid,
            action=step.action,
            sends=sends,
            faults=faults,
        )

    def _stutter(self, faults: tuple[str, ...]) -> StepRecord:
        record = StepRecord(index=self.step_index, kind="stutter", faults=faults)
        if self.record_trace:
            self.trace.steps.append(record)
        if self.record_states:
            self.trace.states.append(self.snapshot())
        self.step_index += 1
        return record

    def run(self, steps: int) -> Trace:
        """Run ``steps`` scheduler steps (stuttering when nothing is
        enabled) and return the accumulated trace."""
        for _ in range(steps):
            self.step()
        return self.trace

    def crash_process(
        self,
        pid: str,
        restart_at: int | None = None,
        restart_vars: Mapping[str, Any] | None = None,
    ) -> int:
        """Crash ``pid``: volatile state and queued incoming mail are lost.

        Returns the number of in-flight messages dropped.  ``restart_at``
        schedules an automatic revival (processed by :meth:`step`);
        ``restart_vars`` pins the (improper) valuation it restarts from.
        """
        proc = self.processes[pid]
        proc.crash(restart_at=restart_at, restart_vars=restart_vars)
        dropped = 0
        for src in self.network.pids:
            if src != pid:
                dropped += self.network.channel(src, pid).clear()
        return dropped

    def _lifecycle_events(self) -> list[str]:
        """Timed revivals and heals that are due at the current step.

        These live in the runtime (not in any fault injector) so a
        ``Windowed`` fault window can close while restarts and heals
        scheduled beyond it still fire -- and so replay reproduces them
        without recording extra decisions.
        """
        events: list[str] = []
        for link in self.network.heal_due(self.step_index):
            events.append(f"heal:{link[0]}->{link[1]}")
        for pid in sorted(self.processes):
            proc = self.processes[pid]
            if (
                proc.status == CRASHED
                and proc.restart_at is not None
                and proc.restart_at <= self.step_index
            ):
                proc.restart()
                events.append(f"restart:{pid}")
        return events

    def step(self) -> StepRecord:
        """Execute one step: fault hook, timed lifecycle events (heals /
        restarts that are due), then one scheduled action."""
        faults: tuple[str, ...] = ()
        if self.fault_hook is not None:
            faults = tuple(self.fault_hook.before_step(self, self.step_index))
        lifecycle = self._lifecycle_events()
        if lifecycle:
            faults = faults + tuple(lifecycle)
        candidates = self.candidate_steps()
        if not candidates:
            return self._stutter(faults)
        chosen = self.scheduler.choose(candidates, self.step_index)
        return self.execute(chosen, faults)

    def run_until(
        self,
        predicate: Callable[["Simulator"], bool],
        max_steps: int,
    ) -> tuple[bool, int]:
        """Step until ``predicate(self)`` holds or ``max_steps`` elapse.

        Returns ``(reached, steps_taken)``.
        """
        for i in range(max_steps):
            if predicate(self):
                return True, i
            self.step()
        return predicate(self), max_steps

    @property
    def is_quiescent(self) -> bool:
        """No message in flight and no enabled internal action anywhere."""
        return not self.candidate_steps()
