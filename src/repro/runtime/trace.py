"""Execution traces: global states, step records, and event logs.

The verification layer works on traces: sequences of :class:`GlobalState`
snapshots (one per executed step, plus the initial one), the per-step
:class:`StepRecord` metadata (which action ran, what was delivered, which
faults struck), and the :class:`~repro.clocks.happened_before.RecordedEvent`
log used for Timestamp Spec checking.

Snapshots deliberately erase message uids: two global states that differ
only in physical message identity are the same state of the *system* in the
paper's sense.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.clocks.happened_before import RecordedEvent

ChannelKey = tuple[str, str]
ChannelContent = tuple[tuple[str, Any], ...]  # ((kind, payload), ...)
ProcessVars = tuple[tuple[str, Any], ...]  # sorted (name, value) pairs


@dataclass(frozen=True)
class GlobalState:
    """A hashable snapshot of the whole system at one instant."""

    processes: tuple[tuple[str, ProcessVars], ...]
    channels: tuple[tuple[ChannelKey, ChannelContent], ...]
    #: Cut links (sorted).  Defaults to "all up" so partition-free snapshots
    #: compare (and hash) exactly as before the fault class existed.
    down: tuple[ChannelKey, ...] = ()

    def __hash__(self) -> int:
        # Memoised: snapshots are dedup keys in state-space exploration and
        # get hashed repeatedly; the nested tuples make each hash pricey.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            h = hash((self.processes, self.channels, self.down))
            object.__setattr__(self, "_hash", h)
            return h

    def var(self, pid: str, name: str) -> Any:
        """The value of one process variable in this snapshot."""
        for p, variables in self.processes:
            if p == pid:
                for n, v in variables:
                    if n == name:
                        return v
                raise KeyError(f"process {pid} has no variable {name!r}")
        raise KeyError(f"no process {pid}")

    def has_var(self, pid: str, name: str) -> bool:
        """Does ``pid`` carry a variable called ``name``?"""
        try:
            self.var(pid, name)
            return True
        except KeyError:
            return False

    def process_vars(self, pid: str) -> dict[str, Any]:
        """All of one process's variables as a plain dict."""
        for p, variables in self.processes:
            if p == pid:
                return dict(variables)
        raise KeyError(f"no process {pid}")

    def pids(self) -> tuple[str, ...]:
        """Process ids present in the snapshot (sorted)."""
        return tuple(p for p, _ in self.processes)

    def channel_contents(self, src: str, dst: str) -> ChannelContent:
        """(kind, payload) pairs in flight from ``src`` to ``dst``."""
        for key, content in self.channels:
            if key == (src, dst):
                return content
        raise KeyError(f"no channel {src}->{dst}")

    def messages_in_flight(self) -> int:
        """Total queued messages across all channels."""
        return sum(len(content) for _key, content in self.channels)

    def local_projection(self, pid: str) -> "GlobalState":
        """The per-process projection used by *local* specifications:
        only ``pid``'s variables, no channels."""
        for p, variables in self.processes:
            if p == pid:
                return GlobalState(((p, variables),), ())
        raise KeyError(f"no process {pid}")


@dataclass(frozen=True)
class StepRecord:
    """What happened at one simulator step."""

    index: int
    kind: str  # "internal" | "deliver" | "stutter"
    pid: str | None = None
    action: str | None = None
    delivered_kind: str | None = None
    delivered_from: str | None = None
    sends: tuple[tuple[str, str], ...] = ()  # (kind, receiver) pairs
    faults: tuple[str, ...] = ()

    @property
    def is_wrapper_step(self) -> bool:
        """Was this step a wrapper (``W:``-prefixed) action?"""
        return bool(self.action) and self.action.startswith("W:")


@dataclass
class Trace:
    """A recorded execution: states[i] is the state *before* steps[i]."""

    states: list[GlobalState] = field(default_factory=list)
    steps: list[StepRecord] = field(default_factory=list)
    events: list[RecordedEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[GlobalState]:
        return iter(self.states)

    def __getitem__(self, index: int) -> GlobalState:
        return self.states[index]

    @property
    def final(self) -> GlobalState:
        """The last recorded global state."""
        return self.states[-1]

    def last_fault_index(self) -> int | None:
        """Index of the last step at which any fault was injected."""
        last = None
        for step in self.steps:
            if step.faults:
                last = step.index
        return last

    def suffix_states(self, start: int) -> Sequence[GlobalState]:
        """States from index ``start`` to the end."""
        return self.states[start:]

    def states_where(
        self, predicate: Callable[[GlobalState], bool]
    ) -> list[int]:
        """Indices of states satisfying ``predicate``."""
        return [i for i, s in enumerate(self.states) if predicate(s)]

    def count_sends(self, kind: str | None = None, wrapper_only: bool = False) -> int:
        """Messages sent over the trace, optionally filtered by kind and
        by wrapper-issued steps."""
        total = 0
        for step in self.steps:
            if wrapper_only and not step.is_wrapper_step:
                continue
            for k, _receiver in step.sends:
                if kind is None or k == kind:
                    total += 1
        return total

    def fault_step_indices(self) -> list[int]:
        """Indices of steps at which the fault injector struck."""
        return [s.index for s in self.steps if s.faults]
