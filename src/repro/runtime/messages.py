"""Messages and message identities.

The TME system model (Section 3.1) is message passing over interprocess
channels; the fault model allows messages to be *corrupted, lost, or
duplicated at any time*.  A :class:`Message` is therefore a plain immutable
record: the runtime and the fault injectors may copy, drop, or rewrite them
freely.

``send_event_uid`` ties a message to the event that sent it (for
happened-before checking).  Forged or corrupted messages carry ``None`` --
they have no causal history, exactly as a fault-made artifact should.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class Message:
    """An immutable message in flight.

    ``uid`` is unique per physical copy (a duplicate gets a fresh ``uid``
    but keeps ``send_event_uid``).
    """

    uid: int
    kind: str
    sender: str
    receiver: str
    payload: Any
    send_event_uid: int | None = None
    sender_clock: int | None = None

    def corrupted(self, new_uid: int, **changes: Any) -> "Message":
        """A corrupted copy: fields overwritten, causal link severed (and
        the piggybacked clock dropped -- a forged frame carries no
        trustworthy clock)."""
        changes.setdefault("sender_clock", None)
        return replace(
            self, uid=new_uid, send_event_uid=None, **changes
        )

    def duplicated(self, new_uid: int) -> "Message":
        """A duplicate copy: same content, fresh physical identity."""
        return replace(self, uid=new_uid)

    def channel(self) -> tuple[str, str]:
        """The (sender, receiver) channel this message travels on."""
        return (self.sender, self.receiver)

    def __repr__(self) -> str:
        return (
            f"Message#{self.uid}({self.kind} {self.sender}->{self.receiver}, "
            f"{self.payload!r})"
        )
