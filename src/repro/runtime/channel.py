"""FIFO interprocess channels (Environment Spec: Communication Spec).

Communication Spec requires all channels to be FIFO; both RA_ME and
Lamport_ME assume it.  :class:`FifoChannel` preserves enqueue order and
exposes the mutation surface the fault model needs: dropping, duplicating,
and corrupting messages *in place* at any queue position, plus wholesale
replacement (improper initialization of channel contents).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Iterator

from repro.runtime.messages import Message


class FifoChannel:
    """An unbounded FIFO queue of messages from ``src`` to ``dst``."""

    def __init__(self, src: str, dst: str):
        self.src = src
        self.dst = dst
        self._queue: deque[Message] = deque()
        self._shared = False
        self.total_enqueued = 0
        self.total_delivered = 0
        self.total_dropped = 0
        self.total_corrupted = 0

    def _own(self) -> None:
        # Copy-on-write: after fork() both sides share one deque until the
        # first mutation on either side.
        if self._shared:
            self._queue = deque(self._queue)
            self._shared = False

    # -- normal operation ---------------------------------------------------

    def enqueue(self, message: Message) -> None:
        """Append a message (must belong to this channel)."""
        if message.channel() != (self.src, self.dst):
            raise ValueError(
                f"message {message!r} does not belong on channel "
                f"{self.src}->{self.dst}"
            )
        self._own()
        self._queue.append(message)
        self.total_enqueued += 1

    def peek(self) -> Message | None:
        """The head message without removing it (None if empty)."""
        return self._queue[0] if self._queue else None

    def dequeue(self) -> Message:
        """Remove and return the head message (FIFO delivery)."""
        if not self._queue:
            raise IndexError(f"channel {self.src}->{self.dst} is empty")
        self._own()
        self.total_delivered += 1
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._queue)

    @property
    def empty(self) -> bool:
        """Is the queue empty?"""
        return not self._queue

    def snapshot(self) -> tuple[Message, ...]:
        """The queue contents, head first (used in global-state snapshots)."""
        return tuple(self._queue)

    def fork(self) -> "FifoChannel":
        """An independent copy of this channel.

        The queue is shared copy-on-write (materialised on the first
        mutation of either copy); the :class:`Message` instances themselves
        are immutable and always shared.
        """
        clone = FifoChannel.__new__(FifoChannel)
        clone.src = self.src
        clone.dst = self.dst
        clone._queue = self._queue
        clone._shared = True
        self._shared = True
        clone.total_enqueued = self.total_enqueued
        clone.total_delivered = self.total_delivered
        clone.total_dropped = self.total_dropped
        clone.total_corrupted = self.total_corrupted
        return clone

    # -- fault surface ------------------------------------------------------

    def drop_at(self, index: int) -> Message:
        """Fault: lose the message at queue position ``index``."""
        msg = self._queue[index]
        self._own()
        del self._queue[index]
        self.total_dropped += 1
        return msg

    def duplicate_at(self, index: int, new_uid: int) -> Message:
        """Fault: duplicate the message at ``index`` (copy inserted right
        behind the original, preserving FIFO of the two copies)."""
        dup = self._queue[index].duplicated(new_uid)
        self._own()
        self._queue.insert(index + 1, dup)
        return dup

    def corrupt_at(
        self, index: int, mutate: Callable[[Message], Message]
    ) -> Message:
        """Fault: replace the message at ``index`` with ``mutate(msg)``.

        The mutated copy must stay on this channel (same sender/receiver) --
        corruption rewrites content, not topology.
        """
        corrupted = mutate(self._queue[index])
        if corrupted.channel() != (self.src, self.dst):
            raise ValueError("corruption must not move a message across channels")
        self._own()
        self._queue[index] = corrupted
        self.total_corrupted += 1
        return corrupted

    def replace_contents(self, messages: Iterable[Message]) -> None:
        """Fault: improper initialization -- set the queue arbitrarily."""
        messages = list(messages)
        for m in messages:
            if m.channel() != (self.src, self.dst):
                raise ValueError(f"{m!r} does not belong on {self.src}->{self.dst}")
        self._queue = deque(messages)
        self._shared = False

    def clear(self) -> int:
        """Fault: lose everything in flight; returns the number lost."""
        n = len(self._queue)
        self._queue = deque()
        self._shared = False
        self.total_dropped += n
        return n

    def __repr__(self) -> str:
        return f"FifoChannel({self.src}->{self.dst}, depth={len(self._queue)})"
