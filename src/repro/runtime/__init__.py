"""Asynchronous message-passing runtime (the TME system model, Section 3.1)."""

from repro.runtime.channel import FifoChannel
from repro.runtime.messages import Message
from repro.runtime.network import Network
from repro.runtime.process import ProcessRuntime
from repro.runtime.scheduler import (
    AdversarialScheduler,
    DeliverStep,
    InternalStep,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    Step,
)
from repro.runtime.simulator import FaultHook, Simulator
from repro.runtime.trace import GlobalState, StepRecord, Trace
from repro.runtime.transport import ChannelTransport, Transport

__all__ = [
    "AdversarialScheduler",
    "ChannelTransport",
    "DeliverStep",
    "FaultHook",
    "FifoChannel",
    "GlobalState",
    "InternalStep",
    "Message",
    "Network",
    "Transport",
    "ProcessRuntime",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "Simulator",
    "Step",
    "StepRecord",
    "Trace",
]
