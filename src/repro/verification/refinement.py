"""Everywhere-implementation checking for Lspec (Theorems 9 and 10).

``[C => Lspec]`` demands that every computation of C -- from *every* state
-- satisfy Lspec.  We decide this operationally in two complementary ways:

1. **Sampled arbitrary starts** (:func:`everywhere_implements_lspec`): run
   the implementation fault-free from many corrupted initial states (typed
   state scrambling + garbage channel preloads) and monitor every Lspec
   clause.  Any safety violation refutes the theorem for our encoding;
   liveness clauses are judged with a grace horizon.

2. **Exhaustive small scope** (:func:`exhaustive_lspec_check`): enumerate
   *all* local process states over a bounded clock domain for a 2-process
   system and check every enabled transition against the transition-local
   Lspec clauses (Structural, Flow, Request-safety, CS-Entry-safety,
   CS-Release).  This is the direct analogue of the paper's per-process
   proof obligations, and it is exactly the verification task whose cost
   the graybox argument says stays *per-process* -- compare
   :mod:`repro.verification.explorer` for the whitebox global-state
   counterpart.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.campaign.seeds import FAULTS_STREAM, SCHEDULER_STREAM, spawn_rng
from repro.clocks.timestamps import Timestamp
from repro.faults.state_faults import ImproperInitialization
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.simulator import Simulator
from repro.tme.client import ClientConfig
from repro.tme.interfaces import EATING, HUNGRY, PHASES, THINKING, tmap
from repro.tme.lspec import check_lspec
from repro.tme.scenarios import (
    garbage_channel_filler,
    scramble_tme_state,
    tme_programs,
)
from repro.tme.wrapper import WrapperConfig


@dataclass
class EverywhereReport:
    """Aggregate of Lspec conformance over many arbitrary-start runs."""

    algorithm: str
    runs: int = 0
    clean_runs: int = 0
    safety_violations: dict[str, int] = field(default_factory=dict)
    pending_clauses: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No safety violation in any sampled run."""
        return self.runs > 0 and not self.safety_violations

    def summary(self) -> str:
        """One-line report for logs and benches."""
        return (
            f"{self.algorithm}: {self.clean_runs}/{self.runs} runs fully "
            f"clean; safety violations {dict(self.safety_violations) or 'none'}; "
            f"liveness pending {dict(self.pending_clauses) or 'none'}"
        )


def everywhere_implements_lspec(
    algorithm: str,
    n: int = 3,
    runs: int = 20,
    steps: int = 1200,
    seed: int = 0,
    grace: int = 250,
    wrapper: WrapperConfig | None = None,
    client: ClientConfig | None = None,
) -> EverywhereReport:
    """Monitor all Lspec clauses on fault-free runs from corrupted starts."""
    report = EverywhereReport(algorithm)
    for r in range(runs):
        # Hierarchical derivation (repro.campaign.seeds): the injector and
        # scheduler get independent streams from (seed, run), instead of
        # the old ad-hoc `run_seed` / `run_seed + 1` pair whose streams
        # could collide across neighbouring runs.
        programs = tme_programs(algorithm, n, client, wrapper)
        injector = ImproperInitialization(
            spawn_rng(seed, "refinement", r, FAULTS_STREAM),
            scramble_tme_state,
            garbage_channel_filler,
        )
        sim = Simulator(
            programs,
            RandomScheduler(spawn_rng(seed, "refinement", r, SCHEDULER_STREAM)),
            fault_hook=injector,
        )
        trace = sim.run(steps)
        # The improper-initialization fault struck at step 0; judge the
        # program's own behaviour from state 1 onward.
        lrep = check_lspec(trace, programs, start=1)
        report.runs += 1
        clean = True
        for name, clause in lrep.clauses.items():
            if clause.violations:
                clean = False
                report.safety_violations[name] = report.safety_violations.get(
                    name, 0
                ) + len(clause.violations)
            overdue = [
                p
                for p in clause.pending
                if len(trace.states) - 1 - p.since > grace
            ]
            if overdue:
                clean = False
                report.pending_clauses[name] = report.pending_clauses.get(
                    name, 0
                ) + len(overdue)
        if clean:
            report.clean_runs += 1
    return report


# ---------------------------------------------------------------------------
# Exhaustive small-scope transition check (per-process, graybox-style)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExhaustiveResult:
    """Outcome of the exhaustive small-scope transition check."""

    algorithm: str
    states_checked: int
    transitions_checked: int
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Every checked transition satisfied the local clauses."""
        return not self.violations


def _local_states_ra(pid: str, peer: str, max_clock: int):
    """Every RA_ME local state over a bounded clock domain (2 processes)."""
    clocks = range(max_clock + 1)
    for phase, lc, req_c, req_of_c, recv in itertools.product(
        PHASES, clocks, clocks, clocks, (False, True)
    ):
        yield {
            "phase": phase,
            "lc": lc,
            "req": Timestamp(req_c, pid),
            "req_of": tmap({peer: Timestamp(req_of_c, peer)}),
            "received": tmap({peer: recv}),
            "think_timer": 0,
            "eat_timer": 0,
            "sessions_left": -1,
        }


def _local_states_lamport(pid: str, peer: str, max_clock: int):
    clocks = range(max_clock + 1)
    queue_options: list[tuple[Timestamp, ...]] = [()]
    queue_options += [(Timestamp(c, pid),) for c in clocks]
    queue_options += [(Timestamp(c, peer),) for c in clocks]
    queue_options += [
        tuple(sorted((Timestamp(a, pid), Timestamp(b, peer))))
        for a in clocks
        for b in clocks
    ]
    for phase, lc, req_c, queue, grant in itertools.product(
        PHASES, range(max_clock + 1), range(max_clock + 1), queue_options, (False, True)
    ):
        yield {
            "phase": phase,
            "lc": lc,
            "req": Timestamp(req_c, pid),
            "queue": queue,
            "grant": tmap({peer: grant}),
            "think_timer": 0,
            "eat_timer": 0,
            "sessions_left": -1,
        }


def count_local_states(
    algorithm: str, n: int = 2, max_clock: int = 2
) -> int:
    """The size of one process's local state domain with ``n-1`` peers over
    a bounded clock domain -- the per-process surface a graybox check
    covers (enumerated, not computed, so it stays honest to the encoding).

    For RA_ME the local state is
    ``phase x lc x REQ x (j.REQ_k, received_k) per peer``.
    """
    if algorithm != "ra":
        raise ValueError("local-state counting is defined for 'ra'")
    peers = n - 1
    if peers < 1:
        raise ValueError("need at least one peer")
    clocks = max_clock + 1
    count = 0
    per_peer = clocks * 2  # j.REQ_k timestamp x received flag
    for _phase in PHASES:
        for _lc in range(clocks):
            for _req in range(clocks):
                count += per_peer**peers
    return count


_FLOW = {
    THINKING: {THINKING, HUNGRY},
    HUNGRY: {HUNGRY, EATING},
    EATING: {EATING, THINKING},
}


def exhaustive_lspec_check(
    algorithm: str, max_clock: int = 3
) -> ExhaustiveResult:
    """Check the transition-local Lspec clauses on *every* local state of a
    single process (2-process scope, clocks bounded by ``max_clock``).

    For each enumerated state and each enabled internal action and each
    possible received message, execute the transition and verify:
    Structural, Flow, Request-safety (REQ frozen while hungry),
    CS-Entry-safety (entry only when all copies are later), and CS-Release
    (events landing in ``t`` set ``REQ = ts``).
    """
    from repro.tme.interfaces import adapter_for
    from repro.tme.lamport_me import lamport_program
    from repro.tme.ricart_agrawala import ra_program

    pid, peer = "p0", "p1"
    client = ClientConfig(think_delay=0, eat_delay=0)
    if algorithm == "ra":
        program = ra_program(pid, (pid, peer), client)
        states = _local_states_ra(pid, peer, max_clock)
        kinds = ("request", "reply")
    elif algorithm == "lamport":
        program = lamport_program(pid, (pid, peer), client)
        states = _local_states_lamport(pid, peer, max_clock)
        kinds = ("request", "reply", "release")
    else:
        raise ValueError(f"no exhaustive model for {algorithm!r}")
    adapter = adapter_for(program.name)

    violations: list[str] = []
    states_checked = 0
    transitions = 0

    from repro.runtime.process import ProcessRuntime

    for variables in states:
        states_checked += 1
        outcomes = []
        proc = ProcessRuntime(pid, program, (pid, peer), overrides=variables)
        for act in proc.enabled_internal_actions():
            clone = ProcessRuntime(pid, program, (pid, peer), overrides=dict(variables))
            clone.execute_internal(act)
            outcomes.append((act.name, clone.variables))
        for kind in kinds:
            for clock in range(max_clock + 1):
                handler = program.receive_action_for(kind)
                if handler is None:
                    continue
                clone = ProcessRuntime(
                    pid, program, (pid, peer), overrides=dict(variables)
                )
                view = clone.view(
                    {"_msg": Timestamp(clock, peer), "_sender": peer}
                )
                if not handler.enabled(view):
                    continue
                clone._apply(handler.body(view))
                outcomes.append((f"recv-{kind}({clock})", clone.variables))
        pre_view = adapter(variables, pid, (peer,))
        for name, post in outcomes:
            transitions += 1
            post_view = adapter(post, pid, (peer,))
            where = f"{algorithm} state={variables['phase']},{variables['lc']} action={name}"
            if post["phase"] not in PHASES:
                violations.append(f"structural: {where}")
            elif variables["phase"] in _FLOW and post["phase"] not in _FLOW[
                variables["phase"]
            ]:
                violations.append(f"flow: {where}")
            if (
                pre_view["phase"] == HUNGRY
                and post_view["phase"] == HUNGRY
                and pre_view["req"] != post_view["req"]
            ):
                violations.append(f"request-safety: {where}")
            if pre_view["phase"] == HUNGRY and post_view["phase"] == EATING:
                if not all(
                    pre_view["req"].lt(v) for v in pre_view["req_of"].values()
                ):
                    violations.append(f"cs-entry-safety: {where}")
            lc_changed = variables["lc"] != post["lc"]
            if post["phase"] == THINKING and (
                lc_changed or variables["phase"] != post["phase"]
            ):
                if post["req"] != Timestamp(post["lc"], pid):
                    violations.append(f"cs-release: {where}")
    return ExhaustiveResult(
        algorithm, states_checked, transitions, tuple(violations[:20])
    )
