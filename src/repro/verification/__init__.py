"""Verification: refinement checks, stabilization checking, exploration."""

from repro.verification.explorer import (
    ExplorationResult,
    default_message_alphabet,
    explore_global,
    explore_local,
)
from repro.verification.monitor import VerificationBundle, verify_run
from repro.verification.refinement import (
    EverywhereReport,
    ExhaustiveResult,
    count_local_states,
    everywhere_implements_lspec,
    exhaustive_lspec_check,
)
from repro.verification.stabilization import (
    ConvergenceResult,
    check_stabilization,
)

__all__ = [
    "ConvergenceResult",
    "EverywhereReport",
    "ExhaustiveResult",
    "ExplorationResult",
    "VerificationBundle",
    "check_stabilization",
    "count_local_states",
    "default_message_alphabet",
    "everywhere_implements_lspec",
    "exhaustive_lspec_check",
    "explore_global",
    "explore_local",
    "verify_run",
]
