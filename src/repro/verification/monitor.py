"""Combined runtime-verification front end.

Convenience layer used by examples and benchmarks: run one trace through
both specification levels (TME Spec and Lspec) and the stabilization
checker, and bundle the verdicts.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.dsl.program import ProcessProgram
from repro.runtime.trace import Trace
from repro.tme.lspec import LspecReport, check_lspec
from repro.tme.spec import TmeSpecReport, check_tme_spec
from repro.verification.stabilization import (
    ConvergenceResult,
    check_stabilization,
)


@dataclass(frozen=True)
class VerificationBundle:
    """All three verdicts for one run."""

    tme: TmeSpecReport
    lspec: LspecReport
    convergence: ConvergenceResult

    def describe(self) -> str:
        """Human-readable three-line summary of the verdicts."""
        lines = [
            f"TME Spec     : {self.tme.summary()}",
            f"Lspec        : {self.lspec.summary()}",
        ]
        if not self.convergence.converged:
            lines.append(
                f"Stabilization: NOT converged ({self.convergence.detail})"
            )
        elif self.convergence.last_fault_step is None:
            lines.append("Stabilization: no faults injected (fault-free run)")
        else:
            lines.append(
                f"Stabilization: converged {self.convergence.latency} steps "
                f"after the last fault "
                f"({self.convergence.entries_after} CS entries afterwards)"
            )
        return "\n".join(lines)


def verify_run(
    trace: Trace,
    programs: Mapping[str, ProcessProgram],
    liveness_grace: int = 150,
    check_fcfs: bool = True,
) -> VerificationBundle:
    """Evaluate TME Spec, Lspec, and convergence on one recorded run."""
    horizon = trace.last_fault_index()
    start = 0 if horizon is None else horizon + 1
    return VerificationBundle(
        tme=check_tme_spec(trace, start=start),
        lspec=check_lspec(trace, programs, start=start),
        convergence=check_stabilization(
            trace, liveness_grace=liveness_grace, check_fcfs=check_fcfs
        ),
    )
