"""Bounded state-space exploration: the graybox-vs-whitebox cost experiment.

Section 1 argues that whitebox stabilization does not scale because "the
complexity of calculating the invariant of large implementations may be
exorbitant": the whitebox designer reasons over the *global* state space
(the product of all process states and channel contents), while the graybox
designer discharges *per-process* obligations against local specifications
(Theorem 4 reduces ``[C => A]`` to ``forall i : [C_i => A_i]``).

This module makes that asymmetry measurable:

* :func:`explore_global` -- breadth-first enumeration of the distinct
  *global* states reachable within a step bound (the object a whitebox
  invariant must cover);
* :func:`explore_local` -- breadth-first enumeration of one process's
  *local* states under every possible received message from a bounded
  alphabet (the object a graybox per-process check covers; the system-wide
  graybox cost is the *sum*, not the *product*, over processes).

E7 sweeps ``n`` and reports both counts.

Both functions are thin wrappers over the unified exploration engine
(:mod:`repro.explore`): global expansion forks live simulators instead of
rebuilding one per branch, optionally across a process pool, and every
result carries the engine's :class:`~repro.explore.ExplorationStats`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.clocks.timestamps import Timestamp
from repro.dsl.program import ProcessProgram
from repro.explore import (
    ExplorationStats,
    GlobalSimulatorSpace,
    LocalProcessSpace,
    explore,
)


@dataclass(frozen=True)
class ExplorationResult:
    """How many distinct states a bounded exploration visited.

    ``stats`` carries the engine's full instrumentation (throughput,
    dedup hit-rate, peak frontier, truncation cause); the three legacy
    fields remain for existing callers.
    """

    label: str
    states: int
    frontier_truncated: bool
    depth_reached: int
    stats: ExplorationStats | None = None
    content_digest: str | None = None


def explore_global(
    programs: Mapping[str, ProcessProgram],
    max_depth: int = 8,
    max_states: int = 200_000,
    max_seconds: float | None = None,
    workers: int = 1,
    symmetry: str | bool | None = None,
    profile: bool = False,
    store_dir: str | None = None,
    resume: bool = False,
    digest: bool = False,
) -> ExplorationResult:
    """All distinct global states reachable from proper initialization in at
    most ``max_depth`` steps (whitebox verification surface).

    ``workers > 1`` shards the frontier across forked worker processes
    (bit-identical visit set, wall-clock divided across cores);
    ``max_seconds`` adds a wall-time budget on top of the depth and
    state bounds.  ``symmetry`` (``"full"`` or ``"ring"``) counts one
    representative per process-permutation orbit instead of every
    renamed copy; see :mod:`repro.explore.canon` for which group is
    sound for which algorithm.  ``store_dir`` spills visited states to
    an on-disk journal (out-of-core exploration) and checkpoints every
    BFS level; ``resume=True`` continues a killed run from its last
    committed level instead of starting over.  ``profile=True``
    attaches the engine's per-phase timing breakdown to
    ``stats.profile``; ``digest=True`` adds the order-independent
    content digest of the visited set (always present for
    checkpointed/sharded runs, where it is precomputed).
    """
    result = explore(
        GlobalSimulatorSpace(programs, symmetry=symmetry),
        max_depth=max_depth,
        max_states=max_states,
        max_seconds=max_seconds,
        workers=workers,
        profile=profile,
        store_dir=store_dir,
        resume=resume,
    )
    return ExplorationResult(
        "global",
        result.states,
        result.stats.truncated,
        result.stats.depth_reached,
        stats=result.stats,
        content_digest=(
            result.content_digest()
            if digest or store_dir is not None or workers > 1
            else None
        ),
    )


def default_message_alphabet(
    peers: Iterable[str], kinds: Iterable[str], max_clock: int
) -> list[tuple[str, str, Timestamp]]:
    """(sender, kind, payload) triples a process may receive."""
    return [
        (sender, kind, Timestamp(c, sender))
        for sender in peers
        for kind in kinds
        for c in range(max_clock + 1)
    ]


def explore_local(
    program: ProcessProgram,
    pid: str,
    all_pids: tuple[str, ...],
    kinds: Iterable[str],
    max_depth: int = 8,
    max_clock: int = 6,
    max_states: int = 200_000,
    max_seconds: float | None = None,
    symmetry: bool = False,
    profile: bool = False,
) -> ExplorationResult:
    """All distinct *local* states of one process reachable within
    ``max_depth`` of its own steps, under any receivable message from the
    bounded alphabet (graybox per-process verification surface).
    ``symmetry=True`` quotients under permutations of the peers;
    ``profile=True`` attaches per-phase timing to ``stats.profile``."""
    peers = tuple(p for p in all_pids if p != pid)
    space = LocalProcessSpace(
        program,
        pid,
        all_pids,
        default_message_alphabet(peers, kinds, max_clock),
        max_clock,
        symmetry=symmetry,
    )
    result = explore(
        space,
        max_depth=max_depth,
        max_states=max_states,
        max_seconds=max_seconds,
        profile=profile,
    )
    return ExplorationResult(
        "local",
        result.states,
        result.stats.truncated,
        result.stats.depth_reached,
        stats=result.stats,
    )
