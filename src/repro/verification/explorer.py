"""Bounded state-space exploration: the graybox-vs-whitebox cost experiment.

Section 1 argues that whitebox stabilization does not scale because "the
complexity of calculating the invariant of large implementations may be
exorbitant": the whitebox designer reasons over the *global* state space
(the product of all process states and channel contents), while the graybox
designer discharges *per-process* obligations against local specifications
(Theorem 4 reduces ``[C => A]`` to ``forall i : [C_i => A_i]``).

This module makes that asymmetry measurable:

* :func:`explore_global` -- breadth-first enumeration of the distinct
  *global* states reachable within a step bound (the object a whitebox
  invariant must cover);
* :func:`explore_local` -- breadth-first enumeration of one process's
  *local* states under every possible received message from a bounded
  alphabet (the object a graybox per-process check covers; the system-wide
  graybox cost is the *sum*, not the *product*, over processes).

E7 sweeps ``n`` and reports both counts.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.clocks.timestamps import Timestamp
from repro.dsl.program import ProcessProgram
from repro.runtime.scheduler import RoundRobinScheduler
from repro.runtime.simulator import Simulator
from repro.runtime.trace import GlobalState


@dataclass(frozen=True)
class ExplorationResult:
    """How many distinct states a bounded exploration visited."""

    label: str
    states: int
    frontier_truncated: bool
    depth_reached: int


def _restore(
    programs: Mapping[str, ProcessProgram], state: GlobalState
) -> Simulator:
    """Reconstruct a live simulator positioned at ``state``."""
    overrides = {pid: state.process_vars(pid) for pid in state.pids()}
    sim = Simulator(
        programs,
        RoundRobinScheduler(),
        overrides=overrides,
        record_states=False,
    )
    for (src, dst), content in state.channels:
        for kind, payload in content:
            sim.network.send(kind, src, dst, payload)
    return sim


def explore_global(
    programs: Mapping[str, ProcessProgram],
    max_depth: int = 8,
    max_states: int = 200_000,
) -> ExplorationResult:
    """All distinct global states reachable from proper initialization in at
    most ``max_depth`` steps (whitebox verification surface)."""
    root_sim = Simulator(programs, RoundRobinScheduler(), record_states=True)
    root = root_sim.snapshot()
    seen: set[GlobalState] = {root}
    frontier: deque[tuple[GlobalState, int]] = deque([(root, 0)])
    truncated = False
    depth_reached = 0
    while frontier:
        state, depth = frontier.popleft()
        depth_reached = max(depth_reached, depth)
        if depth >= max_depth:
            continue
        sim = _restore(programs, state)
        for step in sim.candidate_steps():
            branch = _restore(programs, state)
            branch.execute(step)
            succ = branch.snapshot()
            if succ in seen:
                continue
            if len(seen) >= max_states:
                truncated = True
                frontier.clear()
                break
            seen.add(succ)
            frontier.append((succ, depth + 1))
    return ExplorationResult(
        "global", len(seen), truncated, depth_reached
    )


def default_message_alphabet(
    peers: Iterable[str], kinds: Iterable[str], max_clock: int
) -> list[tuple[str, str, Timestamp]]:
    """(sender, kind, payload) triples a process may receive."""
    return [
        (sender, kind, Timestamp(c, sender))
        for sender in peers
        for kind in kinds
        for c in range(max_clock + 1)
    ]


def explore_local(
    program: ProcessProgram,
    pid: str,
    all_pids: tuple[str, ...],
    kinds: Iterable[str],
    max_depth: int = 8,
    max_clock: int = 6,
    max_states: int = 200_000,
) -> ExplorationResult:
    """All distinct *local* states of one process reachable within
    ``max_depth`` of its own steps, under any receivable message from the
    bounded alphabet (graybox per-process verification surface)."""
    from repro.runtime.process import ProcessRuntime

    peers = tuple(p for p in all_pids if p != pid)
    alphabet = default_message_alphabet(peers, kinds, max_clock)

    def snapshot_of(proc: ProcessRuntime):
        return proc.snapshot()

    root_proc = ProcessRuntime(pid, program, all_pids)
    root = snapshot_of(root_proc)
    seen = {root}
    frontier: deque[tuple[tuple, int]] = deque([(root, 0)])
    truncated = False
    depth_reached = 0
    while frontier:
        snap, depth = frontier.popleft()
        depth_reached = max(depth_reached, depth)
        if depth >= max_depth:
            continue
        variables = dict(snap)
        successors = []
        base = ProcessRuntime(pid, program, all_pids, overrides=variables)
        for act in base.enabled_internal_actions():
            clone = ProcessRuntime(pid, program, all_pids, overrides=dict(variables))
            clone.execute_internal(act)
            lc = clone.variables.get("lc", 0)
            if isinstance(lc, int) and lc <= max_clock:
                successors.append(snapshot_of(clone))
        for sender, kind, payload in alphabet:
            handler = program.receive_action_for(kind)
            if handler is None:
                continue
            clone = ProcessRuntime(pid, program, all_pids, overrides=dict(variables))
            view = clone.view({"_msg": payload, "_sender": sender})
            if not handler.enabled(view):
                continue
            clone._apply(handler.body(view))
            lc = clone.variables.get("lc", 0)
            if isinstance(lc, int) and lc <= max_clock:
                successors.append(snapshot_of(clone))
        for succ in successors:
            if succ in seen:
                continue
            if len(seen) >= max_states:
                truncated = True
                frontier.clear()
                break
            seen.add(succ)
            frontier.append((succ, depth + 1))
    return ExplorationResult("local", len(seen), truncated, depth_reached)
