"""Operational stabilization checking (Theorem 8 / Corollary 11).

*C is stabilizing to A* means every computation of C has a suffix that is a
computation suffix of A.  Operationally, on a recorded run whose faults
cease at some step (the paper's "finite number of faults"), we must find a
convergence point after the last fault from which the remainder of the run
satisfies TME Spec: no mutual exclusion violation, no FCFS violation,
progress resumed, and no process starving.

:func:`check_stabilization` locates the earliest such point and reports the
convergence latency (steps from the last fault to the convergence point)
-- the headline metric of experiments E2-E5.

This check is *trace-analytic*: it scans one recorded run and performs no
state-space search of its own.  The searches it complements -- bounded
exploration of the global/local surfaces
(:mod:`repro.verification.explorer`) and reachability for the exact
Section-2 relation checks (:meth:`~repro.core.system.TransitionSystem.
reachable_from`) -- all run on the unified exploration engine
(:mod:`repro.explore`); its own verdicts are independent of that engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.trace import Trace
from repro.tme.spec import check_tme_spec


@dataclass(frozen=True)
class ConvergenceResult:
    """Did the run stabilize, and how fast?

    ``convergence_step`` is the earliest index ``c`` at or after the fault
    horizon such that ``states[c:]`` is TME-clean; ``latency`` counts steps
    from the first post-fault state to ``c``.
    """

    converged: bool
    trace_length: int
    last_fault_step: int | None
    convergence_step: int | None
    latency: int | None
    entries_after: int
    violations_after_faults: int
    detail: str = ""

    def __bool__(self) -> bool:
        return self.converged


def check_stabilization(
    trace: Trace,
    liveness_grace: int = 150,
    check_fcfs: bool = True,
    require_entries: int = 1,
) -> ConvergenceResult:
    """Locate the convergence point of a run (see module docstring).

    ``liveness_grace``: how many trailing steps an unserved hunger may span
    before it counts as starvation (finite traces cannot prove liveness;
    they can bound it).
    ``require_entries``: CS entries demanded after convergence -- guards
    against declaring a deadlocked tail "clean" vacuously.
    """
    last_fault = trace.last_fault_index()
    horizon = 0 if last_fault is None else last_fault + 1
    post_fault = check_tme_spec(trace, start=horizon)
    violation_indices = sorted(
        list(post_fault.me1)
        + ([v.entry_index for v in post_fault.me3] if check_fcfs else [])
    )
    candidate = (
        horizon if not violation_indices else violation_indices[-1] + 1
    )
    if candidate >= len(trace.states):
        return ConvergenceResult(
            converged=False,
            trace_length=len(trace.states),
            last_fault_step=last_fault,
            convergence_step=None,
            latency=None,
            entries_after=0,
            violations_after_faults=len(violation_indices),
            detail="violations continue to the end of the trace",
        )
    suffix = check_tme_spec(trace, start=candidate)
    entries = sum(r.entries for r in suffix.me2)
    starving = [
        r.pid for r in suffix.me2 if not r.satisfied(liveness_grace)
    ]
    converged = not starving and entries >= require_entries
    detail = ""
    if starving:
        detail = f"starving after candidate point: {starving}"
    elif entries < require_entries:
        detail = (
            f"only {entries} CS entries after convergence candidate "
            f"(required {require_entries}); system may be deadlocked"
        )
    return ConvergenceResult(
        converged=converged,
        trace_length=len(trace.states),
        last_fault_step=last_fault,
        convergence_step=candidate if converged else None,
        latency=(candidate - horizon) if converged else None,
        entries_after=entries,
        violations_after_faults=len(violation_indices),
        detail=detail,
    )
