"""A third everywhere-implementation of Lspec: reply-counting RA.

Corollary 11 promises the wrapper for *every* everywhere-implementation of
Lspec, not just the two the paper works out.  ``RACount_ME`` is a deliberately
different third implementation in the style of Ricart-Agrawala's original
presentation: it keeps an explicit ``awaiting`` set (peers whose reply is
outstanding for the current request) and an explicit ``deferred`` set
(requests to answer at release), instead of deriving everything from
timestamps.

The Lspec interface variables are maintained alongside (explicit adapter),
and the CS-entry guard is the *conjunction* of the classic rule ("no reply
outstanding") and the Lspec rule ("every copy later than my request") --
the belt-and-braces needed to everywhere-implement CS Entry Spec even when
the private ``awaiting`` set is corrupted to empty.

Corruption of the private sets is repaired through the same channel the
paper's wrapper uses: retransmitted requests provoke fresh replies, and
replies simultaneously shrink ``awaiting`` and raise ``j.REQ_k``.  The
reuse experiment (E6) and the test suite attach the *identical* wrapper
object used for RA_ME and Lamport_ME.
"""

from __future__ import annotations

from repro.clocks.timestamps import Timestamp
from repro.dsl.guards import Effect, GuardedAction, LocalView, Send
from repro.dsl.program import ProcessProgram
from repro.tme.client import (
    ClientConfig,
    client_tick_actions,
    client_vars,
    may_release,
    on_release_updates,
    on_request_updates,
    wants_cs,
)
from repro.tme.interfaces import (
    EATING,
    HUNGRY,
    REPLY,
    REQUEST,
    THINKING,
    initial_lspec_vars,
    tmap_as_dict,
    tmap_set,
)
from repro.tme.ricart_agrawala import _observe

PROGRAM_NAME = "RACount_ME"


def _as_pid_set(value: object, peers: tuple[str, ...]) -> frozenset[str]:
    """Corruption-tolerant read of a peer-set variable."""
    if isinstance(value, frozenset):
        return value & frozenset(peers)
    return frozenset()


def ra_counting_program(
    pid: str, all_pids: tuple[str, ...], client: ClientConfig
) -> ProcessProgram:
    """Build the reply-counting RA program for process ``pid``."""
    peers = tuple(k for k in all_pids if k != pid)

    def request_body(view: LocalView) -> Effect:
        lc = view.lc + 1
        req = Timestamp(lc, pid)
        updates = {
            "lc": lc,
            "req": req,
            "phase": HUNGRY,
            "awaiting": frozenset(peers),
            **on_request_updates(view, client),
        }
        sends = tuple(Send(k, REQUEST, req) for k in peers)
        return Effect(updates, sends)

    def recv_request_body(view: LocalView) -> Effect:
        sender = view["_sender"]
        incoming = view["_msg"]
        lc = _observe(
            view.lc, incoming, view["_msg_clock"] if "_msg_clock" in view else None
        )
        updates: dict = {"lc": lc}
        if not isinstance(incoming, Timestamp):
            return Effect(updates)
        req = view.req
        if view.phase == THINKING or not isinstance(req, Timestamp):
            req = Timestamp(lc, pid)
        updates["req"] = req
        updates["req_of"] = tmap_set(view.req_of, sender, incoming)
        received = tmap_set(view.received, sender, True)
        deferred = _as_pid_set(view.deferred, peers)
        sends: tuple[Send, ...] = ()
        if incoming.lt(req):
            sends = (Send(sender, REPLY, req),)
            received = tmap_set(received, sender, False)
            updates["deferred"] = deferred - {sender}
        else:
            updates["deferred"] = deferred | {sender}
        updates["received"] = received
        return Effect(updates, sends)

    def recv_reply_body(view: LocalView) -> Effect:
        sender = view["_sender"]
        incoming = view["_msg"]
        lc = _observe(
            view.lc, incoming, view["_msg_clock"] if "_msg_clock" in view else None
        )
        updates: dict = {
            "lc": lc,
            "awaiting": _as_pid_set(view.awaiting, peers) - {sender},
        }
        if isinstance(incoming, Timestamp):
            updates["req_of"] = tmap_set(view.req_of, sender, incoming)
        if view.phase == THINKING:
            updates["req"] = Timestamp(lc, pid)
        return Effect(updates)

    def grant_guard(view: LocalView) -> bool:
        if view.phase != HUNGRY or not isinstance(view.req, Timestamp):
            return False
        if _as_pid_set(view.awaiting, peers):
            return False
        req_of = tmap_as_dict(view.req_of)
        # the Lspec half of the guard: without it, a corrupted empty
        # `awaiting` would let a blocked process barge into the CS,
        # violating CS Entry Spec from that state.
        return all(
            isinstance(req_of.get(k), Timestamp) and view.req.lt(req_of[k])
            for k in peers
        )

    def grant_body(view: LocalView) -> Effect:
        return Effect({"lc": view.lc + 1, "phase": EATING})

    def reconcile_guard(view: LocalView) -> bool:
        # Internal consistency (the paper's level-1 concern): a peer whose
        # copy is already LATER than our request has effectively yielded --
        # keeping it in `awaiting` is stale private state.  Without this
        # action, a corrupted `awaiting` entry for a peer whose copy is
        # high would block CS entry forever while CS Entry Spec's
        # antecedent holds: the program would not everywhere-implement
        # Lspec.  (The wrapper cannot help here -- the suspect set X is
        # empty precisely because the copies look fine.)
        if view.phase != HUNGRY or not isinstance(view.req, Timestamp):
            return False
        req_of = tmap_as_dict(view.req_of)
        return any(
            isinstance(req_of.get(k), Timestamp) and view.req.lt(req_of[k])
            for k in _as_pid_set(view.awaiting, peers)
        )

    def reconcile_body(view: LocalView) -> Effect:
        req_of = tmap_as_dict(view.req_of)
        yielded = {
            k
            for k in _as_pid_set(view.awaiting, peers)
            if isinstance(req_of.get(k), Timestamp)
            and view.req.lt(req_of[k])
        }
        return Effect(
            {"awaiting": _as_pid_set(view.awaiting, peers) - yielded}
        )

    def release_body(view: LocalView) -> Effect:
        lc = view.lc + 1
        stamp = Timestamp(lc, pid)
        deferred = _as_pid_set(view.deferred, peers)
        sends = tuple(Send(k, REPLY, stamp) for k in sorted(deferred))
        updates = {
            "lc": lc,
            "req": stamp,
            "phase": THINKING,
            "deferred": frozenset(),
            "received": tuple((k, False) for k, _v in view.received),
            "awaiting": frozenset(),
            **on_release_updates(client),
        }
        return Effect(updates, sends)

    initial = {
        **initial_lspec_vars(pid, all_pids),
        **client_vars(client),
        "awaiting": frozenset(),
        "deferred": frozenset(),
    }
    return ProcessProgram(
        PROGRAM_NAME,
        initial,
        actions=(
            GuardedAction("rac:request", wants_cs, request_body),
            GuardedAction("rac:grant", grant_guard, grant_body),
            GuardedAction("rac:reconcile", reconcile_guard, reconcile_body),
            GuardedAction("rac:release", may_release, release_body),
            *client_tick_actions(client),
        ),
        receive_actions=(
            GuardedAction(
                "rac:recv-request",
                lambda _view: True,
                recv_request_body,
                message_kind=REQUEST,
            ),
            GuardedAction(
                "rac:recv-reply",
                lambda _view: True,
                recv_reply_body,
                message_kind=REPLY,
            ),
        ),
    )


def ra_counting_programs(
    all_pids: tuple[str, ...], client: ClientConfig | None = None
) -> dict[str, ProcessProgram]:
    """Reply-counting RA for every process."""
    cfg = client or ClientConfig()
    return {pid: ra_counting_program(pid, all_pids, cfg) for pid in all_pids}
