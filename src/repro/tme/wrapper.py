"""The graybox stabilization wrapper W / refined W / timeout W' (Section 4).

The paper derives the wrapper in three steps:

* **W_j** (basic):   ``h.j -> (forall k : k != j : send(REQ_j, j, k))`` --
  while hungry, keep retransmitting the request to everyone.
* **W_j** (refined): only retransmit to the suspect set
  ``X = { k : j.REQ_k lt REQ_j }`` -- for ``k`` outside ``X`` either ``k``'s
  own wrapper fixes things (if ``h.k``) or nothing needs fixing.
* **W'_j** (timeout): retransmit only when a local timer expires,
  ``(timer.j = 0 /\\ h.j) -> ... ; timer.j := theta_j`` -- a pure
  optimization; ``theta = 0`` gives back W (the paper: "W' is equivalent to
  W when theta = 0").

Graybox-ness is structural here: the decision functions
(:func:`correction_set`, :func:`should_correct`) take an
:class:`~repro.tme.interfaces.LspecView` -- the published Lspec interface of
the wrapped component -- and *cannot* see implementation internals.  The
same wrapper object therefore serves RA_ME, Lamport_ME, or any other
everywhere-implementation of Lspec (Theorem 8 / Corollary 11).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.dsl.guards import Effect, GuardedAction, LocalView, Send
from repro.dsl.program import ProcessProgram
from repro.tme.interfaces import (
    HUNGRY,
    REQUEST,
    Adapter,
    LspecView,
    adapter_for,
    register_adapter,
)


@dataclass(frozen=True)
class WrapperConfig:
    """Which wrapper variant to attach.

    ``theta``   -- the timeout period of W' (0 == the un-timed wrapper W);
    ``refined`` -- send only to the suspect set X (the paper's refinement)
    rather than to all peers.
    """

    theta: int = 0
    refined: bool = True

    def __post_init__(self) -> None:
        if self.theta < 0:
            raise ValueError("theta must be non-negative")

    @property
    def variant_name(self) -> str:
        """Display name: W, W'(theta=k), optionally -unrefined."""
        base = "W" if self.theta == 0 else f"W'(theta={self.theta})"
        return base if self.refined else base + "-unrefined"


# -- the graybox decision core (pure functions over the Lspec view) ---------


def correction_set(lspec: LspecView) -> list[str]:
    """The paper's ``X = { k : j.REQ_k lt REQ_j }`` (sorted for determinism)."""
    return [k for k, ts in sorted(lspec.req_of.items()) if ts.lt(lspec.req)]


def should_correct(lspec: LspecView, config: WrapperConfig) -> bool:
    """Is the wrapper's guard (ignoring the timer) enabled?"""
    if lspec.phase != HUNGRY:
        return False
    if config.refined:
        return bool(correction_set(lspec))
    return True


def correction_sends(lspec: LspecView, config: WrapperConfig) -> tuple[Send, ...]:
    """The retransmissions: ``send(REQ_j, j, k)`` for each target."""
    targets = (
        correction_set(lspec) if config.refined else sorted(lspec.req_of)
    )
    return tuple(Send(k, REQUEST, lspec.req) for k in targets)


# -- packaging as a process program ------------------------------------------


def wrapper_program(
    pid: str,
    all_pids: tuple[str, ...],
    adapter: Adapter,
    config: WrapperConfig | None = None,
) -> ProcessProgram:
    """Build W'_j as a guarded-command program for process ``pid``.

    ``adapter`` is the wrapped implementation's published Lspec abstraction;
    the wrapper's guard and body consume only its output plus the wrapper's
    own ``w_timer``.
    """
    cfg = config or WrapperConfig()
    peers = tuple(k for k in all_pids if k != pid)

    def lspec_of(view: LocalView) -> LspecView:
        return adapter(view.as_dict(), pid, peers)

    def timer_running(view: LocalView) -> bool:
        # The wrapper's own variable must itself be stabilizing: a corrupted
        # timer outside [0, theta] is treated as expired, so a fault on
        # ``w_timer`` can delay correction by at most theta steps.
        timer = view.w_timer
        return isinstance(timer, int) and 0 < timer <= cfg.theta

    def correct_guard(view: LocalView) -> bool:
        if timer_running(view):
            return False
        return should_correct(lspec_of(view), cfg)

    def correct_body(view: LocalView) -> Effect:
        lspec = lspec_of(view)
        return Effect({"w_timer": cfg.theta}, correction_sends(lspec, cfg))

    def tick_guard(view: LocalView) -> bool:
        return lspec_of(view).phase == HUNGRY and timer_running(view)

    def tick_body(view: LocalView) -> Effect:
        return Effect({"w_timer": view.w_timer - 1})

    actions = [GuardedAction("W:correct", correct_guard, correct_body)]
    if cfg.theta > 0:
        actions.append(GuardedAction("W:tick", tick_guard, tick_body))
    return ProcessProgram(
        f"{cfg.variant_name}[{pid}]",
        {"w_timer": 0},
        actions=tuple(actions),
    )


def wrap_program(
    program: ProcessProgram,
    pid: str,
    all_pids: tuple[str, ...],
    config: WrapperConfig | None = None,
    adapter: Adapter | None = None,
) -> ProcessProgram:
    """``M_j box W'_j``: compose one process's program with its wrapper.

    The adapter defaults to the one registered for ``program.name`` (the
    implementation's published interface realization).
    """
    cfg = config or WrapperConfig()
    chosen = adapter or adapter_for(program.name)
    wrapper = wrapper_program(pid, all_pids, chosen, cfg)
    wrapped = program.composed_with(
        wrapper, name=f"{program.name}+{cfg.variant_name}"
    )
    register_adapter(wrapped.name, chosen)
    return wrapped


def wrap_system(
    programs: Mapping[str, ProcessProgram],
    config: WrapperConfig | None = None,
    adapter: Adapter | None = None,
) -> dict[str, ProcessProgram]:
    """``M box W`` for a whole system: wrap every process (Theorem 8)."""
    all_pids = tuple(sorted(programs))
    return {
        pid: wrap_program(programs[pid], pid, all_pids, config, adapter)
        for pid in all_pids
    }
