"""TME Spec (Section 3.1): ME1, ME2, ME3 as trace monitors.

::

    (ME1) Mutual Exclusion:      (forall j,k :: e.j /\\ e.k => j = k)
    (ME2) Starvation Freedom:    (forall j :: h.j |-> e.j)
    (ME3) First-Come First-Serve:
          (forall j,k : j != k :
              (h.j /\\ REQ_j hb REQ_k) |-> ts:(e.j) < ts:(e.k))

ME1 is a state predicate, checked on every snapshot.  ME2 is a leads-to,
monitored per process with pending-obligation reporting (finite traces).
For ME3 we monitor a slightly *stronger*, decidable-on-snapshots property:
whenever two processes are simultaneously hungry with ``REQ_j lt REQ_k``,
``j`` must enter the CS before ``k`` does.  Since Lamport clocks satisfy
``e hb f => ts:e lt ts:f``, the paper's antecedent (``REQ_j hb REQ_k``
while ``h.j``) implies ours, so any ME3 violation is caught; the converse
over-approximation can only make our monitor stricter, and both RA and
Lamport serve strictly in timestamp order, so fault-free runs stay clean.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.clocks.timestamps import Timestamp
from repro.runtime.trace import GlobalState, Trace
from repro.tme.interfaces import EATING, HUNGRY


def eating_pids(state: GlobalState) -> list[str]:
    """Processes currently in the critical section."""
    return [p for p in state.pids() if state.var(p, "phase") == EATING]


def hungry_pids(state: GlobalState) -> list[str]:
    """Processes currently requesting the critical section."""
    return [p for p in state.pids() if state.var(p, "phase") == HUNGRY]


# ---------------------------------------------------------------------------
# ME1
# ---------------------------------------------------------------------------


def me1_violations(states: Sequence[GlobalState]) -> list[int]:
    """Indices of states where two or more processes are eating."""
    return [i for i, s in enumerate(states) if len(eating_pids(s)) >= 2]


# ---------------------------------------------------------------------------
# ME2
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Me2Report:
    """Starvation-freedom report for one process."""

    pid: str
    entries: int
    max_latency: int
    pending_since: int | None
    trace_length: int

    @property
    def pending_age(self) -> int:
        """Steps the oldest open hunger has lasted at trace end."""
        if self.pending_since is None:
            return 0
        return self.trace_length - 1 - self.pending_since

    def satisfied(self, grace: int = 0) -> bool:
        """No starvation: any open obligation is younger than ``grace``."""
        return self.pending_since is None or self.pending_age <= grace


def me2_reports(states: Sequence[GlobalState], start: int = 0) -> list[Me2Report]:
    """Per-process ``h |-> e`` over ``states[start:]``."""
    if not states:
        return []
    window = states[start:]
    reports = []
    for pid in states[0].pids():
        pending: int | None = None
        entries = 0
        max_latency = 0
        for i, s in enumerate(window):
            phase = s.var(pid, "phase")
            if phase == EATING and pending is not None:
                entries += 1
                max_latency = max(max_latency, i - pending)
                pending = None
            if phase == HUNGRY and pending is None:
                pending = i
        reports.append(
            Me2Report(pid, entries, max_latency, pending, len(window))
        )
    return reports


# ---------------------------------------------------------------------------
# ME3
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FcfsViolation:
    """``loser`` entered the CS at ``entry_index`` although ``winner`` was
    simultaneously hungry with an earlier request."""

    winner: str
    winner_req: Timestamp
    loser: str
    loser_req: Timestamp
    entry_index: int


def _req(state: GlobalState, pid: str) -> Timestamp | None:
    value = state.var(pid, "req")
    return value if isinstance(value, Timestamp) else None


def me3_violations(
    states: Sequence[GlobalState], start: int = 0
) -> list[FcfsViolation]:
    """FCFS check (see module docstring): at every CS entry ``k -> e``,
    no process may still be hungry with an earlier request than ``k``'s."""
    violations: list[FcfsViolation] = []
    window = states[start:]
    for i in range(1, len(window)):
        prev, cur = window[i - 1], window[i]
        for k in cur.pids():
            entered = (
                cur.var(k, "phase") == EATING
                and prev.var(k, "phase") == HUNGRY
            )
            if not entered:
                continue
            req_k = _req(prev, k)
            if req_k is None:
                continue
            for j in cur.pids():
                if j == k:
                    continue
                if (
                    prev.var(j, "phase") == HUNGRY
                    and cur.var(j, "phase") == HUNGRY
                ):
                    req_j = _req(prev, j)
                    if req_j is not None and req_j.lt(req_k):
                        violations.append(
                            FcfsViolation(j, req_j, k, req_k, start + i)
                        )
    return violations


# ---------------------------------------------------------------------------
# Aggregate verdict
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TmeSpecReport:
    """TME Spec verdict over (a suffix of) a trace."""

    start: int
    trace_length: int
    me1: tuple[int, ...]
    me2: tuple[Me2Report, ...]
    me3: tuple[FcfsViolation, ...]

    def holds(self, liveness_grace: int = 0, check_fcfs: bool = True) -> bool:
        """Does TME Spec hold on the checked window?"""
        if self.me1:
            return False
        if check_fcfs and self.me3:
            return False
        return all(r.satisfied(liveness_grace) for r in self.me2)

    def summary(self) -> str:
        """One-line report for logs and benches."""
        worst_pending = max((r.pending_age for r in self.me2), default=0)
        return (
            f"ME1 violations: {len(self.me1)}; "
            f"ME3 violations: {len(self.me3)}; "
            f"CS entries: {sum(r.entries for r in self.me2)}; "
            f"oldest open hunger: {worst_pending} steps"
        )


def check_tme_spec(trace: Trace, start: int = 0) -> TmeSpecReport:
    """Evaluate ME1/ME2/ME3 on ``trace.states[start:]``."""
    states = trace.states
    return TmeSpecReport(
        start=start,
        trace_length=len(states),
        me1=tuple(i + start for i in me1_violations(states[start:])),
        me2=tuple(me2_reports(states, start)),
        me3=tuple(me3_violations(states, start)),
    )
