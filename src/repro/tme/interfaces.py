"""The Lspec variable interface -- and its graybox enforcement.

Every TME implementation in this package (Ricart-Agrawala, Lamport, and the
negative-control token ring) exposes the *specification variables* of Lspec
(Section 3.2) under fixed names:

===========  ==============================================================
``phase``    ``"t"`` / ``"h"`` / ``"e"`` -- thinking, hungry, eating
             (the paper's structural variable ``state.j``)
``lc``       the logical clock counter (``ts:j = Timestamp(lc, j)``)
``req``      ``REQ_j`` -- the request lower bound (a Timestamp)
``req_of``   ``j.REQ_k`` for each peer ``k`` (a tuple-map pid -> Timestamp)
``received`` ``received(j.REQ_k)`` for each peer (tuple-map pid -> bool)
===========  ==============================================================

Implementations may keep any *additional* private variables (RA's deferred
set is derived; Lamport keeps ``queue`` and ``grant``).  The graybox wrapper
is only allowed to touch the table above: :class:`GrayboxView` enforces this
at runtime, so "the wrapper uses only the specification" (Section 4) is a
checked property of the code, not a comment.

Maps are stored as sorted tuples of pairs so that process snapshots stay
hashable (see :meth:`repro.runtime.process.ProcessRuntime.snapshot`).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.clocks.timestamps import Timestamp
from repro.dsl.guards import LocalView

LSPEC_VARIABLES = ("phase", "lc", "req", "req_of", "received")

THINKING, HUNGRY, EATING = "t", "h", "e"
PHASES = (THINKING, HUNGRY, EATING)

REQUEST, REPLY, RELEASE = "request", "reply", "release"


def tmap(mapping: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Freeze a dict into a sorted, hashable tuple-map."""
    return tuple(sorted(mapping.items()))


def tmap_get(frozen: tuple[tuple[str, Any], ...], key: str) -> Any:
    """Look up one key in a tuple-map (KeyError if absent)."""
    for k, v in frozen:
        if k == key:
            return v
    raise KeyError(key)


def tmap_set(
    frozen: tuple[tuple[str, Any], ...], key: str, value: Any
) -> tuple[tuple[str, Any], ...]:
    """A copy of the tuple-map with one existing key rebound."""
    if all(k != key for k, _v in frozen):
        raise KeyError(key)
    return tuple(sorted((k, value if k == key else v) for k, v in frozen))


def tmap_as_dict(frozen: tuple[tuple[str, Any], ...]) -> dict[str, Any]:
    """Thaw a tuple-map back into a plain dict."""
    return dict(frozen)


def initial_lspec_vars(pid: str, all_pids: tuple[str, ...]) -> dict[str, Any]:
    """The paper's Init: ``t.j``, ``ts:j = 0``, ``REQ_j = 0``, all copies 0.

    The zero timestamp of a copy carries the *owner's* pid so the ``lt``
    tie-break behaves exactly as the paper's totally ordered domain.
    """
    peers = tuple(k for k in all_pids if k != pid)
    return {
        "phase": THINKING,
        "lc": 0,
        "req": Timestamp(0, pid),
        "req_of": tmap({k: Timestamp(0, k) for k in peers}),
        "received": tmap({k: False for k in peers}),
    }


class GrayboxAccessError(AttributeError):
    """The wrapper touched a variable outside the Lspec interface."""


class GrayboxView:
    """A view restricted to the Lspec interface plus wrapper-owned state.

    Wrapper-owned variables are namespaced with a ``w_`` prefix; reading
    anything else (an implementation's private ``queue``, ``grant``,
    ``think_timer``, ...) raises :class:`GrayboxAccessError`.  ``accessed``
    records every read for the graybox-compliance tests.
    """

    _ALLOWED_META = ("_pid", "_peers", "_msg", "_sender")

    def __init__(self, view: LocalView):
        object.__setattr__(self, "_view", view)
        object.__setattr__(self, "accessed", set())

    def _check(self, name: str) -> None:
        allowed = (
            name in LSPEC_VARIABLES
            or name in self._ALLOWED_META
            or name.startswith("w_")
        )
        if not allowed:
            raise GrayboxAccessError(
                f"graybox wrapper may not read implementation variable "
                f"{name!r}; the Lspec interface is {LSPEC_VARIABLES}"
            )
        self.accessed.add(name)

    def __getattr__(self, name: str) -> Any:
        self._check(name)
        return getattr(self._view, name)

    def __getitem__(self, name: str) -> Any:
        self._check(name)
        return self._view[name]

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("views are read-only")


def lspec_snapshot_vars(variables: Mapping[str, Any]) -> dict[str, Any]:
    """Project a full variable valuation onto the Lspec interface."""
    return {k: variables[k] for k in LSPEC_VARIABLES if k in variables}


# ---------------------------------------------------------------------------
# Interface adapters (abstraction functions)
# ---------------------------------------------------------------------------
#
# An implementation *realizes* the Lspec variables.  RA_ME keeps them as
# explicit state; Lamport_ME instead DEFINES ``j.REQ_k`` in terms of its
# private ``grant`` and ``request_queue`` (Section 5.2: "We do not
# explicitly specify how j.REQ_k should be modified...").  An *adapter* is
# that published abstraction function: it maps the implementation's raw
# variables to the Lspec view.  Wrappers and monitors consume only adapter
# output -- they remain graybox; the adapter is part of the implementation's
# conformance claim (its proof of [C => Lspec] is stated through it).


class LspecView(dict):
    """Adapter output: exactly the Lspec variables, as plain values.

    ``req_of`` and ``received`` are ordinary dicts here (pid -> value).
    """

    REQUIRED = ("phase", "lc", "req", "req_of", "received")

    def __init__(self, **kwargs: Any):
        missing = [k for k in self.REQUIRED if k not in kwargs]
        if missing:
            raise ValueError(f"LspecView missing {missing}")
        stray = [k for k in kwargs if k not in self.REQUIRED]
        if stray:
            raise ValueError(
                f"LspecView may only carry the Lspec variables; got {stray}"
            )
        super().__init__(**kwargs)

    def __getattr__(self, name: str) -> Any:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None


Adapter = Any  # Callable[[Mapping[str, Any], str, tuple[str, ...]], LspecView]

_ADAPTERS: dict[str, Adapter] = {}


def register_adapter(program_name: str, adapter: Adapter) -> None:
    """Publish a program's Lspec interface realization by name."""
    _ADAPTERS[program_name] = adapter


def adapter_for(program_name: str) -> Adapter:
    """The adapter registered for a program; defaults to the explicit-
    variables adapter."""
    return _ADAPTERS.get(program_name, explicit_adapter)


def explicit_adapter(
    variables: Mapping[str, Any], pid: str, peers: tuple[str, ...]
) -> LspecView:
    """Adapter for implementations that store Lspec variables directly
    (RA_ME, the token ring).  Tolerates corrupted values by substituting
    the Init defaults -- an arbitrary state must still *have* an abstract
    view."""
    req = variables.get("req")
    if not isinstance(req, Timestamp):
        req = Timestamp(0, pid)
    raw_req_of = dict(variables.get("req_of") or ())
    raw_received = dict(variables.get("received") or ())
    req_of = {
        k: (
            raw_req_of[k]
            if isinstance(raw_req_of.get(k), Timestamp)
            else Timestamp(0, k)
        )
        for k in peers
    }
    received = {k: bool(raw_received.get(k, False)) for k in peers}
    phase = variables.get("phase")
    if phase not in PHASES:
        phase = THINKING
    lc = variables.get("lc")
    if not isinstance(lc, int) or lc < 0:
        lc = 0
    return LspecView(
        phase=phase, lc=lc, req=req, req_of=req_of, received=received
    )
