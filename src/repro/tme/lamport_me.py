"""Lamport's mutual exclusion (Lamport_ME), Section 5.2 / Appendix A1.

Classic Lamport ME with the paper's **two modifications** that make it
everywhere-implement Lspec:

1. The ``Insert`` primitive keeps *at most one request per process* in
   ``request_queue.j`` -- a newly received request from ``k`` replaces any
   (possibly corrupted) older entry of ``k``.
2. After receiving replies from all other processes, ``j`` may enter the CS
   if its request is **equal to or less than** the request at the head of
   ``request_queue.j`` (rather than exactly at the head), so a corrupted
   queue cannot block an entitled process.  Operationally: no *other*
   process's queue entry is earlier than ``REQ_j``.

Variables beyond the Lspec interface: ``queue`` (the request queue, kept
sorted by ``lt``) and ``grant`` (per-peer reply-received flags).  Those are
*private*: the paper does not give Lamport_ME an explicit ``j.REQ_k``;
instead it publishes the abstraction (Section 5.2)::

    REQ_j lt j.REQ_k  ==  grant.j.k  /\\  (REQ_k is not ahead of REQ_j in
                                            request_queue.j)

:func:`lamport_adapter` realizes exactly this as the program's Lspec-
interface adapter: ``j.REQ_k`` is *derived* from ``grant`` and ``queue``.
The graybox wrapper consumes only the adapter's output, so it works for
Lamport_ME without ever seeing a queue or a grant bit.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.clocks.timestamps import Timestamp, bottom
from repro.dsl.guards import Effect, GuardedAction, LocalView, Send
from repro.dsl.program import ProcessProgram
from repro.tme.client import (
    ClientConfig,
    client_tick_actions,
    client_vars,
    may_release,
    on_release_updates,
    on_request_updates,
    wants_cs,
)
from repro.tme.interfaces import (
    EATING,
    HUNGRY,
    PHASES,
    RELEASE,
    REPLY,
    REQUEST,
    THINKING,
    LspecView,
    register_adapter,
    tmap,
    tmap_as_dict,
)

PROGRAM_NAME = "Lamport_ME"

Queue = tuple[Timestamp, ...]


def queue_insert(queue: Queue, entry: Timestamp) -> Queue:
    """Modification 1: insert keeping <= 1 entry per process, sorted by lt."""
    kept = [e for e in queue if isinstance(e, Timestamp) and e.pid != entry.pid]
    kept.append(entry)
    return tuple(sorted(kept))


def queue_remove_pid(queue: Queue, pid: str) -> Queue:
    """Drop every entry owned by ``pid`` (used on release/receive-release)."""
    return tuple(e for e in queue if not (isinstance(e, Timestamp) and e.pid == pid))


def blocking_entry(queue: Queue, req: Timestamp, pid: str) -> Timestamp | None:
    """The earliest *other-process* entry ahead of ``req``, if any."""
    earlier = [
        e
        for e in queue
        if isinstance(e, Timestamp) and e.pid != pid and e.lt(req)
    ]
    return min(earlier) if earlier else None


def _observe(lc: int, incoming: object, msg_clock: object) -> int:
    """Lamport clock merge on receive (see ricart_agrawala._observe: the
    piggybacked send-event clock, not just the payload, must be merged)."""
    seen = lc
    if isinstance(incoming, Timestamp):
        seen = max(seen, incoming.clock)
    if isinstance(msg_clock, int) and msg_clock >= 0:
        seen = max(seen, msg_clock)
    return seen + 1


def lamport_program(
    pid: str, all_pids: tuple[str, ...], client: ClientConfig
) -> ProcessProgram:
    """Build the Lamport_ME program for process ``pid``."""
    peers = tuple(k for k in all_pids if k != pid)

    def request_body(view: LocalView) -> Effect:
        lc = view.lc + 1
        req = Timestamp(lc, pid)
        updates = {
            "lc": lc,
            "req": req,
            "phase": HUNGRY,
            "queue": queue_insert(view.queue, req),
            **on_request_updates(view, client),
        }
        sends = tuple(Send(k, REQUEST, req) for k in peers)
        return Effect(updates, sends)

    def recv_request_body(view: LocalView) -> Effect:
        sender = view["_sender"]
        incoming = view["_msg"]
        lc = _observe(view.lc, incoming, view["_msg_clock"] if "_msg_clock" in view else None)
        updates: dict = {"lc": lc}
        if not isinstance(incoming, Timestamp):
            return Effect(updates)
        stamp = Timestamp(lc, pid)
        updates["queue"] = queue_insert(view.queue, incoming)
        if view.phase == THINKING:
            updates["req"] = stamp
        # Lamport replies to every request immediately (the paper's
        # received(j.REQ_k) flag is raised and lowered within this action).
        return Effect(updates, (Send(sender, REPLY, stamp),))

    def recv_reply_body(view: LocalView) -> Effect:
        sender = view["_sender"]
        incoming = view["_msg"]
        lc = _observe(view.lc, incoming, view["_msg_clock"] if "_msg_clock" in view else None)
        updates: dict = {"lc": lc}
        if isinstance(incoming, Timestamp):
            grant = tmap_as_dict(view.grant)
            grant[sender] = True
            updates["grant"] = tmap(grant)
        if view.phase == THINKING:
            updates["req"] = Timestamp(lc, pid)
        return Effect(updates)

    def recv_release_body(view: LocalView) -> Effect:
        sender = view["_sender"]
        incoming = view["_msg"]
        lc = _observe(view.lc, incoming, view["_msg_clock"] if "_msg_clock" in view else None)
        updates: dict = {"lc": lc, "queue": queue_remove_pid(view.queue, sender)}
        if view.phase == THINKING:
            updates["req"] = Timestamp(lc, pid)
        return Effect(updates)

    def grant_guard(view: LocalView) -> bool:
        if view.phase != HUNGRY or not isinstance(view.req, Timestamp):
            return False
        grant = tmap_as_dict(view.grant)
        if not all(grant.get(k, False) for k in peers):
            return False
        return blocking_entry(view.queue, view.req, pid) is None

    def grant_body(view: LocalView) -> Effect:
        return Effect({"lc": view.lc + 1, "phase": EATING})

    def release_body(view: LocalView) -> Effect:
        lc = view.lc + 1
        stamp = Timestamp(lc, pid)
        updates = {
            "lc": lc,
            "req": stamp,
            "phase": THINKING,
            "queue": queue_remove_pid(view.queue, pid),
            "grant": tmap({k: False for k in peers}),
            **on_release_updates(client),
        }
        sends = tuple(Send(k, RELEASE, stamp) for k in peers)
        return Effect(updates, sends)

    initial = {
        "phase": THINKING,
        "lc": 0,
        "req": Timestamp(0, pid),
        "queue": (),
        "grant": tmap({k: False for k in peers}),
        **client_vars(client),
    }
    return ProcessProgram(
        PROGRAM_NAME,
        initial,
        actions=(
            GuardedAction("lamport:request", wants_cs, request_body),
            GuardedAction("lamport:grant", grant_guard, grant_body),
            GuardedAction("lamport:release", may_release, release_body),
            *client_tick_actions(client),
        ),
        receive_actions=(
            GuardedAction(
                "lamport:recv-request",
                lambda _view: True,
                recv_request_body,
                message_kind=REQUEST,
            ),
            GuardedAction(
                "lamport:recv-reply",
                lambda _view: True,
                recv_reply_body,
                message_kind=REPLY,
            ),
            GuardedAction(
                "lamport:recv-release",
                lambda _view: True,
                recv_release_body,
                message_kind=RELEASE,
            ),
        ),
    )


def lamport_adapter(
    variables: Mapping[str, Any], pid: str, peers: tuple[str, ...]
) -> LspecView:
    """The published abstraction of Section 5.2 (see module docstring).

    The derived ``j.REQ_k`` only needs to stand in the right ``lt`` relation
    to ``REQ_j``; we materialize it as:

    * no grant from ``k``                      -> ``bottom(k)``
      (no confirmed information: strictly below every possible ``REQ_j``);
    * ``k`` granted, but ``k``'s queue entry is ahead of ``REQ_j``
      -> that entry (an earlier request we know about);
    * ``k`` granted and not ahead              -> a timestamp just above
      ``REQ_j`` (all that matters is ``REQ_j lt j.REQ_k``).
    """
    req = variables.get("req")
    if not isinstance(req, Timestamp):
        req = Timestamp(0, pid)
    phase = variables.get("phase")
    if phase not in PHASES:
        phase = THINKING
    lc = variables.get("lc")
    if not isinstance(lc, int) or lc < 0:
        lc = 0
    queue = variables.get("queue") or ()
    grant = dict(variables.get("grant") or ())
    req_of: dict[str, Timestamp] = {}
    for k in peers:
        if not grant.get(k, False):
            # "no confirmed information": strictly below any REQ_j, so the
            # wrapper's suspect set X always includes an ungranted peer.
            req_of[k] = bottom(k)
            continue
        entry = next(
            (
                e
                for e in queue
                if isinstance(e, Timestamp) and e.pid == k and e.lt(req)
            ),
            None,
        )
        if entry is not None:
            req_of[k] = entry
        else:
            req_of[k] = Timestamp(req.clock + 1, k)
    received = {k: False for k in peers}
    return LspecView(phase=phase, lc=lc, req=req, req_of=req_of, received=received)


register_adapter(PROGRAM_NAME, lamport_adapter)


def lamport_programs(
    all_pids: tuple[str, ...], client: ClientConfig | None = None
) -> dict[str, ProcessProgram]:
    """Lamport_ME for every process."""
    cfg = client or ClientConfig()
    return {pid: lamport_program(pid, all_pids, cfg) for pid in all_pids}
