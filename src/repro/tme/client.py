"""The client side of TME: when to request and when to release the CS.

Client Spec (Section 3.2) constrains the *client* of a mutual exclusion
program: the structural phases cycle ``t -> h -> e -> t`` (Structural and
Flow Spec) and eating is transient (CS Spec: ``e.j |-> ~e.j``).

We realize clients with two countdown timers local to each process:

* ``think_timer`` -- while thinking, counts down; the Request-CS action is
  guarded on it reaching zero (``think_delay`` steps of thinking between
  CS sessions);
* ``eat_timer`` -- while eating, counts down; the Release-CS action is
  guarded on it reaching zero (``eat_delay`` steps inside the CS).

Delays are client *workload* parameters, not protocol parameters; the
benchmark harness sweeps them.  A ``think_delay`` of ``None`` makes the
process request only ``max_sessions`` times and then think forever -- useful
for finite workloads with a defined completion point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsl.guards import Effect, GuardedAction, LocalView
from repro.tme.interfaces import EATING, THINKING


@dataclass(frozen=True)
class ClientConfig:
    """Workload shape for one process's client."""

    think_delay: int = 2
    eat_delay: int = 1
    max_sessions: int | None = None

    def __post_init__(self) -> None:
        if self.think_delay < 0 or self.eat_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.max_sessions is not None and self.max_sessions < 0:
            raise ValueError("max_sessions must be non-negative")


def client_vars(config: ClientConfig) -> dict[str, int]:
    """Initial client bookkeeping variables for a process."""
    return {
        "think_timer": config.think_delay,
        "eat_timer": config.eat_delay,
        "sessions_left": (
            -1 if config.max_sessions is None else config.max_sessions
        ),
    }


def wants_cs(view: LocalView) -> bool:
    """May this process issue a request now?  (Guard fragment for the
    implementations' Request-CS actions.)"""
    return (
        view.phase == THINKING
        and view.think_timer <= 0
        and view.sessions_left != 0
    )


def may_release(view: LocalView) -> bool:
    """Guard fragment for Release-CS: eating and done with the CS work."""
    return view.phase == EATING and view.eat_timer <= 0


def on_request_updates(view: LocalView, config: ClientConfig) -> dict[str, int]:
    """Client bookkeeping performed by a Request-CS action."""
    left = view.sessions_left
    return {"sessions_left": left - 1 if left > 0 else left}


def on_release_updates(config: ClientConfig) -> dict[str, int]:
    """Client bookkeeping performed by a Release-CS action."""
    return {"think_timer": config.think_delay, "eat_timer": config.eat_delay}


def client_tick_actions(config: ClientConfig) -> tuple[GuardedAction, ...]:
    """The two countdown actions (internal, scheduler-driven)."""

    def think_tick_guard(view: LocalView) -> bool:
        return view.phase == THINKING and view.think_timer > 0

    def think_tick(view: LocalView) -> Effect:
        return Effect({"think_timer": view.think_timer - 1})

    def eat_tick_guard(view: LocalView) -> bool:
        return view.phase == EATING and view.eat_timer > 0

    def eat_tick(view: LocalView) -> Effect:
        return Effect({"eat_timer": view.eat_timer - 1})

    return (
        GuardedAction("client:think-tick", think_tick_guard, think_tick),
        GuardedAction("client:eat-tick", eat_tick_guard, eat_tick),
    )
