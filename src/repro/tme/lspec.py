"""Lspec (Section 3.2): every clause as a runtime monitor over traces.

The nine clauses::

    Client Spec      Structural Spec, Flow Spec, CS Spec
    Program Spec     Request Spec, Reply Spec, CS Entry Spec, CS Release Spec
    Environment Spec Timestamp Spec, Communication Spec

*Everywhere implementation* is a property of an implementation's own
transitions, not of the states faults dump it into.  The monitors therefore
judge only **program steps**: a transition taken at a step where the fault
injector struck is the environment's doing and is skipped (the fault-free
runs of E8/E9 contain no such steps, so there nothing is skipped).

Liveness clauses (CS Spec, the send obligations of Request/Reply Spec, CS
Entry Spec) use finite-trace semantics: a violated run shows an obligation
*pending* at trace end; callers apply a grace horizon
(:meth:`LspecReport.ok`).

Monitors read the implementation's *published Lspec view* through its
adapter (:func:`repro.tme.interfaces.adapter_for`) -- the same graybox
boundary the wrapper uses -- except the Structural/Flow clauses, which by
definition speak about the raw phase variable.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.clocks.happened_before import check_timestamp_spec
from repro.clocks.timestamps import Timestamp
from repro.dsl.program import ProcessProgram
from repro.runtime.trace import Trace
from repro.tme.interfaces import (
    EATING,
    HUNGRY,
    PHASES,
    REPLY,
    REQUEST,
    THINKING,
    Adapter,
    LspecView,
    adapter_for,
)

CLAUSES = (
    "structural",
    "flow",
    "cs",
    "request",
    "reply",
    "cs_entry",
    "cs_release",
    "timestamp",
    "communication",
)


@dataclass(frozen=True)
class Violation:
    """A definite (safety) breach of one clause at one step."""

    clause: str
    pid: str | None
    index: int
    detail: str


@dataclass(frozen=True)
class Pending:
    """A liveness obligation still open at trace end."""

    clause: str
    pid: str | None
    since: int
    detail: str


@dataclass
class ClauseReport:
    """Verdict for a single Lspec clause."""

    clause: str
    violations: list[Violation] = field(default_factory=list)
    pending: list[Pending] = field(default_factory=list)
    checked: int = 0

    def ok(self, trace_length: int, grace: int = 0) -> bool:
        """No violations and no obligation older than ``grace``."""
        if self.violations:
            return False
        return all(
            trace_length - 1 - p.since <= grace for p in self.pending
        )


@dataclass
class LspecReport:
    """Per-clause verdicts for one trace."""

    clauses: dict[str, ClauseReport]
    trace_length: int

    def ok(self, grace: int = 0) -> bool:
        """Every clause passes under the grace horizon."""
        return all(
            rep.ok(self.trace_length, grace) for rep in self.clauses.values()
        )

    def failing_clauses(self, grace: int = 0) -> list[str]:
        """Names of clauses that do not pass."""
        return [
            name
            for name, rep in self.clauses.items()
            if not rep.ok(self.trace_length, grace)
        ]

    def total_violations(self) -> int:
        """Sum of definite violations across all clauses."""
        return sum(len(rep.violations) for rep in self.clauses.values())

    def summary(self) -> str:
        """Compact per-clause status line."""
        parts = []
        for name in CLAUSES:
            rep = self.clauses[name]
            mark = "ok"
            if rep.violations:
                mark = f"{len(rep.violations)} violations"
            elif rep.pending:
                mark = f"{len(rep.pending)} pending"
            parts.append(f"{name}={mark}")
        return ", ".join(parts)


def adapters_of(programs: Mapping[str, ProcessProgram]) -> dict[str, Adapter]:
    """The registered Lspec adapter for each process's program."""
    return {pid: adapter_for(prog.name) for pid, prog in programs.items()}


class LspecChecker:
    """Evaluates all Lspec clauses on one trace.

    ``adapters`` maps pid -> the implementation's Lspec adapter;
    ``start`` restricts checking to the suffix ``states[start:]`` (used to
    judge the fault-free tail of a faulty run).
    """

    def __init__(
        self,
        trace: Trace,
        adapters: Mapping[str, Adapter],
        start: int = 0,
    ):
        self.trace = trace
        self.adapters = dict(adapters)
        self.start = start
        self.pids = trace.states[0].pids() if trace.states else ()
        self.peers = {
            pid: tuple(p for p in self.pids if p != pid) for pid in self.pids
        }
        self._views: list[dict[str, LspecView]] = [
            {
                pid: self.adapters[pid](
                    state.process_vars(pid), pid, self.peers[pid]
                )
                for pid in self.pids
            }
            for state in trace.states
        ]

    # -- helpers --------------------------------------------------------------

    def _transitions(self):
        """Yield (i, step, pre_state, post_state) for non-fault program
        steps in the checked window.  ``steps[i]`` transforms ``states[i]``
        into ``states[i+1]``."""
        for i, step in enumerate(self.trace.steps):
            if i < self.start or i + 1 >= len(self.trace.states):
                continue
            if step.faults:
                continue
            yield i, step, self.trace.states[i], self.trace.states[i + 1]

    def view(self, index: int, pid: str) -> LspecView:
        """The adapter-derived Lspec view of ``pid`` at state ``index``."""
        return self._views[index][pid]

    def _raw_phase(self, index: int, pid: str):
        return self.trace.states[index].var(pid, "phase")

    # -- Client Spec ------------------------------------------------------------

    def check_structural(self) -> ClauseReport:
        """Every program step leaves the acting process in a valid phase
        (exactly one of t/h/e -- encoded as the single ``phase`` variable)."""
        rep = ClauseReport("structural")
        for i, step, _pre, post in self._transitions():
            rep.checked += 1
            if step.pid is None:
                continue
            phase = post.var(step.pid, "phase")
            if phase not in PHASES:
                rep.violations.append(
                    Violation(
                        "structural", step.pid, i + 1, f"phase={phase!r}"
                    )
                )
        return rep

    _FLOW = {
        THINKING: {THINKING, HUNGRY},
        HUNGRY: {HUNGRY, EATING},
        EATING: {EATING, THINKING},
    }

    def check_flow(self) -> ClauseReport:
        """Flow Spec: t unless h, h unless e, e unless t -- on the acting
        process's phase (a corrupted pre-phase leaves the step
        unconstrained: the program may recover to anything valid)."""
        rep = ClauseReport("flow")
        for i, step, pre, post in self._transitions():
            if step.pid is None:
                continue
            rep.checked += 1
            before = pre.var(step.pid, "phase")
            after = post.var(step.pid, "phase")
            if before in self._FLOW and after in PHASES:
                if after not in self._FLOW[before]:
                    rep.violations.append(
                        Violation(
                            "flow", step.pid, i + 1, f"{before} -> {after}"
                        )
                    )
        return rep

    def check_cs(self) -> ClauseReport:
        """CS Spec: ``e.j |-> ~e.j`` (eating is transient; client duty)."""
        rep = ClauseReport("cs")
        for pid in self.pids:
            since: int | None = None
            for i in range(self.start, len(self.trace.states)):
                phase = self._raw_phase(i, pid)
                if phase == EATING:
                    if since is None:
                        since = i
                else:
                    since = None
            if since is not None:
                rep.pending.append(
                    Pending("cs", pid, since, "still eating at trace end")
                )
        return rep

    # -- Program Spec ----------------------------------------------------------

    def check_request(self) -> ClauseReport:
        """Request Spec: while hungry REQ_j is unchanged, and becoming
        hungry obliges a request send to every peer."""
        rep = ClauseReport("request")
        # safety: REQ frozen across hungry-to-hungry program steps
        for i, step, _pre, _post in self._transitions():
            if step.pid is None:
                continue
            pre_v = self.view(i, step.pid)
            post_v = self.view(i + 1, step.pid)
            if pre_v.phase == HUNGRY and post_v.phase == HUNGRY:
                rep.checked += 1
                if pre_v.req != post_v.req:
                    rep.violations.append(
                        Violation(
                            "request",
                            step.pid,
                            i + 1,
                            f"REQ changed while hungry: {pre_v.req} -> {post_v.req}",
                        )
                    )
        # liveness: request onset => send(REQ_j) to every peer, eventually
        send_index: dict[tuple[str, str], list[int]] = {}
        for i, step in enumerate(self.trace.steps):
            if step.pid is None:
                continue
            for kind, receiver in step.sends:
                if kind == REQUEST:
                    send_index.setdefault((step.pid, receiver), []).append(i)
        for i, step, _pre, _post in self._transitions():
            if step.pid is None:
                continue
            pre_v = self.view(i, step.pid)
            post_v = self.view(i + 1, step.pid)
            if pre_v.phase != HUNGRY and post_v.phase == HUNGRY:
                for k in self.peers[step.pid]:
                    sends = send_index.get((step.pid, k), [])
                    if not any(s >= i for s in sends):
                        rep.pending.append(
                            Pending(
                                "request",
                                step.pid,
                                i,
                                f"no request sent to {k} after onset",
                            )
                        )
        return rep

    def check_reply(self) -> ClauseReport:
        """Reply Spec: receiving an *earlier* request obliges a reply.

        Event-triggered: after a request from ``k`` is delivered to ``j``,
        if ``j``'s view shows ``received(j.REQ_k) /\\ j.REQ_k lt REQ_j``,
        a reply to ``k`` must follow (both RA and Lamport discharge it
        within the receive action itself)."""
        rep = ClauseReport("reply")
        reply_index: dict[tuple[str, str], list[int]] = {}
        for i, step in enumerate(self.trace.steps):
            if step.pid is None:
                continue
            for kind, receiver in step.sends:
                if kind == REPLY:
                    reply_index.setdefault((step.pid, receiver), []).append(i)
        for i, step, _pre, _post in self._transitions():
            if step.kind != "deliver" or step.delivered_kind != REQUEST:
                continue
            j, k = step.pid, step.delivered_from
            if j is None or k is None:
                continue
            rep.checked += 1
            post_v = self.view(i + 1, j)
            if post_v.received.get(k) and post_v.req_of[k].lt(post_v.req):
                replies = reply_index.get((j, k), [])
                if not any(r >= i for r in replies):
                    rep.pending.append(
                        Pending(
                            "reply",
                            j,
                            i,
                            f"earlier request from {k} never answered",
                        )
                    )
        return rep

    def check_cs_entry(self) -> ClauseReport:
        """CS Entry Spec: (safety) entering the CS requires
        ``forall k : REQ_j lt j.REQ_k``; (liveness) a hungry process whose
        view satisfies that condition eventually eats."""
        rep = ClauseReport("cs_entry")
        for i, step, _pre, _post in self._transitions():
            if step.pid is None:
                continue
            pre_v = self.view(i, step.pid)
            post_v = self.view(i + 1, step.pid)
            if pre_v.phase == HUNGRY and post_v.phase == EATING:
                rep.checked += 1
                blocked = [
                    k
                    for k in self.peers[step.pid]
                    if not pre_v.req.lt(pre_v.req_of[k])
                ]
                if blocked:
                    rep.violations.append(
                        Violation(
                            "cs_entry",
                            step.pid,
                            i + 1,
                            f"entered CS while blocked by {blocked}",
                        )
                    )
        # liveness
        for pid in self.pids:
            since: int | None = None
            for i in range(self.start, len(self.trace.states)):
                v = self.view(i, pid)
                if v.phase == EATING:
                    since = None
                    continue
                enabled = v.phase == HUNGRY and all(
                    v.req.lt(v.req_of[k]) for k in self.peers[pid]
                )
                if enabled and since is None:
                    since = i
            if since is not None:
                rep.pending.append(
                    Pending(
                        "cs_entry",
                        pid,
                        since,
                        "entry condition held, CS never entered",
                    )
                )
        return rep

    def check_cs_release(self) -> ClauseReport:
        """CS Release Spec: any program *event* (clock- or phase-changing
        step) of ``j`` that results in thinking sets
        ``REQ_j = ts:j`` (the timestamp of the most current event)."""
        rep = ClauseReport("cs_release")
        for i, step, pre, post in self._transitions():
            if step.pid is None:
                continue
            pid = step.pid
            lc_before = pre.var(pid, "lc")
            lc_after = post.var(pid, "lc")
            phase_after = post.var(pid, "phase")
            changed = lc_before != lc_after or pre.var(pid, "phase") != phase_after
            if phase_after == THINKING and changed:
                rep.checked += 1
                req_after = post.var(pid, "req")
                expected = (
                    Timestamp(lc_after, pid)
                    if isinstance(lc_after, int) and lc_after >= 0
                    else None
                )
                if expected is None or req_after != expected:
                    rep.violations.append(
                        Violation(
                            "cs_release",
                            pid,
                            i + 1,
                            f"thinking with REQ={req_after!r}, ts:j={expected!r}",
                        )
                    )
        return rep

    # -- Environment Spec --------------------------------------------------------

    def check_timestamp(self) -> ClauseReport:
        """Timestamp Spec: totally ordered domain (by construction of
        :class:`Timestamp`), and ``e hb f => ts:e < ts:f`` over the events
        of the checked window."""
        rep = ClauseReport("timestamp")
        window_events = [
            e
            for e in self.trace.events
            if e.clock_event
            and e.step_index is not None
            and e.step_index >= self.start
        ]
        rep.checked = len(window_events)
        for violation in check_timestamp_spec(window_events, self.pids):
            rep.violations.append(
                Violation(
                    "timestamp",
                    violation.later.pid,
                    violation.later.step_index or 0,
                    violation.describe(),
                )
            )
        return rep

    def check_communication(self) -> ClauseReport:
        """Communication Spec: channels behave FIFO -- across every program
        step each channel changes only by one head removal and/or tail
        appends."""
        rep = ClauseReport("communication")
        for i, _step, pre, post in self._transitions():
            for (src, dst), before in pre.channels:
                after = post.channel_contents(src, dst)
                rep.checked += 1
                if not _fifo_step(before, after):
                    rep.violations.append(
                        Violation(
                            "communication",
                            None,
                            i + 1,
                            f"channel {src}->{dst} mutated non-FIFO",
                        )
                    )
        return rep

    # -- aggregate ---------------------------------------------------------------

    def check_all(self) -> LspecReport:
        """Evaluate every clause and bundle the verdicts."""
        clauses = {
            "structural": self.check_structural(),
            "flow": self.check_flow(),
            "cs": self.check_cs(),
            "request": self.check_request(),
            "reply": self.check_reply(),
            "cs_entry": self.check_cs_entry(),
            "cs_release": self.check_cs_release(),
            "timestamp": self.check_timestamp(),
            "communication": self.check_communication(),
        }
        return LspecReport(clauses, len(self.trace.states))


def _fifo_step(before: tuple, after: tuple) -> bool:
    for drop in (0, 1):
        if drop > len(before):
            continue
        remaining = before[drop:]
        if after[: len(remaining)] == remaining:
            return True
    return False


def check_lspec(
    trace: Trace,
    programs: Mapping[str, ProcessProgram],
    start: int = 0,
) -> LspecReport:
    """Evaluate every Lspec clause on ``trace.states[start:]``."""
    return LspecChecker(trace, adapters_of(programs), start).check_all()
