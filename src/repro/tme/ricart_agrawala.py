"""Ricart-Agrawala mutual exclusion (RA_ME), Section 5.1.

The program exactly follows the paper's guarded commands:

* **Request CS** (``t.j``, client wants CS): stamp a fresh timestamp,
  ``REQ_j := lc:j``, become hungry, send a timestamped request to every
  other process.
* **receive-request** from ``k`` carrying ``REQ_k``: record
  ``j.REQ_k := REQ_k`` and ``received(j.REQ_k) := true``; refresh
  ``REQ_j := lc:j`` if thinking (CS Release Spec); if the incoming request
  is *earlier* than our own (``j.REQ_k lt REQ_j``) reply immediately with
  our current ``REQ_j`` and clear the received flag -- otherwise the sender
  stays in the (derived) *deferred set*.
* **receive-reply** from ``k``: record the reply value in ``j.REQ_k``
  (a reply carries the replier's current ``REQ_k`` -- the Reply Spec's
  ``send(REQ_k, k, j)`` -- so the copy is always a sound bound; for a
  fresh request the awaited replies all exceed ``REQ_j``: "REQ_j is always
  less-than the reply from k"); refresh ``REQ_j`` if thinking.
* **Grant CS** (CS Entry Spec made operational):
  ``h.j /\\ (forall k : REQ_j lt j.REQ_k) -> e.j``.
* **Release CS** (``e.j``, client done): send a freshly stamped reply to
  every process in the deferred set, reset all received flags, set
  ``REQ_j := lc:j`` and think.

The deferred set is *derived* (the paper defines it in an always-section)::

    deferred_set.j = { k : received(j.REQ_k) /\\ REQ_j lt j.REQ_k }

so it never exists as mutable state that faults could corrupt separately.
"""

from __future__ import annotations

from repro.clocks.timestamps import Timestamp
from repro.dsl.guards import Effect, GuardedAction, LocalView, Send
from repro.dsl.program import ProcessProgram
from repro.tme.client import (
    ClientConfig,
    client_tick_actions,
    client_vars,
    may_release,
    on_release_updates,
    on_request_updates,
    wants_cs,
)
from repro.tme.interfaces import (
    EATING,
    HUNGRY,
    REPLY,
    REQUEST,
    THINKING,
    initial_lspec_vars,
    tmap_as_dict,
    tmap_set,
)

PROGRAM_NAME = "RA_ME"


def deferred_set(view: LocalView) -> list[str]:
    """The always-section: peers with a received, later request."""
    received = tmap_as_dict(view.received)
    req_of = tmap_as_dict(view.req_of)
    req = view.req
    if not isinstance(req, Timestamp):
        return []
    return [
        k
        for k in sorted(received)
        if received[k]
        and isinstance(req_of.get(k), Timestamp)
        and req.lt(req_of[k])
    ]


def _observe(lc: int, incoming: object, msg_clock: object) -> int:
    """Lamport clock merge on receive.

    The clock update uses the *send event's* clock piggybacked on the
    message (``msg_clock``): message payloads such as replies carry REQ
    values that may be older than the send event, and merging only the
    payload would break ``send hb receive => ts(send) < ts(receive)``.
    Corrupted frames (no trustworthy clock) still tick the local clock.
    """
    seen = lc
    if isinstance(incoming, Timestamp):
        seen = max(seen, incoming.clock)
    if isinstance(msg_clock, int) and msg_clock >= 0:
        seen = max(seen, msg_clock)
    return seen + 1


def ra_program(pid: str, all_pids: tuple[str, ...], client: ClientConfig) -> ProcessProgram:
    """Build the RA_ME program for process ``pid``."""
    peers = tuple(k for k in all_pids if k != pid)

    def request_body(view: LocalView) -> Effect:
        lc = view.lc + 1
        req = Timestamp(lc, pid)
        updates = {
            "lc": lc,
            "req": req,
            "phase": HUNGRY,
            **on_request_updates(view, client),
        }
        sends = tuple(Send(k, REQUEST, req) for k in peers)
        return Effect(updates, sends)

    def recv_request_body(view: LocalView) -> Effect:
        sender = view["_sender"]
        incoming = view["_msg"]
        lc = _observe(view.lc, incoming, view["_msg_clock"] if "_msg_clock" in view else None)
        updates: dict = {"lc": lc}
        sends: tuple[Send, ...] = ()
        if not isinstance(incoming, Timestamp):
            # Corrupted request: no usable timestamp; consume it.  The
            # sender's wrapper will retransmit a well-formed one.
            return Effect(updates)
        req_of = tmap_set(view.req_of, sender, incoming)
        received = tmap_set(view.received, sender, True)
        req = view.req
        if view.phase == THINKING or not isinstance(req, Timestamp):
            req = Timestamp(lc, pid)  # CS Release Spec: track current event
        if incoming.lt(req):
            # Earlier request: reply immediately (Reply Spec).  The reply
            # carries REQ_j -- the paper's send(REQ_j, j, k) -- NOT the raw
            # clock: a hungry replier's pending request is its true REQ
            # lower bound, and echoing the clock instead would let a
            # duplicated (wrapper-retransmission- or fault-induced) stale
            # reply overwrite the receiver's copy with a value ABOVE the
            # replier's real request, violating the invariant
            # (j.REQ_k = REQ_k \/ j.REQ_k lt REQ_k) that the mutual
            # exclusion proof (Theorem A.4) rests on.
            sends = (Send(sender, REPLY, req),)
            received = tmap_set(received, sender, False)
        updates.update({"req_of": req_of, "received": received, "req": req})
        return Effect(updates, sends)

    def recv_reply_body(view: LocalView) -> Effect:
        sender = view["_sender"]
        incoming = view["_msg"]
        lc = _observe(view.lc, incoming, view["_msg_clock"] if "_msg_clock" in view else None)
        updates: dict = {"lc": lc}
        if isinstance(incoming, Timestamp):
            updates["req_of"] = tmap_set(view.req_of, sender, incoming)
        if view.phase == THINKING:
            updates["req"] = Timestamp(lc, pid)
        return Effect(updates)

    def grant_guard(view: LocalView) -> bool:
        if view.phase != HUNGRY:
            return False
        req = view.req
        if not isinstance(req, Timestamp):
            return False
        req_of = tmap_as_dict(view.req_of)
        return all(
            isinstance(req_of.get(k), Timestamp) and req.lt(req_of[k])
            for k in peers
        )

    def grant_body(view: LocalView) -> Effect:
        lc = view.lc + 1
        return Effect({"lc": lc, "phase": EATING})

    def release_guard(view: LocalView) -> bool:
        return may_release(view)

    def release_body(view: LocalView) -> Effect:
        lc = view.lc + 1
        stamp = Timestamp(lc, pid)
        sends = tuple(Send(k, REPLY, stamp) for k in deferred_set(view))
        received = tmap_set_all_false(view.received)
        updates = {
            "lc": lc,
            "req": stamp,
            "phase": THINKING,
            "received": received,
            **on_release_updates(client),
        }
        return Effect(updates, sends)

    initial = {**initial_lspec_vars(pid, all_pids), **client_vars(client)}
    return ProcessProgram(
        PROGRAM_NAME,
        initial,
        actions=(
            GuardedAction("ra:request", wants_cs, request_body),
            GuardedAction("ra:grant", grant_guard, grant_body),
            GuardedAction("ra:release", release_guard, release_body),
            *client_tick_actions(client),
        ),
        receive_actions=(
            GuardedAction(
                "ra:recv-request",
                lambda _view: True,
                recv_request_body,
                message_kind=REQUEST,
            ),
            GuardedAction(
                "ra:recv-reply",
                lambda _view: True,
                recv_reply_body,
                message_kind=REPLY,
            ),
        ),
    )


def tmap_set_all_false(
    frozen: tuple[tuple[str, object], ...]
) -> tuple[tuple[str, bool], ...]:
    """Release CS: ``(forall k :: received(j.REQ_k) := false)``."""
    return tuple((k, False) for k, _v in frozen)


def ra_programs(
    all_pids: tuple[str, ...], client: ClientConfig | None = None
) -> dict[str, ProcessProgram]:
    """RA_ME for every process (the paper's ``C = (box i :: C_i)``)."""
    cfg = client or ClientConfig()
    return {pid: ra_program(pid, all_pids, cfg) for pid in all_pids}
