"""Token-ring mutual exclusion: the *negative control* for graybox reuse.

The paper's guarantee (Theorem 8) is conditional: W stabilizes every system
that **everywhere implements Lspec**.  A mutual exclusion program that does
*not* implement Lspec gets no such guarantee -- wrapping it with W is type-
correct but useless.  ``TokenRing_ME`` is exactly such a program:

* it satisfies ME1 and ME2 from proper initial states (a single token
  circulates; the holder may eat), but not ME3 (service order is ring
  order, not timestamp order), and
* it ignores the Lspec variables entirely: no requests, no replies, no
  ``REQ_j`` discipline (the Lspec interface variables exist but stay at
  their Init values).

``tokens`` is a count, and receiving a token adds to it -- duplicated
tokens therefore never merge: they circulate (and violate mutual exclusion)
forever, and a lost token deadlocks the ring forever.  That is the classic
non-stabilizing token ring.

After a transient fault that duplicates (or drops) the token, the system
violates mutual exclusion forever (or deadlocks forever); W's request
retransmissions are ignored, so ``TokenRing_ME box W`` is **not**
stabilizing.  The reuse benchmark (E6) shows this row red while the RA and
Lamport rows are green -- the wrapper's guarantee is exactly as wide as the
paper claims, no wider.
"""

from __future__ import annotations

from repro.dsl.guards import Effect, GuardedAction, LocalView, Send
from repro.dsl.program import ProcessProgram
from repro.tme.client import (
    ClientConfig,
    client_tick_actions,
    client_vars,
    may_release,
    on_release_updates,
    on_request_updates,
    wants_cs,
)
from repro.tme.interfaces import EATING, HUNGRY, THINKING, initial_lspec_vars


def _count(value: object) -> int:
    """Corruption-tolerant token count."""
    return value if isinstance(value, int) and value >= 0 else 0

PROGRAM_NAME = "TokenRing_ME"
TOKEN = "token"


def ring_successor(pid: str, all_pids: tuple[str, ...]) -> str:
    """The next process around the (sorted) ring."""
    ordered = sorted(all_pids)
    return ordered[(ordered.index(pid) + 1) % len(ordered)]


def token_ring_program(
    pid: str, all_pids: tuple[str, ...], client: ClientConfig
) -> ProcessProgram:
    """Build the token-ring program for ``pid``; the lexically first process
    holds the token initially."""
    nxt = ring_successor(pid, all_pids)
    has_token_initially = pid == min(all_pids)

    def request_body(view: LocalView) -> Effect:
        return Effect({"phase": HUNGRY, **on_request_updates(view, client)})

    def grant_guard(view: LocalView) -> bool:
        return view.phase == HUNGRY and _count(view.tokens) >= 1

    def grant_body(view: LocalView) -> Effect:
        return Effect({"phase": EATING})

    def release_body(view: LocalView) -> Effect:
        updates = {
            "phase": THINKING,
            "tokens": _count(view.tokens) - 1,
            **on_release_updates(client),
        }
        return Effect(updates, (Send(nxt, TOKEN, True),))

    def pass_guard(view: LocalView) -> bool:
        # A thinking holder passes a token along so others can eat.
        return view.phase == THINKING and _count(view.tokens) >= 1

    def pass_body(view: LocalView) -> Effect:
        return Effect(
            {"tokens": _count(view.tokens) - 1}, (Send(nxt, TOKEN, True),)
        )

    def recv_token_body(view: LocalView) -> Effect:
        # Counts, not booleans: a second token is NOT absorbed.
        return Effect({"tokens": _count(view.tokens) + 1})

    initial = {
        **initial_lspec_vars(pid, all_pids),
        **client_vars(client),
        "tokens": 1 if has_token_initially else 0,
    }
    return ProcessProgram(
        PROGRAM_NAME,
        initial,
        actions=(
            GuardedAction("ring:request", wants_cs, request_body),
            GuardedAction("ring:grant", grant_guard, grant_body),
            GuardedAction("ring:release", may_release, release_body),
            GuardedAction("ring:pass", pass_guard, pass_body),
            *client_tick_actions(client),
        ),
        receive_actions=(
            GuardedAction(
                "ring:recv-token",
                lambda _view: True,
                recv_token_body,
                message_kind=TOKEN,
            ),
        ),
    )


def token_ring_programs(
    all_pids: tuple[str, ...], client: ClientConfig | None = None
) -> dict[str, ProcessProgram]:
    """The token ring for every process (negative control)."""
    cfg = client or ClientConfig()
    return {pid: token_ring_program(pid, all_pids, cfg) for pid in all_pids}
