"""TME scenarios, scramblers, and the simulation factory.

This module bundles everything an experiment needs to stand up a TME
system:

* :func:`build_simulation` -- RA / Lamport / token-ring, optionally wrapped,
  over ``n`` processes with a seeded scheduler;
* :func:`scramble_tme_state` -- the domain-respecting transient-corruption
  scrambler (the paper's state space is typed: a corrupted ``REQ_j`` is an
  arbitrary *timestamp*, not an arbitrary bit pattern -- arbitrary bytes
  belong to *message* corruption, where receivers discard garbage);
* :func:`tme_message_corrupter` / :func:`garbage_channel_filler` -- message
  faults;
* :func:`standard_fault_campaign` -- the E2 fault burst (loss + duplication
  + corruption + state corruption in a step window, then silence);
* :func:`deadlock_overrides` -- the paper's Section-4 deadlock: both
  processes hungry, both request messages lost, mutual information stale.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.clocks.timestamps import Timestamp
from repro.dsl.program import ProcessProgram
from repro.faults.injector import Composite, FaultInjector, Windowed
from repro.faults.message_faults import (
    MessageCorruption,
    MessageDuplication,
    MessageLoss,
)
from repro.faults.state_faults import StateCorruption
from repro.runtime.messages import Message
from repro.runtime.scheduler import RandomScheduler, Scheduler
from repro.runtime.simulator import Simulator
from repro.tme.client import ClientConfig
from repro.tme.interfaces import (
    HUNGRY,
    PHASES,
    RELEASE,
    REPLY,
    REQUEST,
    tmap,
)
from repro.tme.lamport_me import lamport_programs
from repro.tme.ra_counting import ra_counting_programs
from repro.tme.ricart_agrawala import ra_programs
from repro.tme.token_ring import token_ring_programs
from repro.tme.wrapper import WrapperConfig, wrap_system

if TYPE_CHECKING:
    from repro.runtime.process import ProcessRuntime

ALGORITHMS = ("ra", "ra-count", "lamport", "token")

_BUILDERS = {
    "ra": ra_programs,
    "ra-count": ra_counting_programs,
    "lamport": lamport_programs,
    "token": token_ring_programs,
}


def pids_for(n: int) -> tuple[str, ...]:
    """Canonical process ids ``p0..p{n-1}``."""
    if n < 2:
        raise ValueError("TME needs at least two processes")
    return tuple(f"p{i}" for i in range(n))


def tme_programs(
    algorithm: str,
    n: int,
    client: ClientConfig | None = None,
    wrapper: WrapperConfig | None = None,
) -> dict[str, ProcessProgram]:
    """Programs for an ``n``-process TME system, optionally wrapped with W."""
    try:
        builder = _BUILDERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        ) from None
    programs = builder(pids_for(n), client)
    if wrapper is not None:
        programs = wrap_system(programs, wrapper)
    return programs


def build_simulation(
    algorithm: str = "ra",
    n: int = 3,
    seed: int = 0,
    client: ClientConfig | None = None,
    wrapper: WrapperConfig | None = None,
    fault_hook: FaultInjector | None = None,
    scheduler: Scheduler | None = None,
    deliver_bias: float = 1.0,
    overrides: dict[str, dict] | None = None,
    record_states: bool = True,
) -> Simulator:
    """Stand up a ready-to-run TME simulation (seeded, reproducible)."""
    programs = tme_programs(algorithm, n, client, wrapper)
    sched = scheduler or RandomScheduler(
        random.Random(seed), deliver_bias=deliver_bias
    )
    return Simulator(
        programs,
        sched,
        fault_hook=fault_hook,
        overrides=overrides,
        record_states=record_states,
    )


# ---------------------------------------------------------------------------
# State scrambling (transient corruption within the typed state space)
# ---------------------------------------------------------------------------

_MAX_CLOCK = 40


def _random_ts(rng: random.Random, pid: str) -> Timestamp:
    return Timestamp(rng.randint(0, _MAX_CLOCK), pid)


def scramble_tme_state(
    proc: "ProcessRuntime", rng: random.Random
) -> dict[str, object]:
    """Corrupt a random non-empty subset of the process's protocol state.

    Client workload counters are left alone: Client Spec is assumed
    everywhere-implemented (Section 3.2), so the client's bookkeeping is not
    part of the corruptible protocol state.
    """
    pid = proc.pid
    peers = proc.peers
    variables = proc.variables
    candidates: dict[str, object] = {
        "phase": rng.choice(PHASES),
        "lc": rng.randint(0, _MAX_CLOCK),
        "req": _random_ts(rng, pid),
    }
    if "req_of" in variables:
        candidates["req_of"] = tmap({k: _random_ts(rng, k) for k in peers})
    if "received" in variables:
        candidates["received"] = tmap(
            {k: rng.random() < 0.5 for k in peers}
        )
    if "queue" in variables:
        entries = [
            _random_ts(rng, k) for k in peers if rng.random() < 0.5
        ]
        candidates["queue"] = tuple(sorted(entries))
    if "grant" in variables:
        candidates["grant"] = tmap({k: rng.random() < 0.5 for k in peers})
    if "tokens" in variables:
        candidates["tokens"] = rng.randint(0, 2)
    for set_var in ("awaiting", "deferred"):
        if set_var in variables:
            candidates[set_var] = frozenset(
                k for k in peers if rng.random() < 0.5
            )
    if "w_timer" in variables:
        candidates["w_timer"] = rng.randint(0, 3 * _MAX_CLOCK)
    names = sorted(candidates)
    chosen = rng.sample(names, rng.randint(1, len(names)))
    return {name: candidates[name] for name in chosen}


# ---------------------------------------------------------------------------
# Message corruption / garbage injection
# ---------------------------------------------------------------------------

_TME_KINDS = (REQUEST, REPLY, RELEASE)


def tme_message_corrupter(
    msg: Message, rng: random.Random, new_uid: int
) -> Message:
    """Corrupt a TME message: scramble its timestamp, flip its kind, or turn
    the payload to unparseable garbage."""
    roll = rng.random()
    if roll < 0.5:
        return msg.corrupted(new_uid, payload=_random_ts(rng, msg.sender))
    if roll < 0.8:
        return msg.corrupted(new_uid, kind=rng.choice(_TME_KINDS))
    return msg.corrupted(new_uid, payload="<garbage>")


def garbage_channel_filler(
    src: str, dst: str, rng: random.Random, max_messages: int = 2
):
    """Improper channel initialization: preload forged TME messages."""
    count = rng.randint(0, max_messages)
    out = []
    for i in range(count):
        out.append(
            Message(
                uid=-(1000 + i),
                kind=rng.choice(_TME_KINDS),
                sender=src,
                receiver=dst,
                payload=_random_ts(rng, src),
                send_event_uid=None,
            )
        )
    return out


# ---------------------------------------------------------------------------
# The standard E2 campaign: a finite burst of everything
# ---------------------------------------------------------------------------


def standard_fault_campaign(
    seed: int,
    start: int,
    stop: int,
    loss: float = 0.15,
    duplication: float = 0.1,
    corruption: float = 0.1,
    state_corruption: float = 0.05,
) -> FaultInjector:
    """Loss + duplication + corruption + state corruption inside
    ``[start, stop)``; silence outside -- the paper's "finite number of
    faults" followed by the convergence phase."""
    rng = random.Random(seed)
    burst = Composite(
        [
            MessageLoss(rng, loss),
            MessageDuplication(rng, duplication),
            MessageCorruption(rng, corruption, tme_message_corrupter),
            StateCorruption(rng, state_corruption, scramble_tme_state),
        ]
    )
    return Windowed(burst, start, stop)


# ---------------------------------------------------------------------------
# The Section-4 deadlock scenario
# ---------------------------------------------------------------------------


def deadlock_overrides(algorithm: str, pids: tuple[str, str]) -> dict[str, dict]:
    """The paper's deadlock (Section 4): ``j`` and ``k`` both requested,
    both request messages were dropped, and each holds stale information
    about the other: ``j.REQ_k lt REQ_j  /\\  k.REQ_j lt REQ_k``.

    Returns the ``overrides`` mapping for :func:`build_simulation`; the
    channels start empty, so nothing in the unwrapped system can ever fire.
    """
    j, k = pids
    req_j = Timestamp(5, j)
    req_k = Timestamp(4, k)
    if algorithm == "ra":
        return {
            j: {
                "phase": HUNGRY,
                "lc": 5,
                "req": req_j,
                "req_of": tmap({k: Timestamp(3, k)}),
                "received": tmap({k: False}),
            },
            k: {
                "phase": HUNGRY,
                "lc": 4,
                "req": req_k,
                "req_of": tmap({j: Timestamp(2, j)}),
                "received": tmap({j: False}),
            },
        }
    if algorithm == "lamport":
        return {
            j: {
                "phase": HUNGRY,
                "lc": 5,
                "req": req_j,
                "queue": (req_j,),
                "grant": tmap({k: False}),
            },
            k: {
                "phase": HUNGRY,
                "lc": 4,
                "req": req_k,
                "queue": (req_k,),
                "grant": tmap({j: False}),
            },
        }
    raise ValueError(f"no deadlock scenario for algorithm {algorithm!r}")
