"""The box operator (system composition by fusion closure).

Section 2.1: *C box W is the system whose set of computations is the smallest
fusion closed set that contains the computations of C as well as the
computations of W, and whose initial states are the common initial states of
C and W.*

For transition systems the smallest fusion-closed superset of the walks of C
and the walks of W is the set of walks of the *union* transition relation
(fusing two walks at a shared state corresponds to switching which relation
supplies the next step; iterating fusion yields arbitrary interleavings of C
steps and W steps).  Hence box composition is transition-relation union with
initial-state intersection -- exactly UNITY program union, which is the
composition the paper's wrappers use.

States present in only one component keep that component's transitions (the
other component has no computations there to contribute).
"""

from __future__ import annotations

from repro.core.system import StateLike, TransitionSystem


def box(left: TransitionSystem, right: TransitionSystem, name: str | None = None) -> TransitionSystem:
    """Compose two systems with the paper's box operator.

    The components must agree on a state universe in the sense that the
    composed relation stays total -- this is automatic since each component
    is total on its own states.
    """
    transitions: dict[StateLike, set[StateLike]] = {}
    for system in (left, right):
        for s, succs in system.transitions.items():
            transitions.setdefault(s, set()).update(succs)
    if left.initial and right.initial:
        initial = left.initial & right.initial
    else:
        # A component with no declared initial states (a pure wrapper)
        # imposes no initial constraint.
        initial = left.initial | right.initial
    return TransitionSystem(
        name or f"({left.name} [] {right.name})", transitions, initial
    )


def box_all(*systems: TransitionSystem, name: str | None = None) -> TransitionSystem:
    """Left fold of :func:`box` over several systems (box is associative and
    commutative on transition systems)."""
    if not systems:
        raise ValueError("box_all needs at least one system")
    composed = systems[0]
    for nxt in systems[1:]:
        composed = box(composed, nxt)
    if name is not None:
        composed = composed.renamed(name)
    return composed
