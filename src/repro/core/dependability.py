"""Graybox design of other dependability properties (Section 6).

The concluding remarks state: *"the approach is applicable for the design of
other dependability properties, for example, masking fault-tolerance and
fail-safe fault-tolerance ... our observation that local everywhere
specifications are amenable to graybox stabilization is also true for
graybox masking and graybox fail-safe."*

This module makes those claims executable on finite systems.  A *fault
class* is a set of extra transitions the environment may take (finitely
often).  Following the standard taxonomy (and the paper's parenthetical
definitions):

* **masking** tolerant: computations *in the presence of the faults*
  implement the specification -- faults never produce an observable
  deviation;
* **fail-safe** tolerant: computations in the presence of faults implement
  the *safety* part of the specification (liveness may be lost);
* **nonmasking** (stabilizing) tolerant: after the faults stop, every
  computation converges back to the specification.

For transition systems these are decidable; the graybox composition
theorems (the analogues of Theorem 1) transfer verbatim and are checked by
:func:`check_graybox_masking` / :func:`check_graybox_failsafe` -- the
property-based tests fuzz them the same way Theorem 1 is fuzzed.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.box import box
from repro.core.relations import (
    RelationReport,
    everywhere_implements,
    implements,
    legitimate_states,
)
from repro.core.system import StateLike, Transition, TransitionSystem
from repro.core.theorems import TheoremVerdict, _details


@dataclass(frozen=True)
class FaultClass:
    """A set of environment transitions (state perturbations).

    ``transitions`` may move the system anywhere inside the state space;
    the target states must exist in the system the faults are applied to.
    """

    name: str
    transitions: frozenset[Transition]

    def __init__(self, name: str, transitions: Iterable[Transition]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "transitions", frozenset(transitions))

    def __len__(self) -> int:
        return len(self.transitions)


def with_faults(system: TransitionSystem, faults: FaultClass) -> TransitionSystem:
    """The *fault span* transition system: program or fault at each step."""
    merged: dict[StateLike, set[StateLike]] = {
        s: set(succs) for s, succs in system.transitions.items()
    }
    for src, dst in faults.transitions:
        if src not in merged:
            raise ValueError(f"fault source {src!r} outside the state space")
        if dst not in merged:
            raise ValueError(f"fault target {dst!r} outside the state space")
        merged[src].add(dst)
    return TransitionSystem(
        f"({system.name} + {faults.name})", merged, system.initial
    )


def fault_span(system: TransitionSystem, faults: FaultClass) -> frozenset[StateLike]:
    """States reachable from the initial states when faults may strike."""
    return with_faults(system, faults).reachable()


# ---------------------------------------------------------------------------
# The three tolerance properties
# ---------------------------------------------------------------------------


def is_masking_tolerant(
    concrete: TransitionSystem,
    abstract: TransitionSystem,
    faults: FaultClass,
) -> RelationReport:
    """Masking: even *with* fault steps interleaved, every computation from
    the initial states is a computation of the specification.

    (Fault transitions themselves must be invisible, i.e. also allowed by
    the specification -- that is what "masking" means.)
    """
    faulty = with_faults(concrete, faults)
    reachable = faulty.reachable()
    bad = frozenset(
        (s, t)
        for s, t in faulty.edges()
        if s in reachable and not abstract.has_transition(s, t)
    )
    holds = not bad and concrete.initial <= abstract.initial
    reason = ""
    if bad:
        reason = f"{len(bad)} fault-span transitions leave the specification"
    elif not holds:
        reason = "initial states not shared with the specification"
    return RelationReport(
        "masking-tolerant-to",
        concrete.name,
        abstract.name,
        holds,
        reason=reason,
        witness_transitions=bad,
    )


def safety_violating_transitions(
    concrete: TransitionSystem,
    abstract: TransitionSystem,
    domain: frozenset[StateLike],
) -> frozenset[Transition]:
    """Program transitions from ``domain`` that step outside the
    specification (the finite-system notion of a safety violation: a
    prefix that is not a prefix of any specification computation)."""
    return frozenset(
        (s, t)
        for s, t in concrete.edges()
        if s in domain and not abstract.has_transition(s, t)
    )


def is_failsafe_tolerant(
    concrete: TransitionSystem,
    abstract: TransitionSystem,
    faults: FaultClass,
) -> RelationReport:
    """Fail-safe: in the presence of faults the *program's own* steps never
    violate safety -- from every fault-reachable state, every program
    transition stays inside the specification.  Liveness is not required
    (the system may sit still forever after a fault)."""
    span = fault_span(concrete, faults)
    bad = safety_violating_transitions(concrete, abstract, span)
    return RelationReport(
        "failsafe-tolerant-to",
        concrete.name,
        abstract.name,
        not bad,
        reason=(
            f"{len(bad)} program transitions violate safety inside the "
            f"fault span"
            if bad
            else ""
        ),
        witness_transitions=bad,
    )


def is_nonmasking_tolerant(
    concrete: TransitionSystem,
    abstract: TransitionSystem,
    faults: FaultClass,
) -> RelationReport:
    """Nonmasking (stabilizing): once the (finitely many) faults stop,
    every computation from the fault span converges to a legitimate
    suffix of the specification.

    Decided like :func:`repro.core.relations.is_stabilizing_to`, but
    quantifying only over fault-span states (the states faults can
    actually produce) rather than the whole space.
    """
    span = fault_span(concrete, faults)
    legit = legitimate_states(abstract)
    good = frozenset(
        (s, t)
        for s, t in concrete.edges()
        if s in legit and t in legit and abstract.has_transition(s, t)
    )
    # A violating computation = a cycle of program transitions, reachable
    # from the span without faults, containing a non-good transition.
    reachable_from_span = concrete.reachable_from(span & concrete.states)
    sub = concrete.restricted_to(reachable_from_span, name="span-closure")
    bad_cycle_edges = frozenset(
        e for e in sub.edges_on_cycles() if e not in good
    )
    return RelationReport(
        "nonmasking-tolerant-to",
        concrete.name,
        abstract.name,
        not bad_cycle_edges,
        reason=(
            f"{len(bad_cycle_edges)} cycle transitions inside the fault "
            f"span never converge"
            if bad_cycle_edges
            else ""
        ),
        witness_transitions=bad_cycle_edges,
    )


# ---------------------------------------------------------------------------
# Graybox composition theorems for masking / fail-safe (Section 6 claims)
# ---------------------------------------------------------------------------


def check_graybox_masking(
    concrete: TransitionSystem,
    abstract: TransitionSystem,
    wrapper_impl: TransitionSystem,
    wrapper_spec: TransitionSystem,
    faults: FaultClass,
) -> TheoremVerdict:
    """Graybox masking: if ``[C => A]``, ``[C => A]init``, ``[W' => W]``,
    and ``A box W`` is masking tolerant to F, then ``C box W'`` is masking
    tolerant to F.

    (Unlike Theorem 1, masking constrains behaviour *from the initial
    states*, so the init-level refinement premise is needed as well.)"""
    p0 = implements(concrete, abstract)
    p1 = everywhere_implements(concrete, abstract)
    p2 = everywhere_implements(wrapper_impl, wrapper_spec)
    p3 = is_masking_tolerant(box(abstract, wrapper_spec), abstract, faults)
    conclusion = is_masking_tolerant(
        box(concrete, wrapper_impl), abstract, faults
    )
    return TheoremVerdict(
        "Graybox masking",
        premises_hold=bool(p0 and p1 and p2 and p3),
        conclusion_holds=bool(conclusion),
        details=_details(p0, p1, p2, p3, conclusion),
    )


def check_graybox_failsafe(
    concrete: TransitionSystem,
    abstract: TransitionSystem,
    wrapper_impl: TransitionSystem,
    wrapper_spec: TransitionSystem,
    faults: FaultClass,
) -> TheoremVerdict:
    """Graybox fail-safe: if ``[C => A]``, ``[C => A]init``, ``[W' => W]``,
    and ``A box W`` is fail-safe tolerant to F, then ``C box W'`` is
    fail-safe tolerant to F."""
    p0 = implements(concrete, abstract)
    p1 = everywhere_implements(concrete, abstract)
    p2 = everywhere_implements(wrapper_impl, wrapper_spec)
    p3 = is_failsafe_tolerant(box(abstract, wrapper_spec), abstract, faults)
    conclusion = is_failsafe_tolerant(
        box(concrete, wrapper_impl), abstract, faults
    )
    return TheoremVerdict(
        "Graybox fail-safe",
        premises_hold=bool(p0 and p1 and p2 and p3),
        conclusion_holds=bool(conclusion),
        details=_details(p0, p1, p2, p3, conclusion),
    )
