"""Finite transition systems: the executable form of the paper's "system".

Section 2 defines::

    A *system* S is a set of (possibly infinite) sequences over Sigma, with
    at least one sequence starting from every state in Sigma, and a set of
    initial states chosen from Sigma.

and assumes computation sets are *fusion closed*.  A fusion-closed set of
sequences containing a sequence from every state is exactly the set of
infinite walks of a transition relation that is *total* (every state has at
least one successor).  :class:`TransitionSystem` is therefore a sound and
complete finite representation of the paper's systems, and all of Section 2's
relations (``implements``, ``everywhere implements``, ``stabilizing to``, the
box operator) become decidable graph problems -- see
:mod:`repro.core.relations` and :mod:`repro.core.box`.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.core import graph
from repro.core.computation import FinitePath, Lasso

StateLike = Hashable
Transition = tuple[StateLike, StateLike]


class SystemError_(ValueError):
    """Raised for malformed transition systems (non-total, bad initial set)."""


@dataclass(frozen=True)
class TransitionSystem:
    """A finite, total transition system with explicit initial states.

    Parameters
    ----------
    name:
        Human-readable label used in reports.
    transitions:
        Mapping from each state to its (non-empty) set of successors.  The
        keys define the state space; every successor must itself be a key
        (totality -- the paper requires a computation from *every* state).
    initial:
        The initial states, a subset of the state space.  May be empty for
        pure "wrapper" systems that are only ever box-composed.
    """

    name: str
    transitions: Mapping[StateLike, frozenset[StateLike]] = field(hash=False)
    initial: frozenset[StateLike]

    def __init__(
        self,
        name: str,
        transitions: Mapping[StateLike, Iterable[StateLike]],
        initial: Iterable[StateLike] = (),
    ):
        frozen: dict[StateLike, frozenset[StateLike]] = {
            s: frozenset(succs) for s, succs in transitions.items()
        }
        states = frozenset(frozen)
        for s, succs in frozen.items():
            if not succs:
                raise SystemError_(
                    f"{name}: state {s!r} has no successor; systems must "
                    "have a computation starting from every state"
                )
            stray = succs - states
            if stray:
                raise SystemError_(
                    f"{name}: successors {set(stray)!r} of state {s!r} are "
                    "not in the state space"
                )
        init = frozenset(initial)
        stray_init = init - states
        if stray_init:
            raise SystemError_(
                f"{name}: initial states {set(stray_init)!r} are not in the "
                "state space"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "transitions", frozen)
        object.__setattr__(self, "initial", init)

    # -- basic structure ----------------------------------------------------

    @property
    def states(self) -> frozenset[StateLike]:
        """The state space (the keys of the transition relation)."""
        return frozenset(self.transitions)

    def successors(self, state: StateLike) -> frozenset[StateLike]:
        """Successor set of one state (non-empty by totality)."""
        return self.transitions[state]

    def has_transition(self, source: StateLike, target: StateLike) -> bool:
        """Is (source, target) a transition?"""
        succs = self.transitions.get(source)
        return succs is not None and target in succs

    def edges(self) -> Iterator[Transition]:
        """Iterate over every transition as a (source, target) pair."""
        for s, succs in self.transitions.items():
            for t in succs:
                yield (s, t)

    def edge_set(self) -> frozenset[Transition]:
        """The transition relation as a frozen set of pairs."""
        return frozenset(self.edges())

    # -- reachability -------------------------------------------------------

    def reachable_from(self, sources: Iterable[StateLike]) -> frozenset[StateLike]:
        """All states reachable (in >= 0 steps) from ``sources``.

        Runs on the unified exploration engine (:mod:`repro.explore`);
        unknown sources raise :class:`KeyError` as always.
        """
        from repro.explore import DFS, TransitionSystemSpace, explore

        return explore(
            TransitionSystemSpace(self, sources), strategy=DFS
        ).visited

    def reachable(self) -> frozenset[StateLike]:
        """States reachable from the initial states (the "legitimate" part:
        every reachable state lies on some computation from an initial
        state, by totality)."""
        return self.reachable_from(self.initial)

    def restricted_to(self, states: Iterable[StateLike], name: str | None = None) -> "TransitionSystem":
        """The sub-system induced by ``states``.

        Raises :class:`SystemError_` if the restriction is not total (some
        kept state loses all successors).
        """
        keep = frozenset(states)
        trans = {
            s: succs & keep
            for s, succs in self.transitions.items()
            if s in keep
        }
        return TransitionSystem(
            name or f"{self.name}|restricted", trans, self.initial & keep
        )

    # -- computations -------------------------------------------------------

    def finite_paths_from(
        self, state: StateLike, length: int
    ) -> Iterator[FinitePath]:
        """Enumerate all finite paths of exactly ``length`` states starting
        at ``state`` (depth-first)."""
        if length < 1:
            raise ValueError("length must be >= 1")

        def extend(path: list[StateLike]) -> Iterator[FinitePath]:
            if len(path) == length:
                yield FinitePath(path)
                return
            for nxt in sorted(self.transitions[path[-1]], key=repr):
                path.append(nxt)
                yield from extend(path)
                path.pop()

        yield from extend([state])

    def random_walk(
        self, state: StateLike, length: int, rng: random.Random
    ) -> FinitePath:
        """A uniformly random walk of ``length`` states starting at
        ``state`` (successor chosen uniformly at each step)."""
        path = [state]
        while len(path) < length:
            path.append(rng.choice(sorted(self.transitions[path[-1]], key=repr)))
        return FinitePath(path)

    def is_path(self, path: FinitePath) -> bool:
        """Is ``path`` a walk of this system (prefix of a computation)?"""
        return all(
            s in self.transitions and t in self.transitions[s]
            for s, t in path.transitions()
        ) and path.first in self.transitions

    def is_lasso(self, lasso: Lasso) -> bool:
        """Is the lasso's unrolling a computation of this system?"""
        return all(self.has_transition(s, t) for s, t in lasso.transitions())

    def lassos_from(self, state: StateLike, max_states: int | None = None) -> Iterator[Lasso]:
        """Enumerate simple lassos (simple stem into a simple cycle) starting
        at ``state``.  Exhaustive for liveness checking on small systems:
        every violation of a lasso-checkable property occurs on a simple
        lasso."""
        limit = max_states if max_states is not None else len(self.transitions)

        def extend(path: list[StateLike], on_path: set[StateLike]) -> Iterator[Lasso]:
            last = path[-1]
            for nxt in sorted(self.transitions[last], key=repr):
                if nxt in on_path:
                    i = path.index(nxt)
                    yield Lasso(path[:i], path[i:])
                elif len(path) < limit:
                    path.append(nxt)
                    on_path.add(nxt)
                    yield from extend(path, on_path)
                    on_path.discard(nxt)
                    path.pop()

        yield from extend([state], {state})

    # -- graph analysis -----------------------------------------------------

    def strongly_connected_components(self) -> list[frozenset[StateLike]]:
        """Tarjan's algorithm (see :mod:`repro.core.graph`)."""
        return graph.strongly_connected_components(self.transitions)

    def edges_on_cycles(self) -> frozenset[Transition]:
        """The transitions that lie on some cycle.

        An edge lies on a cycle iff both endpoints are in the same strongly
        connected component (self-loops trivially qualify).  Used to decide
        stabilization: see :func:`repro.core.relations.is_stabilizing_to`.
        """
        scc_of = graph.condensation_index(self.transitions)
        return frozenset(
            (s, t) for s, t in self.edges() if scc_of[s] == scc_of[t]
        )

    # -- misc ---------------------------------------------------------------

    def renamed(self, name: str) -> "TransitionSystem":
        """The same system under a different display name."""
        return TransitionSystem(name, self.transitions, self.initial)

    def with_initial(self, initial: Iterable[StateLike]) -> "TransitionSystem":
        """The same transitions with a different initial set."""
        return TransitionSystem(self.name, self.transitions, initial)

    def __hash__(self) -> int:
        return hash((self.name, self.edge_set(), self.initial))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransitionSystem):
            return NotImplemented
        return (
            self.transitions == other.transitions and self.initial == other.initial
        )

    def __repr__(self) -> str:
        return (
            f"TransitionSystem({self.name!r}, |states|={len(self.transitions)}, "
            f"|edges|={sum(len(v) for v in self.transitions.values())}, "
            f"|initial|={len(self.initial)})"
        )


def chain_system(
    name: str, states: list[StateLike], initial: Iterable[StateLike]
) -> TransitionSystem:
    """A linear chain ``s0 -> s1 -> ... -> sN`` closed with a self-loop on the
    last state (the standard finite encoding of the paper's
    ``s0, s1, s2, s3, ...`` pictures)."""
    if not states:
        raise ValueError("need at least one state")
    transitions: dict[StateLike, set[StateLike]] = {
        s: {t} for s, t in zip(states, states[1:])
    }
    transitions[states[-1]] = {states[-1]}
    return TransitionSystem(name, transitions, initial)
