"""Figure 1 of the paper, as executable systems.

The figure shows a specification ``A`` and an implementation ``C`` over
states ``s0, s1, s2, s3, ...`` and ``s*``, with ``s0`` the initial state of
both.  Both have the single initial computation ``s0, s1, s2, s3, ...``,
hence ``[C => A]init``.  But ``"s*, s2, s3, ..."`` is a computation of A and
not of C.  With the transient fault ``F`` perturbing ``s0`` to ``s*``:
A recovers (its computation from ``s*`` rejoins the legitimate chain), while
C is stuck at ``s*`` forever.  Conclusion (the paper's):

    ``C implements A`` and ``A is stabilizing to A`` do **not** imply
    ``C is stabilizing to A``.

The infinite chain ``s3, s4, ...`` is closed into a self-loop on ``s3`` (the
standard finite encoding; all three properties are insensitive to it).
"""

from __future__ import annotations

from repro.core.system import TransitionSystem

S0, S1, S2, S3, S_STAR = "s0", "s1", "s2", "s3", "s*"


def figure1_A() -> TransitionSystem:
    """The specification A of Figure 1: the chain plus recovery ``s* -> s2``."""
    return TransitionSystem(
        "Figure1.A",
        {
            S0: {S1},
            S1: {S2},
            S2: {S3},
            S3: {S3},
            S_STAR: {S2},
        },
        initial={S0},
    )


def figure1_C() -> TransitionSystem:
    """The implementation C of Figure 1: the same chain, but ``s*`` is a
    trap (no recovery edge -- C must still *have* a computation from ``s*``,
    so it self-loops there)."""
    return TransitionSystem(
        "Figure1.C",
        {
            S0: {S1},
            S1: {S2},
            S2: {S3},
            S3: {S3},
            S_STAR: {S_STAR},
        },
        initial={S0},
    )


def fault_F(state: str) -> str:
    """The transient state-corruption fault of Figure 1: it perturbs the
    initial state ``s0`` to ``s*`` (identity elsewhere)."""
    return S_STAR if state == S0 else state


def render_counterexample(
    title: str,
    decisions: "list[str] | tuple[str, ...]",
    verdict: str,
    notes: "tuple[str, ...]" = (),
) -> str:
    """A counterexample as text: a titled, numbered decision list plus the
    verdict it witnesses.

    Figure 1 above is the paper's counterexample rendered as code; this is
    the campaign's rendered as text -- a minimal sequence of scheduler and
    fault decisions witnessing that a claimed property (here: convergence)
    does not hold.
    """
    width = len(str(len(decisions))) if decisions else 1
    lines = [f"counterexample: {title}", "-" * (16 + len(title))]
    if decisions:
        lines.extend(
            f"  {i:>{width}}. {decision}"
            for i, decision in enumerate(decisions, 1)
        )
    else:
        lines.append("  (no decisions: the failure needs no faults at all)")
    lines.append(f"verdict: {verdict}")
    lines.extend(f"note: {note}" for note in notes)
    return "\n".join(lines)
