"""Executable statements of the paper's composition lemmas and theorems.

The paper proves (Section 2.1):

* **Lemma 0**: ``[C => A] /\\ [W' => W]  =>  [(C box W') => (A box W)]``
* **Theorem 1**: if ``[C => A]``, ``A box W`` is stabilizing to ``A``, and
  ``[W' => W]``, then ``C box W'`` is stabilizing to ``A``.
* **Lemma 2 / Lemma 3 / Theorem 4**: the same, componentwise, for *local*
  everywhere specifications ``A = (box i :: A_i)``.

These are theorems -- they hold for *all* systems.  The functions below
check a given instance and return a structured verdict; the hypothesis-based
property tests (``tests/core/test_theorems_property.py``) fuzz them over
randomly generated systems, which would expose any unsoundness in our
encodings of ``box``, the refinement relations, or stabilization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.box import box, box_all
from repro.core.relations import (
    RelationReport,
    everywhere_implements,
    is_stabilizing_to,
)
from repro.core.system import StateLike, TransitionSystem


@dataclass(frozen=True)
class TheoremVerdict:
    """Result of checking one theorem instance.

    ``premises_hold``: all premises are satisfied by the instance.
    ``conclusion_holds``: the conclusion is satisfied.
    ``vacuous``: premises fail, so the instance says nothing.
    ``theorem_respected``: premises => conclusion on this instance (i.e. the
    instance is not a counterexample -- it never should be).
    """

    theorem: str
    premises_hold: bool
    conclusion_holds: bool
    details: tuple[str, ...] = ()

    @property
    def vacuous(self) -> bool:
        """Premises fail: the instance says nothing about the theorem."""
        return not self.premises_hold

    @property
    def theorem_respected(self) -> bool:
        """Not a counterexample (premises fail or conclusion holds)."""
        return (not self.premises_hold) or self.conclusion_holds

    def __bool__(self) -> bool:
        return self.theorem_respected


def _details(*reports: RelationReport) -> tuple[str, ...]:
    return tuple(r.describe() for r in reports)


def check_lemma0(
    concrete: TransitionSystem,
    abstract: TransitionSystem,
    wrapper_impl: TransitionSystem,
    wrapper_spec: TransitionSystem,
) -> TheoremVerdict:
    """Lemma 0: refinement is monotonic w.r.t. box composition."""
    p1 = everywhere_implements(concrete, abstract)
    p2 = everywhere_implements(wrapper_impl, wrapper_spec)
    conclusion = everywhere_implements(
        box(concrete, wrapper_impl), box(abstract, wrapper_spec)
    )
    return TheoremVerdict(
        "Lemma 0",
        premises_hold=bool(p1 and p2),
        conclusion_holds=bool(conclusion),
        details=_details(p1, p2, conclusion),
    )


def check_theorem1(
    concrete: TransitionSystem,
    abstract: TransitionSystem,
    wrapper_impl: TransitionSystem,
    wrapper_spec: TransitionSystem,
) -> TheoremVerdict:
    """Theorem 1 (stabilization via everywhere specifications)."""
    p1 = everywhere_implements(concrete, abstract)
    p2 = is_stabilizing_to(box(abstract, wrapper_spec), abstract)
    p3 = everywhere_implements(wrapper_impl, wrapper_spec)
    conclusion = is_stabilizing_to(box(concrete, wrapper_impl), abstract)
    return TheoremVerdict(
        "Theorem 1",
        premises_hold=bool(p1 and p2 and p3),
        conclusion_holds=bool(conclusion),
        details=_details(p1, p2, p3, conclusion),
    )


def check_lemma2(
    locals_concrete: list[TransitionSystem],
    locals_abstract: list[TransitionSystem],
) -> TheoremVerdict:
    """Lemma 2: componentwise everywhere-implementation lifts through box."""
    if len(locals_concrete) != len(locals_abstract):
        raise ValueError("component lists must have equal length")
    premises = [
        everywhere_implements(c, a)
        for c, a in zip(locals_concrete, locals_abstract)
    ]
    conclusion = everywhere_implements(
        box_all(*locals_concrete, name="C"), box_all(*locals_abstract, name="A")
    )
    return TheoremVerdict(
        "Lemma 2",
        premises_hold=all(bool(p) for p in premises),
        conclusion_holds=bool(conclusion),
        details=_details(*premises, conclusion),
    )


def check_theorem4(
    locals_concrete: list[TransitionSystem],
    locals_abstract: list[TransitionSystem],
    locals_wrapper_impl: list[TransitionSystem],
    locals_wrapper_spec: list[TransitionSystem],
) -> TheoremVerdict:
    """Theorem 4 (stabilization via local everywhere specifications)."""
    lengths = {
        len(locals_concrete),
        len(locals_abstract),
        len(locals_wrapper_impl),
        len(locals_wrapper_spec),
    }
    if len(lengths) != 1:
        raise ValueError("all component lists must have equal length")
    abstract = box_all(*locals_abstract, name="A")
    concrete = box_all(*locals_concrete, name="C")
    wrapper_spec = box_all(*locals_wrapper_spec, name="W")
    wrapper_impl = box_all(*locals_wrapper_impl, name="W'")
    premises = (
        [everywhere_implements(c, a) for c, a in zip(locals_concrete, locals_abstract)]
        + [
            everywhere_implements(wi, ws)
            for wi, ws in zip(locals_wrapper_impl, locals_wrapper_spec)
        ]
        + [is_stabilizing_to(box(abstract, wrapper_spec), abstract)]
    )
    conclusion = is_stabilizing_to(box(concrete, wrapper_impl), abstract)
    return TheoremVerdict(
        "Theorem 4",
        premises_hold=all(bool(p) for p in premises),
        conclusion_holds=bool(conclusion),
        details=_details(*premises, conclusion),
    )


# ---------------------------------------------------------------------------
# Random instance generation (for property-testing the theorems)
# ---------------------------------------------------------------------------


def random_system(
    rng: random.Random,
    n_states: int = 5,
    density: float = 0.4,
    name: str = "R",
    states: list[StateLike] | None = None,
) -> TransitionSystem:
    """A random total transition system over ``n_states`` states.

    Each ordered pair becomes an edge with probability ``density``; every
    state additionally receives one forced successor so the system is total.
    A random non-empty subset of states is initial.
    """
    universe: list[StateLike] = (
        states if states is not None else [f"q{i}" for i in range(n_states)]
    )
    transitions: dict[StateLike, set[StateLike]] = {s: set() for s in universe}
    for s in universe:
        for t in universe:
            if rng.random() < density:
                transitions[s].add(t)
        if not transitions[s]:
            transitions[s].add(rng.choice(universe))
    k = rng.randint(1, len(universe))
    initial = rng.sample(universe, k)
    return TransitionSystem(name, transitions, initial)


def random_subsystem(
    rng: random.Random, parent: TransitionSystem, name: str = "sub"
) -> TransitionSystem:
    """A random everywhere-refinement of ``parent``: keep every state but a
    random non-empty subset of each state's successors.  By construction the
    result everywhere-implements ``parent``."""
    transitions: dict[StateLike, set[StateLike]] = {}
    for s, succs in parent.transitions.items():
        ordered = sorted(succs, key=repr)
        k = rng.randint(1, len(ordered))
        transitions[s] = set(rng.sample(ordered, k))
    initial = list(parent.initial)
    if initial:
        kept = rng.sample(initial, rng.randint(1, len(initial)))
    else:
        kept = []
    return TransitionSystem(name, transitions, kept)
