"""Immutable program states.

The paper (Section 2) treats a *state* abstractly: a point in a state space
``Sigma``.  Most of the core layer is agnostic to what a state actually is --
any hashable value works as a state of a :class:`~repro.core.system.
TransitionSystem`.  For systems built from programs with named variables we
provide :class:`State`, an immutable, hashable mapping from variable names to
values, so that predicates can be written as plain functions over variable
valuations.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping
from typing import Any


class State(Mapping[str, Any]):
    """An immutable, hashable valuation of named variables.

    ``State`` behaves like a read-only ``dict`` and supports attribute-style
    access for identifier-shaped variable names::

        >>> s = State(x=1, hungry=True)
        >>> s["x"], s.hungry
        (1, True)
        >>> s.assoc(x=2)["x"]
        2

    Values must themselves be hashable so the state can be used as a graph
    node in :class:`~repro.core.system.TransitionSystem`.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: Mapping[str, Any] | None = None, **kwargs: Any):
        items: dict[str, Any] = dict(mapping) if mapping else {}
        items.update(kwargs)
        for name, value in items.items():
            if not isinstance(name, str):
                raise TypeError(f"variable names must be strings, got {name!r}")
            if not isinstance(value, Hashable):
                raise TypeError(
                    f"state values must be hashable; variable {name!r} has "
                    f"unhashable value {value!r}"
                )
        object.__setattr__(self, "_items", dict(sorted(items.items())))
        object.__setattr__(self, "_hash", None)

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self._items[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    # -- convenience --------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self._items[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("State is immutable; use .assoc() to derive a new state")

    def assoc(self, **updates: Any) -> "State":
        """Return a new state with ``updates`` applied."""
        merged = dict(self._items)
        merged.update(updates)
        return State(merged)

    def without(self, *names: str) -> "State":
        """Return a new state with the given variables removed."""
        return State({k: v for k, v in self._items.items() if k not in names})

    def project(self, *names: str) -> "State":
        """Return the sub-state containing only the given variables.

        Used to express *local* specifications: the local state of process
        ``i`` is the projection of the global state onto ``i``'s variables.
        """
        missing = [n for n in names if n not in self._items]
        if missing:
            raise KeyError(f"state has no variables {missing}")
        return State({n: self._items[n] for n in names})

    # -- identity -----------------------------------------------------------

    def __hash__(self) -> int:
        # Computed lazily: exploration interns states into packed blobs
        # and may never hash the original object at all.
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(tuple(self._items.items()))
            )
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, State):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._items.items())
        return f"State({inner})"
