"""The refinement and stabilization relations of Section 2.

All three relations of the paper are decided *exactly* on finite transition
systems (see :mod:`repro.core.system` for why transition systems faithfully
represent the paper's fusion-closed systems):

* ``[C => A]init``  (*C implements A*): every computation of C starting from
  an initial state of C is a computation of A starting from an initial state
  of A.
* ``[C => A]``      (*C everywhere implements A*): every computation of C is
  a computation of A.
* *C is stabilizing to A*: every computation of C has a suffix that is a
  suffix of some computation of A starting at an initial state of A.

For transition systems these reduce to graph conditions:

* ``[C => A]`` iff every state of C is a state of A and every transition of C
  is a transition of A (then every infinite C-walk is an infinite A-walk, and
  conversely a violating transition immediately yields a violating
  computation by totality).
* ``[C => A]init`` iff every initial state of C is an initial state of A and
  every transition of C *reachable from C's initial states* is a transition
  of A.
* *stabilizing*: a suffix of an A-init computation is precisely an infinite
  A-walk starting at a state reachable from A's initial states (fusion
  closure lets any such walk be glued onto an initial prefix).  Call a C
  transition *good* if it is an A transition between A-init-reachable
  states.  A computation of C stabilizes iff it eventually takes only good
  transitions.  In a finite graph, a computation taking non-good transitions
  infinitely often must traverse some cycle containing a non-good transition;
  conversely such a cycle yields a non-stabilizing computation.  Hence:
  *C is stabilizing to A iff no cycle of C contains a non-good transition.*
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import graph
from repro.core.system import StateLike, Transition, TransitionSystem


@dataclass(frozen=True)
class RelationReport:
    """Outcome of a relation check, with a machine-readable witness.

    ``holds`` is the verdict; when it is ``False``, ``witness_transitions``
    (and possibly ``witness_states``) identify why -- e.g. the C-transitions
    that are not A-transitions, or the cycle edges breaking stabilization.
    """

    relation: str
    left: str
    right: str
    holds: bool
    reason: str = ""
    witness_states: frozenset[StateLike] = field(default_factory=frozenset)
    witness_transitions: frozenset[Transition] = field(default_factory=frozenset)

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        """One-line human-readable verdict."""
        verdict = "HOLDS" if self.holds else "FAILS"
        text = f"{self.left} {self.relation} {self.right}: {verdict}"
        if self.reason:
            text += f" ({self.reason})"
        return text


def everywhere_implements(concrete: TransitionSystem, abstract: TransitionSystem) -> RelationReport:
    """Decide ``[C => A]``: every computation of C is a computation of A."""
    missing_states = concrete.states - abstract.states
    if missing_states:
        return RelationReport(
            "[=>]",
            concrete.name,
            abstract.name,
            False,
            reason=f"{len(missing_states)} C-states outside A's state space",
            witness_states=frozenset(missing_states),
        )
    bad = frozenset(
        (s, t) for s, t in concrete.edges() if not abstract.has_transition(s, t)
    )
    if bad:
        return RelationReport(
            "[=>]",
            concrete.name,
            abstract.name,
            False,
            reason=f"{len(bad)} C-transitions are not A-transitions",
            witness_transitions=bad,
        )
    return RelationReport("[=>]", concrete.name, abstract.name, True)


def implements(concrete: TransitionSystem, abstract: TransitionSystem) -> RelationReport:
    """Decide ``[C => A]init``: computations from C's initial states are
    computations of A from A's initial states."""
    bad_init = concrete.initial - abstract.initial
    if bad_init:
        return RelationReport(
            "[=>]init",
            concrete.name,
            abstract.name,
            False,
            reason="some initial states of C are not initial states of A",
            witness_states=frozenset(bad_init),
        )
    reachable = concrete.reachable()
    bad = frozenset(
        (s, t)
        for s, t in concrete.edges()
        if s in reachable and not abstract.has_transition(s, t)
    )
    if bad:
        return RelationReport(
            "[=>]init",
            concrete.name,
            abstract.name,
            False,
            reason=f"{len(bad)} init-reachable C-transitions not in A",
            witness_transitions=bad,
        )
    return RelationReport("[=>]init", concrete.name, abstract.name, True)


def legitimate_states(abstract: TransitionSystem) -> frozenset[StateLike]:
    """States on computations of A that start at an initial state of A.

    By totality, these are exactly the states reachable from A's initial
    states; any infinite A-walk from such a state is a suffix of an A-init
    computation (glue it onto a reaching prefix -- fusion closure)."""
    return abstract.reachable()


def good_transitions(
    concrete: TransitionSystem, abstract: TransitionSystem
) -> frozenset[Transition]:
    """C-transitions that are A-transitions between legitimate A-states."""
    legit = legitimate_states(abstract)
    return frozenset(
        (s, t)
        for s, t in concrete.edges()
        if s in legit and t in legit and abstract.has_transition(s, t)
    )


def is_stabilizing_to(
    concrete: TransitionSystem, abstract: TransitionSystem
) -> RelationReport:
    """Decide *C is stabilizing to A* (see module docstring for the graph
    characterisation)."""
    good = good_transitions(concrete, abstract)
    bad_cycle_edges = frozenset(
        e for e in concrete.edges_on_cycles() if e not in good
    )
    if bad_cycle_edges:
        return RelationReport(
            "stabilizing-to",
            concrete.name,
            abstract.name,
            False,
            reason=(
                f"{len(bad_cycle_edges)} transitions on cycles of C are not "
                "legitimate A-transitions; looping them forever yields a "
                "computation with no legitimate suffix"
            ),
            witness_transitions=bad_cycle_edges,
        )
    return RelationReport("stabilizing-to", concrete.name, abstract.name, True)


def is_stabilizing_to_fair(
    concrete: TransitionSystem,
    abstract: TransitionSystem,
    fair_edges: frozenset[Transition],
) -> RelationReport:
    """Stabilization under weak fairness toward ``fair_edges``.

    UNITY (the paper's specification language) executes actions under weak
    fairness: an action continuously enabled is eventually executed.  A
    computation is *fair* here if, whenever every state it visits from some
    point on has an outgoing edge in ``fair_edges``, it eventually takes
    one.  C is fair-stabilizing to A iff every fair computation has a
    legitimate A-suffix.

    Graph criterion: a violating fair computation exists iff some cycle of
    C contains a non-good transition, avoids ``fair_edges``, and passes
    through at least one state with no outgoing fair edge (otherwise
    looping it forever would be unfair).
    """
    good = good_transitions(concrete, abstract)
    fair_sources = {s for s, _t in fair_edges}
    # Cycles avoiding fair edges: restrict the edge set, then find cycles.
    # The restricted graph is not total (dead ends are fine for
    # repro.core.graph, unlike TransitionSystem).
    allowed = [e for e in concrete.edges() if e not in fair_edges]
    sub_adj: dict[StateLike, set[StateLike]] = {
        s: set() for s in concrete.transitions
    }
    for s, t in allowed:
        sub_adj[s].add(t)
    comp_of = graph.condensation_index(sub_adj)
    # The escape state must be in the SAME SCC as the bad edge; precompute
    # which components contain one instead of rescanning all states per
    # candidate edge.
    comps_with_escape = {
        comp_of[q] for q in concrete.transitions if q not in fair_sources
    }
    bad_fair_cycles = frozenset(
        (s, t)
        for s, t in allowed
        if comp_of[s] == comp_of[t]
        and (s, t) not in good
        and comp_of[s] in comps_with_escape
    )
    if bad_fair_cycles:
        return RelationReport(
            "fair-stabilizing-to",
            concrete.name,
            abstract.name,
            False,
            reason=(
                f"{len(bad_fair_cycles)} non-legitimate transitions lie on "
                "fair cycles (cycles that avoid the fair edges and visit a "
                "state where no fair edge is enabled)"
            ),
            witness_transitions=bad_fair_cycles,
        )
    return RelationReport(
        "fair-stabilizing-to", concrete.name, abstract.name, True
    )


def is_self_stabilizing(system: TransitionSystem) -> RelationReport:
    """Classic self-stabilization: the system is stabilizing to itself."""
    report = is_stabilizing_to(system, system)
    return RelationReport(
        "self-stabilizing",
        system.name,
        system.name,
        report.holds,
        reason=report.reason,
        witness_states=report.witness_states,
        witness_transitions=report.witness_transitions,
    )


def closure_and_convergence(
    system: TransitionSystem, invariant: frozenset[StateLike]
) -> tuple[bool, bool]:
    """The classical whitebox decomposition of self-stabilization.

    Returns ``(closed, converges)`` where *closed* means the invariant set is
    preserved by every transition from it, and *converges* means every
    computation from every state eventually reaches the invariant set
    (no cycle lies entirely outside it).

    Provided as the whitebox baseline that Section 1 argues against: it
    requires the full transition relation ("implementation"), whereas the
    graybox method needs only the specification.
    """
    closed = all(
        system.successors(s) <= invariant for s in invariant
    )
    outside = system.states - invariant
    converges = True
    if outside:
        # A cycle entirely outside the invariant set == a non-converging
        # run.  The induced subgraph may have dead ends; graph.has_cycle
        # accepts that.
        sub = {s: (system.successors(s) & outside) for s in outside}
        converges = not graph.has_cycle(sub)
    return closed, converges
