"""Shared graph algorithms over plain adjacency mappings.

Unlike :class:`~repro.core.system.TransitionSystem`, the graphs here need
not be total: a node may have no successors (``is_stabilizing_to_fair``
removes the fair edges before looking for cycles, which leaves dead ends),
and a successor that is not itself a key is treated as a leaf.

Traversal is deterministic: roots are taken in the adjacency mapping's own
iteration order and children in ``repr`` order, so component lists are
stable across runs (tests assert on them).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

Node = Hashable
Adjacency = Mapping[Node, Iterable[Node]]

_NO_SUCCESSORS: tuple[Node, ...] = ()


def strongly_connected_components(adjacency: Adjacency) -> list[frozenset[Node]]:
    """Tarjan's algorithm, iterative (safe for deep graphs).

    Components are returned in the order Tarjan completes them (every
    component after all components it can reach).
    """
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    result: list[frozenset[Node]] = []
    counter = 0

    for root in adjacency:
        if root in index:
            continue
        work = [
            (
                root,
                iter(sorted(adjacency.get(root, _NO_SUCCESSORS), key=repr)),
            )
        ]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append(
                        (
                            child,
                            iter(
                                sorted(
                                    adjacency.get(child, _NO_SUCCESSORS),
                                    key=repr,
                                )
                            ),
                        )
                    )
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[Node] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == node:
                        break
                result.append(frozenset(component))
    return result


def condensation_index(adjacency: Adjacency) -> dict[Node, int]:
    """Map every node to the index of its strongly connected component
    (indices follow :func:`strongly_connected_components` order)."""
    comp_of: dict[Node, int] = {}
    for i, comp in enumerate(strongly_connected_components(adjacency)):
        for node in comp:
            comp_of[node] = i
    return comp_of


def has_cycle(adjacency: Adjacency) -> bool:
    """Does the graph contain any cycle (including self-loops)?

    A cycle exists iff some strongly connected component has more than one
    node, or some node is its own successor.
    """
    for comp in strongly_connected_components(adjacency):
        if len(comp) > 1:
            return True
        (node,) = comp
        if node in adjacency.get(node, _NO_SUCCESSORS):
            return True
    return False
