"""UNITY temporal operators (Section 3.1) in two semantics.

The paper writes its specifications in UNITY [Chandy & Misra 1988]:

* ``p unless q`` -- if ``p /\\ ~q`` holds, the next state satisfies
  ``p \\/ q``;
* ``stable(p)``  -- ``p unless false``;
* ``q is invariant`` -- ``q`` holds initially and is stable;
* ``p |-> q`` (*leads to*) -- whenever ``p`` holds, ``q`` holds then or
  later;
* ``p ~-> q`` (*leads to always*, written ``,->`` in the paper) --
  ``(p |-> q) /\\ stable(q)``.

Two evaluation semantics are provided:

1. **Exact, over finite transition systems** (used by the core-layer theorem
   checks).  Safety operators inspect transitions.  ``leads_to`` is decided
   by the standard graph criterion: it fails iff from some reachable
   ``p /\\ ~q`` state there is an infinite walk avoiding ``q`` -- i.e. a
   cycle inside the ``~q`` region reachable from that state within ``~q``.
2. **Finite-trace, over recorded executions** (used by the runtime monitors
   in :mod:`repro.verification.monitor`).  Safety violations are definite.
   Liveness obligations still open at trace end are reported as *pending*
   rather than violated, with the index where the oldest obligation arose,
   so callers can apply a grace horizon.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.system import StateLike, TransitionSystem

Predicate = Callable[[StateLike], bool]


# ---------------------------------------------------------------------------
# Exact semantics over finite transition systems
# ---------------------------------------------------------------------------


def holds_unless(system: TransitionSystem, p: Predicate, q: Predicate) -> bool:
    """``p unless q`` over all transitions of the system (everywhere)."""
    for s, t in system.edges():
        if p(s) and not q(s) and not (p(t) or q(t)):
            return False
    return True


def holds_stable(system: TransitionSystem, p: Predicate) -> bool:
    """``stable(p)`` == ``p unless false``."""
    return holds_unless(system, p, lambda _s: False)


def holds_invariant(system: TransitionSystem, p: Predicate) -> bool:
    """``p is invariant``: holds at every initial state and is stable."""
    return all(p(s) for s in system.initial) and holds_stable(system, p)


def _can_avoid_forever(
    system: TransitionSystem, start: StateLike, q: Predicate
) -> bool:
    """Is there an infinite walk from ``start`` never satisfying ``q``?

    Equivalent to: within the subgraph of ``~q`` states, ``start`` can reach
    a cycle.  (``start`` itself must satisfy ``~q``.)
    """
    if q(start):
        return False
    not_q = {s for s in system.states if not q(s)}
    sub = {s: (system.successors(s) & not_q) for s in not_q}
    # DFS with colors; a back edge within the ~q subgraph = reachable cycle.
    color: dict[StateLike, int] = {}
    stack: list[tuple[StateLike, list[StateLike]]] = [
        (start, sorted(sub[start], key=repr))
    ]
    color[start] = 1
    while stack:
        node, succs = stack[-1]
        if succs:
            nxt = succs.pop()
            c = color.get(nxt, 0)
            if c == 1:
                return True
            if c == 0:
                color[nxt] = 1
                stack.append((nxt, sorted(sub[nxt], key=repr)))
        else:
            color[node] = 2
            stack.pop()
    return False


def holds_leads_to(
    system: TransitionSystem,
    p: Predicate,
    q: Predicate,
    from_anywhere: bool = True,
) -> bool:
    """``p |-> q``: on every computation, every ``p`` state is followed
    (inclusively) by a ``q`` state.

    With ``from_anywhere=True`` (matching *everywhere* specifications) all
    states are considered computation starts; otherwise only states reachable
    from the initial states are.
    """
    domain = system.states if from_anywhere else system.reachable()
    for s in domain:
        if p(s) and not q(s) and _can_avoid_forever(system, s, q):
            return False
    return True


def holds_leads_to_always(
    system: TransitionSystem,
    p: Predicate,
    q: Predicate,
    from_anywhere: bool = True,
) -> bool:
    """``p ,-> q`` == ``(p |-> q) /\\ stable(q)`` (paper, Section 3.1)."""
    return holds_stable(system, q) and holds_leads_to(
        system, p, q, from_anywhere=from_anywhere
    )


# ---------------------------------------------------------------------------
# Finite-trace semantics (for simulation traces)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceVerdict:
    """Outcome of evaluating a temporal formula on a finite trace.

    ``violated_at`` is the index of the first definite violation (safety
    only); ``pending_since`` is the index of the oldest liveness obligation
    still open at trace end.  A formula *passes* a finite trace iff it is
    neither violated nor pending (pending may be acceptable under a grace
    horizon -- that policy belongs to the caller).
    """

    formula: str
    violated_at: int | None = None
    pending_since: int | None = None
    detail: str = ""

    @property
    def violated(self) -> bool:
        """A definite (safety) violation occurred."""
        return self.violated_at is not None

    @property
    def pending(self) -> bool:
        """A liveness obligation is still open at trace end."""
        return self.pending_since is not None

    @property
    def ok(self) -> bool:
        """Neither violated nor pending."""
        return not self.violated and not self.pending

    def pending_age(self, trace_length: int) -> int:
        """Steps the oldest obligation has been open at trace end."""
        if self.pending_since is None:
            return 0
        return trace_length - 1 - self.pending_since


def unless_on_trace(
    trace: Sequence[StateLike], p: Predicate, q: Predicate, formula: str = "p unless q"
) -> TraceVerdict:
    """``p unless q`` on a finite trace (safety: definite verdicts)."""
    for i in range(len(trace) - 1):
        s, t = trace[i], trace[i + 1]
        if p(s) and not q(s) and not (p(t) or q(t)):
            return TraceVerdict(
                formula, violated_at=i, detail=f"p held at {i}, neither p nor q at {i + 1}"
            )
    return TraceVerdict(formula)


def stable_on_trace(
    trace: Sequence[StateLike], p: Predicate, formula: str = "stable(p)"
) -> TraceVerdict:
    """``stable(p)`` == ``p unless false`` on a finite trace."""
    return unless_on_trace(trace, p, lambda _s: False, formula=formula)


def invariant_on_trace(
    trace: Sequence[StateLike], p: Predicate, formula: str = "invariant(p)"
) -> TraceVerdict:
    """Holds at the first state and stays stable thereafter."""
    if trace and not p(trace[0]):
        return TraceVerdict(formula, violated_at=0, detail="fails at first state")
    return stable_on_trace(trace, p, formula=formula)


def leads_to_on_trace(
    trace: Sequence[StateLike], p: Predicate, q: Predicate, formula: str = "p |-> q"
) -> TraceVerdict:
    """``p |-> q`` on a finite trace: unmet obligations are *pending*."""
    oldest_open: int | None = None
    for i, s in enumerate(trace):
        if q(s):
            oldest_open = None
        if p(s) and not q(s) and oldest_open is None:
            oldest_open = i
    if oldest_open is not None:
        return TraceVerdict(
            formula,
            pending_since=oldest_open,
            detail=f"obligation raised at {oldest_open} unmet by trace end",
        )
    return TraceVerdict(formula)


def leads_to_always_on_trace(
    trace: Sequence[StateLike],
    p: Predicate,
    q: Predicate,
    formula: str = "p ,-> q",
) -> TraceVerdict:
    """``p ,-> q`` == ``(p |-> q) /\\ stable(q)`` on a finite trace."""
    stable_part = stable_on_trace(trace, q, formula=formula)
    if stable_part.violated:
        return stable_part
    return leads_to_on_trace(trace, p, q, formula=formula)


@dataclass
class ObligationTracker:
    """Incremental (online) ``p |-> q`` monitor for streaming states.

    Feed states one at a time with :meth:`observe`; at any point,
    :attr:`pending_since` tells whether an obligation is open and since when.
    Used by the stabilization checker to measure convergence latency.
    """

    p: Predicate
    q: Predicate
    name: str = "p |-> q"
    pending_since: int | None = None
    discharged: list[tuple[int, int]] = field(default_factory=list)
    _step: int = 0

    def observe(self, state: StateLike) -> None:
        """Feed the next state of the stream."""
        if self.q(state) and self.pending_since is not None:
            self.discharged.append((self.pending_since, self._step))
            self.pending_since = None
        if self.p(state) and not self.q(state) and self.pending_since is None:
            self.pending_since = self._step
        self._step += 1

    @property
    def steps_observed(self) -> int:
        """How many states have been observed."""
        return self._step

    def max_latency(self) -> int:
        """Largest raise-to-discharge latency seen so far (discharged only)."""
        return max((b - a for a, b in self.discharged), default=0)
