"""Core formal framework of *Graybox Stabilization* (Section 2).

Systems as fusion-closed computation sets (finite transition systems), the
refinement relations ``[C => A]init`` / ``[C => A]``, stabilization, the box
operator, the UNITY temporal operators the specifications are written in,
executable forms of the paper's composition lemmas/theorems, and the Figure 1
counterexample.
"""

from repro.core.box import box, box_all
from repro.core.dependability import (
    FaultClass,
    check_graybox_failsafe,
    check_graybox_masking,
    fault_span,
    is_failsafe_tolerant,
    is_masking_tolerant,
    is_nonmasking_tolerant,
    safety_violating_transitions,
    with_faults,
)
from repro.core.computation import FinitePath, Lasso
from repro.core.counterexample import fault_F, figure1_A, figure1_C
from repro.core.relations import (
    RelationReport,
    closure_and_convergence,
    everywhere_implements,
    good_transitions,
    implements,
    is_self_stabilizing,
    is_stabilizing_to,
    is_stabilizing_to_fair,
    legitimate_states,
)
from repro.core.synthesis import (
    SynthesisError,
    SynthesisResult,
    synthesize_stabilizing_wrapper,
)
from repro.core.state import State
from repro.core.system import SystemError_, TransitionSystem, chain_system
from repro.core.temporal import (
    ObligationTracker,
    TraceVerdict,
    holds_invariant,
    holds_leads_to,
    holds_leads_to_always,
    holds_stable,
    holds_unless,
    invariant_on_trace,
    leads_to_always_on_trace,
    leads_to_on_trace,
    stable_on_trace,
    unless_on_trace,
)
from repro.core.theorems import (
    TheoremVerdict,
    check_lemma0,
    check_lemma2,
    check_theorem1,
    check_theorem4,
    random_subsystem,
    random_system,
)

__all__ = [
    "FaultClass",
    "FinitePath",
    "Lasso",
    "ObligationTracker",
    "RelationReport",
    "State",
    "SynthesisError",
    "SynthesisResult",
    "SystemError_",
    "TheoremVerdict",
    "TraceVerdict",
    "TransitionSystem",
    "box",
    "box_all",
    "chain_system",
    "check_graybox_failsafe",
    "check_graybox_masking",
    "check_lemma0",
    "check_lemma2",
    "check_theorem1",
    "check_theorem4",
    "closure_and_convergence",
    "everywhere_implements",
    "fault_F",
    "fault_span",
    "figure1_A",
    "figure1_C",
    "good_transitions",
    "holds_invariant",
    "holds_leads_to",
    "holds_leads_to_always",
    "holds_stable",
    "holds_unless",
    "implements",
    "is_failsafe_tolerant",
    "is_masking_tolerant",
    "is_nonmasking_tolerant",
    "invariant_on_trace",
    "is_self_stabilizing",
    "is_stabilizing_to",
    "is_stabilizing_to_fair",
    "leads_to_always_on_trace",
    "leads_to_on_trace",
    "legitimate_states",
    "random_subsystem",
    "random_system",
    "safety_violating_transitions",
    "stable_on_trace",
    "synthesize_stabilizing_wrapper",
    "unless_on_trace",
    "with_faults",
]
