"""Automatic synthesis of graybox stabilization wrappers (Section 6).

The paper closes with: *"Another direction we are pursuing is automatic
synthesis of graybox dependability."*  For finite everywhere specifications
the stabilization case is constructively solvable, and this module solves
it:

Given a specification ``A`` (with a non-empty initial set), compute its
legitimate states (those on computations from the initial states) and emit
a wrapper ``W`` whose transitions

* at every *illegitimate* state jump to a closest legitimate state
  (one recovery action per bad state), and
* at every legitimate state simply follow ``A`` (so the composed system
  gains no new behaviour inside the legitimate region).

Then ``A box W`` is stabilizing to ``A`` under UNITY's weak fairness (a
continuously enabled recovery action eventually fires; see
:func:`repro.core.relations.is_stabilizing_to_fair`), and the Theorem-1
argument yields: for every everywhere-implementation ``C`` of ``A``,
``C box W`` is fair-stabilizing to ``A``.  When the specification has no
cycles among illegitimate states the guarantee holds even without
fairness (``SynthesisResult.stabilizes_unfair``).  The synthesized wrapper
is graybox -- it is computed from the specification alone.

``minimal=True`` prunes the wrapper to only those illegitimate states that
cannot already reach the legitimate region under ``A``'s own transitions
with certainty; the default emits recovery for every illegitimate state
(simpler, and convergence takes one step from anywhere).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.box import box
from repro.core.relations import (
    is_stabilizing_to,
    is_stabilizing_to_fair,
    legitimate_states,
)
from repro.core.system import StateLike, TransitionSystem


@dataclass(frozen=True)
class SynthesisResult:
    """A synthesized wrapper plus diagnostics.

    ``stabilizes_unfair`` reports whether ``spec box W`` is stabilizing
    even without UNITY's weak fairness (true when the specification has no
    cycles among illegitimate states); the fairness-aware guarantee always
    holds -- synthesis fails loudly otherwise.
    """

    wrapper: TransitionSystem
    legitimate: frozenset[StateLike]
    recovery_edges: frozenset[tuple[StateLike, StateLike]]
    stabilizes_unfair: bool = True

    @property
    def recovery_count(self) -> int:
        """How many illegitimate states received a recovery action."""
        return len(self.recovery_edges)


class SynthesisError(ValueError):
    """The specification admits no stabilizing wrapper of this form."""


def _nearest_legit_targets(
    spec: TransitionSystem, legit: frozenset[StateLike]
) -> dict[StateLike, StateLike]:
    """For every illegitimate state, a legitimate state to recover to.

    Prefers a target reachable in few ``A``-steps (breadth-first from the
    legitimate region over reversed edges); falls back to the lexically
    smallest legitimate state for states with no path at all.
    """
    reverse: dict[StateLike, set[StateLike]] = {s: set() for s in spec.states}
    for s, t in spec.edges():
        reverse[t].add(s)
    target: dict[StateLike, StateLike] = {}
    queue: deque[StateLike] = deque(sorted(legit, key=repr))
    for s in legit:
        target[s] = s
    while queue:
        node = queue.popleft()
        for pred in sorted(reverse[node], key=repr):
            if pred not in target:
                target[pred] = target[node]
                queue.append(pred)
    default = min(legit, key=repr)
    return {
        s: target.get(s, default) for s in spec.states if s not in legit
    }


def synthesize_stabilizing_wrapper(
    spec: TransitionSystem, minimal: bool = False
) -> SynthesisResult:
    """Synthesize W such that ``spec box W`` is stabilizing to ``spec``.

    Raises :class:`SynthesisError` if ``spec`` has no initial states (then
    there is no legitimate region to recover to).
    """
    legit = legitimate_states(spec)
    if not legit:
        raise SynthesisError(
            f"{spec.name} has no initial states; nothing to stabilize to"
        )
    recovery = _nearest_legit_targets(spec, legit)
    if minimal:
        # Keep recovery only where A itself cannot guarantee convergence:
        # states from which some A-computation avoids the legit region
        # forever (i.e. reaches a cycle outside legit).
        outside = spec.states - legit
        # states on or reaching a non-legit cycle:
        cycle_edges = {
            (s, t)
            for (s, t) in spec.edges_on_cycles()
            if s in outside and t in outside
        }
        cycle_states = {s for s, _t in cycle_edges} | {
            t for _s, t in cycle_edges
        }
        # any outside state that can reach a bad cycle while staying outside
        risky: set[StateLike] = set(cycle_states)
        changed = True
        while changed:
            changed = False
            for s in outside:
                if s in risky:
                    continue
                if spec.transitions[s] & risky:
                    risky.add(s)
                    changed = True
        recovery = {s: t for s, t in recovery.items() if s in risky}
    transitions: dict[StateLike, set[StateLike]] = {}
    for s in spec.states:
        if s in recovery:
            transitions[s] = {recovery[s]}
        else:
            transitions[s] = set(spec.transitions[s])
    wrapper = TransitionSystem(f"synth-W({spec.name})", transitions, initial=())
    recovery_edges = frozenset(recovery.items())
    composed = box(spec, wrapper)
    plain = is_stabilizing_to(composed, spec)
    fair = is_stabilizing_to_fair(composed, spec, recovery_edges)
    if not fair:
        raise SynthesisError(
            f"internal error: synthesized wrapper fails for {spec.name}: "
            f"{fair.reason}"
        )
    return SynthesisResult(
        wrapper=wrapper,
        legitimate=legit,
        recovery_edges=recovery_edges,
        stabilizes_unfair=bool(plain),
    )
