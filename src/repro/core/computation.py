"""Computations: the state sequences of a system.

Section 2 of the paper defines a *system* as a set of (possibly infinite)
state sequences, called its *computations*.  The core layer works with finite
transition systems, whose computations are exactly the infinite walks of the
transition graph.  Two finite representations of such sequences are provided:

* :class:`FinitePath` -- a finite prefix of a computation (used by bounded
  exploration and by finite-trace temporal semantics);
* :class:`Lasso` -- an eventually-periodic infinite computation, written
  ``stem + cycle^omega`` (used for exact reasoning about liveness on finite
  systems: every finite transition system that violates a liveness property
  violates it on some lasso).

Both support the prefix/suffix operations the paper's *fusion closure*
assumption is stated in terms of.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass
from itertools import islice
from typing import Any

StateLike = Hashable


def _as_tuple(states: Sequence[StateLike]) -> tuple[StateLike, ...]:
    return tuple(states)


@dataclass(frozen=True)
class FinitePath:
    """A finite sequence of states (a prefix of a computation)."""

    states: tuple[StateLike, ...]

    def __init__(self, states: Sequence[StateLike]):
        if len(states) == 0:
            raise ValueError("a path must contain at least one state")
        object.__setattr__(self, "states", _as_tuple(states))

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[StateLike]:
        return iter(self.states)

    def __getitem__(self, index: int) -> StateLike:
        return self.states[index]

    @property
    def first(self) -> StateLike:
        """The first state of the path."""
        return self.states[0]

    @property
    def last(self) -> StateLike:
        """The last state of the path."""
        return self.states[-1]

    def transitions(self) -> Iterator[tuple[StateLike, StateLike]]:
        """Yield the consecutive state pairs of the path."""
        return zip(self.states, self.states[1:])

    def suffix_from(self, index: int) -> "FinitePath":
        """The sub-path starting at ``index``."""
        if not 0 <= index < len(self.states):
            raise IndexError(index)
        return FinitePath(self.states[index:])

    def prefix_to(self, index: int) -> "FinitePath":
        """The prefix containing states ``0..index`` inclusive."""
        if not 0 <= index < len(self.states):
            raise IndexError(index)
        return FinitePath(self.states[: index + 1])

    def fuse(self, other: "FinitePath") -> "FinitePath":
        """Fusion of two paths sharing a state: ``<alpha, x> . <x, delta>``.

        This is the finite analogue of the paper's fusion-closure operation:
        the last state of ``self`` must equal the first state of ``other``;
        the shared state appears once in the result.
        """
        if self.last != other.first:
            raise ValueError(
                f"cannot fuse: last state {self.last!r} != first state "
                f"{other.first!r}"
            )
        return FinitePath(self.states + other.states[1:])

    def __repr__(self) -> str:
        shown = " -> ".join(repr(s) for s in self.states[:6])
        more = "" if len(self.states) <= 6 else f" -> ... ({len(self.states)} states)"
        return f"FinitePath({shown}{more})"


@dataclass(frozen=True)
class Lasso:
    """An eventually-periodic infinite computation ``stem + cycle^omega``.

    ``stem`` may be empty; ``cycle`` must be non-empty and its last state must
    have the first cycle state as a successor in the underlying system (this
    is the caller's responsibility; :class:`Lasso` only stores the shape).
    """

    stem: tuple[StateLike, ...]
    cycle: tuple[StateLike, ...]

    def __init__(self, stem: Sequence[StateLike], cycle: Sequence[StateLike]):
        if len(cycle) == 0:
            raise ValueError("a lasso needs a non-empty cycle")
        object.__setattr__(self, "stem", _as_tuple(stem))
        object.__setattr__(self, "cycle", _as_tuple(cycle))

    @property
    def first(self) -> StateLike:
        """The first state of the unrolling."""
        return self.stem[0] if self.stem else self.cycle[0]

    def state_at(self, index: int) -> StateLike:
        """The state at position ``index`` of the infinite unrolling."""
        if index < 0:
            raise IndexError(index)
        if index < len(self.stem):
            return self.stem[index]
        return self.cycle[(index - len(self.stem)) % len(self.cycle)]

    def states(self) -> Iterator[StateLike]:
        """Yield the (infinite) unrolling; use with ``islice``."""
        yield from self.stem
        while True:
            yield from self.cycle

    def prefix(self, length: int) -> FinitePath:
        """The first ``length`` states of the unrolling as a finite path."""
        if length < 1:
            raise ValueError("prefix length must be >= 1")
        return FinitePath(list(islice(self.states(), length)))

    def transitions(self) -> frozenset[tuple[StateLike, StateLike]]:
        """All transitions the infinite unrolling takes (a finite set)."""
        unrolled = list(self.stem) + list(self.cycle) + [self.cycle[0]]
        return frozenset(zip(unrolled, unrolled[1:]))

    def recurring_transitions(self) -> frozenset[tuple[StateLike, StateLike]]:
        """Transitions taken infinitely often (those of the cycle)."""
        around = list(self.cycle) + [self.cycle[0]]
        return frozenset(zip(around, around[1:]))

    def recurring_states(self) -> frozenset[StateLike]:
        """States visited infinitely often (the cycle states)."""
        return frozenset(self.cycle)

    def suffix_from(self, index: int) -> "Lasso":
        """Drop the first ``index`` states; the result is again a lasso."""
        if index < 0:
            raise IndexError(index)
        if index <= len(self.stem):
            return Lasso(self.stem[index:], self.cycle)
        offset = (index - len(self.stem)) % len(self.cycle)
        rotated = self.cycle[offset:] + self.cycle[:offset]
        return Lasso((), rotated)

    def eventually_satisfies(self, predicate: Any) -> bool:
        """True iff some state of the unrolling satisfies ``predicate``.

        Decidable: it suffices to inspect the stem and one turn of the cycle.
        """
        return any(predicate(s) for s in self.stem) or any(
            predicate(s) for s in self.cycle
        )

    def always_eventually_satisfies(self, predicate: Any) -> bool:
        """True iff infinitely many states satisfy ``predicate``
        (equivalently: some cycle state does)."""
        return any(predicate(s) for s in self.cycle)

    def __repr__(self) -> str:
        stem = " -> ".join(repr(s) for s in self.stem[:4])
        cyc = " -> ".join(repr(s) for s in self.cycle[:4])
        return f"Lasso(stem=[{stem}], cycle=[{cyc}]^omega)"
