"""repro.service: the live lock service.

The deployed-implementation claim of the paper, made runnable: the same
wrapped ProcessPrograms the simulator verifies, serving a real lock API
over TCP on localhost, under load generation and chaos, with online
ME1-ME3 monitoring and a persisted trace that re-validates offline.

Modules:

* :mod:`repro.service.wire`      -- frames and the value codec
* :mod:`repro.service.transport` -- SocketTransport / ClusterNetwork
* :mod:`repro.service.node`      -- the per-node asyncio runtime
* :mod:`repro.service.lockapi`   -- acquire/release frontend + client
* :mod:`repro.service.monitor`   -- LiveMonitor + trace persistence
* :mod:`repro.service.chaos`     -- link cut/heal at runtime
* :mod:`repro.service.cluster`   -- LocalCluster assembly
* :mod:`repro.service.loadgen`   -- the load generator
"""

from repro.service.chaos import ChaosConfig, ChaosMonkey
from repro.service.cluster import ClusterConfig, LocalCluster
from repro.service.loadgen import LoadgenConfig, LoadgenResult, run_loadgen
from repro.service.lockapi import LockClient, LockError, LockFrontend
from repro.service.monitor import LiveMonitor, revalidate_trace
from repro.service.node import ServiceNode
from repro.service.transport import ClusterNetwork, SocketTransport

__all__ = [
    "ChaosConfig",
    "ChaosMonkey",
    "ClusterConfig",
    "ClusterNetwork",
    "LiveMonitor",
    "LoadgenConfig",
    "LoadgenResult",
    "LocalCluster",
    "LockClient",
    "LockError",
    "LockFrontend",
    "ServiceNode",
    "SocketTransport",
    "revalidate_trace",
    "run_loadgen",
]
