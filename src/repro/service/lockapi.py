"""The client-facing lock API: acquire/release multiplexed onto TME.

The paper's Client Spec (Section 3.2) constrains the *environment* of a
mutual exclusion program: request only while thinking, release eventually.
In the simulator the environment is modelled by the client tick actions;
in the live service the environment is real software -- the callers of
this API -- and the frontend implements the Client Spec on their behalf:

* a client's ``acquire`` arms the node's Request-CS guard by zeroing
  ``think_timer`` (the node then issues a protocol request on its own);
* when the node's phase reaches EATING, the frontend grants the lock to
  the head of its pending queue;
* the holder's ``release`` zeroes ``eat_timer``, enabling Release-CS (the
  protocol's release/reply messages follow from the program, untouched);
* a holder that disconnects is auto-released, so eating stays transient
  (CS Spec) even under misbehaving clients.

One node serves many concurrent clients: they serialize on the node's
single CS slot, and nodes serialize cluster-wide through the wrapped
protocol itself.  The frontend never touches protocol variables -- only
the two client workload timers, which belong to the environment by
construction.

Wire protocol (frames, see :mod:`repro.service.wire`):

========================== =============================================
``{"t": "acquire", "id"}`` client asks for the lock
``{"t": "grant", "id"}``   server: the lock is yours
``{"t": "release", "id"}`` client gives the lock back
``{"t": "released", "id"}``server: release completed (phase left CS)
========================== =============================================
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.service.node import ServiceNode
from repro.service.wire import WireError, encode_frame, read_frame
from repro.tme.interfaces import EATING, THINKING


@dataclass
class _Waiter:
    """One outstanding acquire: which connection, which request id."""

    writer: asyncio.StreamWriter
    req_id: int
    conn_key: int
    gone: bool = False


@dataclass
class _Holder:
    """The current lock holder (if any) and its release progress."""

    writer: asyncio.StreamWriter
    req_id: int
    release_requested: bool = False
    gone: bool = False


@dataclass
class FrontendStats:
    """Counters the loadgen and the CI smoke assert on."""

    acquires: int = 0
    grants: int = 0
    releases: int = 0
    orphan_releases: int = 0
    queue_peak: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "acquires": self.acquires,
            "grants": self.grants,
            "releases": self.releases,
            "orphan_releases": self.orphan_releases,
            "queue_peak": self.queue_peak,
        }


@dataclass
class LockFrontend:
    """Per-node lock frontend (see module docstring)."""

    node: ServiceNode
    _pending: deque[_Waiter] = field(default_factory=deque)
    _holder: _Holder | None = None
    _conn_waiters: dict[int, list[_Waiter]] = field(default_factory=dict)
    stats: FrontendStats = field(default_factory=FrontendStats)

    # -- connection handling (the transport's client_handler) -----------------

    async def handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first_frame: dict[str, Any],
    ) -> None:
        """Serve one client connection until it closes."""
        conn_key = id(writer)
        self._conn_waiters[conn_key] = []
        frame: dict[str, Any] | None = first_frame
        try:
            while frame is not None:
                self._handle_frame(conn_key, writer, frame)
                try:
                    frame = await read_frame(reader)
                except WireError:
                    break
        finally:
            self._on_disconnect(conn_key, writer)
            writer.close()

    def _handle_frame(
        self,
        conn_key: int,
        writer: asyncio.StreamWriter,
        frame: dict[str, Any],
    ) -> None:
        kind = frame.get("t")
        req_id = int(frame.get("id", 0))
        if kind == "acquire":
            waiter = _Waiter(writer, req_id, conn_key)
            self._pending.append(waiter)
            self._conn_waiters[conn_key].append(waiter)
            self.stats.acquires += 1
            self.stats.queue_peak = max(
                self.stats.queue_peak, len(self._pending)
            )
        elif kind == "release":
            holder = self._holder
            if (
                holder is not None
                and holder.writer is writer
                and holder.req_id == req_id
                and not holder.release_requested
            ):
                holder.release_requested = True
                self.node.runtime.variables["eat_timer"] = 0
                self.stats.releases += 1
        # Unknown frames are client garbage; ignore (the connection stays).
        self.node.kick()

    def _on_disconnect(
        self, conn_key: int, writer: asyncio.StreamWriter
    ) -> None:
        for waiter in self._conn_waiters.pop(conn_key, []):
            waiter.gone = True
        holder = self._holder
        if holder is not None and holder.writer is writer:
            holder.gone = True
        self.node.kick()

    # -- the node's settle hook -----------------------------------------------

    def _send(self, writer: asyncio.StreamWriter, obj: dict[str, Any]) -> None:
        try:
            writer.write(encode_frame(obj))
        except (ConnectionError, RuntimeError, OSError):
            pass  # the disconnect path cleans up

    def _grant_next(self) -> bool:
        while self._pending:
            waiter = self._pending.popleft()
            live_waiters = self._conn_waiters.get(waiter.conn_key)
            if live_waiters is not None and waiter in live_waiters:
                live_waiters.remove(waiter)
            if waiter.gone:
                continue
            self._holder = _Holder(waiter.writer, waiter.req_id)
            self.stats.grants += 1
            self._send(waiter.writer, {"t": "grant", "id": waiter.req_id})
            return True
        return False

    def poll(self) -> bool:
        """Advance the frontend against the node's current phase; returns
        whether it changed node state (wired to ``node.on_settle``)."""
        runtime = self.node.runtime
        variables = runtime.variables
        phase = variables.get("phase")
        changed = False
        holder = self._holder
        if holder is not None:
            if holder.release_requested and phase != EATING:
                # Release-CS executed: the cycle is complete.
                if not holder.gone:
                    self._send(
                        holder.writer, {"t": "released", "id": holder.req_id}
                    )
                self._holder = None
                holder = None
                changed = True
            elif holder.gone and not holder.release_requested:
                # Orphaned holder: release on its behalf (CS Spec).
                holder.release_requested = True
                variables["eat_timer"] = 0
                self.stats.orphan_releases += 1
                changed = True
        if holder is None and phase == EATING:
            if self._grant_next():
                changed = True
            elif variables.get("eat_timer", 0) != 0:
                # Entered the CS with nobody waiting (every queued client
                # disconnected): give it straight back.
                variables["eat_timer"] = 0
                self.stats.orphan_releases += 1
                changed = True
        if (
            self._holder is None
            and phase == THINKING
            and any(not w.gone for w in self._pending)
            and variables.get("think_timer", 1) != 0
        ):
            # Demand exists: arm the Request-CS guard.
            variables["think_timer"] = 0
            changed = True
        return changed


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------


class LockError(ConnectionError):
    """The server went away mid-operation."""


class LockClient:
    """One lock-API connection (one logical client of the service).

    The per-connection protocol is sequential -- acquire, hold, release --
    so responses are read in order; a client wanting overlapping requests
    opens more connections (which is what the load generator does).
    """

    def __init__(self) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0

    async def connect(self, host: str, port: int) -> None:
        self._reader, self._writer = await asyncio.open_connection(host, port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def _expect(self, kind: str, req_id: int) -> None:
        assert self._reader is not None
        while True:
            frame = await read_frame(self._reader)
            if frame is None:
                raise LockError(f"server closed while awaiting {kind}")
            if frame.get("t") == kind and int(frame.get("id", -1)) == req_id:
                return

    async def acquire(self) -> int:
        """Request the lock and wait for the grant; returns the request id."""
        if self._writer is None:
            raise LockError("not connected")
        self._next_id += 1
        req_id = self._next_id
        self._writer.write(encode_frame({"t": "acquire", "id": req_id}))
        await self._expect("grant", req_id)
        return req_id

    async def release(self, req_id: int) -> None:
        """Give the lock back and wait for the release to complete."""
        if self._writer is None:
            raise LockError("not connected")
        self._writer.write(encode_frame({"t": "release", "id": req_id}))
        await self._expect("released", req_id)
