"""Length-prefixed frames and the service's value codec.

Everything that crosses a socket in :mod:`repro.service` -- protocol
messages between nodes, lock-API requests from clients, monitor records
persisted to disk -- is one *frame*: a 4-byte big-endian length prefix
followed by that many bytes of UTF-8 JSON.

JSON alone cannot carry the protocol's payloads (a Ricart-Agrawala
REQUEST is a :class:`~repro.clocks.timestamps.Timestamp`; snapshots hold
tuples and frozensets), so values are *tagged*: containers and domain
types encode as single-key objects (``{"%ts": [clock, pid]}``,
``{"%tup": [...]}``, ``{"%fset": [...]}``, ``{"%map": [[k, v], ...]}``)
and decode back to the identical Python value.  The codec is total over
the state values the TME programs use; anything else raises rather than
silently degrading (a corrupted frame is the *fault model's* job, not
the codec's).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from repro.clocks.timestamps import Timestamp
from repro.runtime.messages import Message

#: Frame length prefix: 4 bytes, big endian.
_LEN = struct.Struct(">I")

#: Upper bound on a single frame body; a larger prefix means a corrupt or
#: hostile stream and the connection is dropped.
MAX_FRAME_BYTES = 1 << 20

_TAG_TS = "%ts"
_TAG_TUPLE = "%tup"
_TAG_FSET = "%fset"
_TAG_MAP = "%map"
_TAGS = (_TAG_TS, _TAG_TUPLE, _TAG_FSET, _TAG_MAP)


class WireError(ValueError):
    """A frame or value that cannot be (de)serialized."""


# ---------------------------------------------------------------------------
# Value tagging
# ---------------------------------------------------------------------------


def pack_value(value: Any) -> Any:
    """Encode one Python value as tagged, JSON-serializable data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Timestamp):
        return {_TAG_TS: [value.clock, value.pid]}
    if isinstance(value, tuple):
        return {_TAG_TUPLE: [pack_value(v) for v in value]}
    if isinstance(value, list):
        return [pack_value(v) for v in value]
    if isinstance(value, frozenset):
        # Sorted by packed JSON text: deterministic without requiring the
        # members to be mutually orderable in Python.
        packed = [pack_value(v) for v in value]
        return {_TAG_FSET: sorted(packed, key=lambda p: json.dumps(p))}
    if isinstance(value, dict):
        items = [[pack_value(k), pack_value(v)] for k, v in value.items()]
        if all(isinstance(k, str) and not k.startswith("%") for k in value):
            return {str(k): pack_value(v) for k, v in value.items()}
        return {_TAG_MAP: items}
    raise WireError(f"cannot encode {type(value).__name__}: {value!r}")


def unpack_value(data: Any) -> Any:
    """Decode tagged data back to the original Python value."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [unpack_value(v) for v in data]
    if isinstance(data, dict):
        if len(data) == 1:
            (tag, body), = data.items()
            if tag == _TAG_TS:
                clock, pid = body
                return Timestamp(int(clock), str(pid))
            if tag == _TAG_TUPLE:
                return tuple(unpack_value(v) for v in body)
            if tag == _TAG_FSET:
                return frozenset(unpack_value(v) for v in body)
            if tag == _TAG_MAP:
                return {unpack_value(k): unpack_value(v) for k, v in body}
        if any(k in _TAGS for k in data):
            raise WireError(f"malformed tagged value: {data!r}")
        return {k: unpack_value(v) for k, v in data.items()}
    raise WireError(f"cannot decode {data!r}")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(obj: dict[str, Any]) -> bytes:
    """One wire frame: length prefix + compact JSON body."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame too large: {len(body)} bytes")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> dict[str, Any]:
    """Parse one frame body (without the prefix)."""
    obj = json.loads(body.decode("utf-8"))
    if not isinstance(obj, dict):
        raise WireError(f"frame body must be an object, got {type(obj).__name__}")
    return obj


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    return decode_body(body)


# ---------------------------------------------------------------------------
# Protocol messages on the wire
# ---------------------------------------------------------------------------


def message_frame(message: Message) -> dict[str, Any]:
    """Encode a protocol :class:`Message` as a frame object."""
    return {
        "t": "msg",
        "uid": message.uid,
        "kind": message.kind,
        "src": message.sender,
        "dst": message.receiver,
        "payload": pack_value(message.payload),
        "clock": message.sender_clock,
    }


def frame_message(frame: dict[str, Any]) -> Message:
    """Decode a ``msg`` frame back into a :class:`Message`.

    ``send_event_uid`` is always ``None`` on the wire: happened-before
    event uids are simulator-local identities and do not travel.
    """
    return Message(
        uid=int(frame["uid"]),
        kind=str(frame["kind"]),
        sender=str(frame["src"]),
        receiver=str(frame["dst"]),
        payload=unpack_value(frame["payload"]),
        send_event_uid=None,
        sender_clock=(
            int(frame["clock"]) if frame.get("clock") is not None else None
        ),
    )
