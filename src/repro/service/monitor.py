"""Online ME1-ME3 monitoring of the live cluster, plus trace persistence.

The cluster runs in one process, so its event trace has a total order: the
cluster stamps every executed node step (and every recovery or chaos
intervention that mutates state) with a global sequence number and feeds
the affected process's monitored variables to :class:`LiveMonitor`.

The monitor reconstructs the same :class:`~repro.runtime.trace.GlobalState`
sequence the simulator would have recorded -- one state per event, each
differing from its predecessor in exactly one process's variables -- and
evaluates ME1, ME2, and ME3 *incrementally*, mirroring
:mod:`repro.tme.spec` check for check.  The equivalence is not just
claimed: every event is also persisted as a JSONL frame, and
:func:`revalidate_trace` rebuilds the states offline and literally calls
:func:`~repro.tme.spec.check_tme_spec` on them, so a live run's verdict
can always be re-derived from its artifact (and the test suite asserts
the two verdicts agree, violating traces included).

Only the Lspec variables the TME spec reads are monitored: ``phase``
(ME1/ME2) and ``req``/``lc`` (ME3).  Channels are not part of live global
states -- in-flight frames live in kernel buffers -- which is sound
because no ME property reads channel contents.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path
from typing import Any, TextIO

from repro.runtime.trace import GlobalState, Trace
from repro.service.wire import pack_value, unpack_value
from repro.tme.interfaces import EATING, HUNGRY
from repro.tme.spec import (
    FcfsViolation,
    Me2Report,
    TmeSpecReport,
    check_tme_spec,
    eating_pids,
)

#: The variables the TME spec reads, projected out of each process.
MONITORED_VARS = ("lc", "phase", "req")

#: Trace artifact schema (bumped on any incompatible record change).
TRACE_SCHEMA_VERSION = 1


def monitored_vars(variables: Mapping[str, Any]) -> dict[str, Any]:
    """Project one process's valuation onto the monitored variables."""
    return {k: variables.get(k) for k in MONITORED_VARS}


def _process_state(vars_by_pid: Mapping[str, Mapping[str, Any]]) -> GlobalState:
    processes = tuple(
        (pid, tuple(sorted(vars_by_pid[pid].items())))
        for pid in sorted(vars_by_pid)
    )
    return GlobalState(processes, ())


# ---------------------------------------------------------------------------
# Online monitoring
# ---------------------------------------------------------------------------


class _Me2Tracker:
    """Incremental h |-> e for one process (mirrors ``me2_reports``)."""

    def __init__(self) -> None:
        self.pending: int | None = None
        self.entries = 0
        self.max_latency = 0

    def observe(self, index: int, phase: Any) -> None:
        if phase == EATING and self.pending is not None:
            self.entries += 1
            self.max_latency = max(self.max_latency, index - self.pending)
            self.pending = None
        if phase == HUNGRY and self.pending is None:
            self.pending = index


class LiveMonitor:
    """Incremental TME-spec evaluation over the live event stream."""

    def __init__(
        self,
        initial_vars: Mapping[str, Mapping[str, Any]],
        keep_states: bool = False,
    ):
        self.pids = tuple(sorted(initial_vars))
        self._vars: dict[str, dict[str, Any]] = {
            pid: monitored_vars(initial_vars[pid]) for pid in self.pids
        }
        self._prev = _process_state(self._vars)
        self.keep_states = keep_states
        self.states: list[GlobalState] = [self._prev] if keep_states else []
        self._index = 0  # index of the latest state
        self.me1: list[int] = []
        self.me3: list[FcfsViolation] = []
        self._me2 = {pid: _Me2Tracker() for pid in self.pids}
        for pid in self.pids:
            self._me2[pid].observe(0, self._prev.var(pid, "phase"))

    def on_event(self, pid: str, variables: Mapping[str, Any]) -> None:
        """Consume one totally ordered event: ``pid``'s post-step state."""
        self._vars[pid] = monitored_vars(variables)
        cur = _process_state(self._vars)
        self._index += 1
        index = self._index
        if self.keep_states:
            self.states.append(cur)
        # ME1 (mirrors me1_violations).
        if len(eating_pids(cur)) >= 2:
            self.me1.append(index)
        # ME2 (mirrors me2_reports).
        for p in self.pids:
            self._me2[p].observe(index, cur.var(p, "phase"))
        # ME3 (mirrors me3_violations on the prev->cur transition).
        self._check_me3(self._prev, cur, index)
        self._prev = cur

    def _check_me3(
        self, prev: GlobalState, cur: GlobalState, index: int
    ) -> None:
        from repro.tme.spec import _req  # same reading as the offline check

        for k in self.pids:
            entered = (
                cur.var(k, "phase") == EATING
                and prev.var(k, "phase") == HUNGRY
            )
            if not entered:
                continue
            req_k = _req(prev, k)
            if req_k is None:
                continue
            for j in self.pids:
                if j == k:
                    continue
                if (
                    prev.var(j, "phase") == HUNGRY
                    and cur.var(j, "phase") == HUNGRY
                ):
                    req_j = _req(prev, j)
                    if req_j is not None and req_j.lt(req_k):
                        self.me3.append(
                            FcfsViolation(j, req_j, k, req_k, index)
                        )

    @property
    def events_seen(self) -> int:
        return self._index

    def report(self) -> TmeSpecReport:
        """The verdict so far, shaped exactly like the offline report."""
        length = self._index + 1
        me2 = tuple(
            Me2Report(
                pid,
                self._me2[pid].entries,
                self._me2[pid].max_latency,
                self._me2[pid].pending,
                length,
            )
            for pid in self.pids
        )
        return TmeSpecReport(
            start=0,
            trace_length=length,
            me1=tuple(self.me1),
            me2=me2,
            me3=tuple(self.me3),
        )


# ---------------------------------------------------------------------------
# Trace persistence
# ---------------------------------------------------------------------------


class TraceWriter:
    """Streams the live event trace to a JSONL artifact.

    Records: a ``hdr`` line (schema, pids, initial monitored variables),
    one ``ev`` line per event (global seq, pid, action, post-step
    variables), and ``mark`` lines for interventions that did not change
    any process state (pure link cuts/heals) but matter for forensics.
    """

    def __init__(self, stream: TextIO):
        self._stream = stream

    @classmethod
    def open(cls, path: str | Path) -> "TraceWriter":
        return cls(Path(path).open("w", encoding="utf-8"))

    def _write(self, record: dict[str, Any]) -> None:
        self._stream.write(json.dumps(record, separators=(",", ":")) + "\n")

    def header(self, initial_vars: Mapping[str, Mapping[str, Any]]) -> None:
        self._write(
            {
                "t": "hdr",
                "schema": TRACE_SCHEMA_VERSION,
                "pids": sorted(initial_vars),
                "vars": {
                    pid: pack_value(monitored_vars(initial_vars[pid]))
                    for pid in sorted(initial_vars)
                },
            }
        )

    def event(
        self, seq: int, pid: str, action: str, variables: Mapping[str, Any]
    ) -> None:
        self._write(
            {
                "t": "ev",
                "i": seq,
                "pid": pid,
                "act": action,
                "vars": pack_value(monitored_vars(variables)),
            }
        )

    def mark(self, seq: int, kind: str, detail: str) -> None:
        self._write({"t": "mark", "i": seq, "kind": kind, "detail": detail})

    def close(self) -> None:
        self._stream.close()


# ---------------------------------------------------------------------------
# Offline revalidation
# ---------------------------------------------------------------------------


def load_trace(path: str | Path) -> Trace:
    """Rebuild the global-state sequence from a persisted trace artifact."""
    trace = Trace()
    vars_by_pid: dict[str, dict[str, Any]] = {}
    with Path(path).open(encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("t")
            if kind == "hdr":
                schema = record.get("schema")
                if schema != TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        f"trace schema {schema!r} != {TRACE_SCHEMA_VERSION}"
                    )
                vars_by_pid = {
                    pid: dict(unpack_value(packed))
                    for pid, packed in record["vars"].items()
                }
                trace.states.append(_process_state(vars_by_pid))
            elif kind == "ev":
                if not vars_by_pid:
                    raise ValueError("trace event before header")
                vars_by_pid[record["pid"]] = dict(
                    unpack_value(record["vars"])
                )
                trace.states.append(_process_state(vars_by_pid))
            # "mark" records carry no state delta.
    if not trace.states:
        raise ValueError(f"no trace header in {path}")
    return trace


def revalidate_trace(path: str | Path, start: int = 0) -> TmeSpecReport:
    """Re-derive a live run's verdict offline: rebuild the states and run
    the very same :func:`~repro.tme.spec.check_tme_spec` the simulator
    campaigns use."""
    return check_tme_spec(load_trace(path), start=start)
