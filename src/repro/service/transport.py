"""Sockets as a :class:`~repro.runtime.transport.Transport`.

Two implementations of the runtime's send/deliver contract live here:

:class:`SocketTransport`
    One node's view of the wire: a TCP server for inbound connections
    (peers and lock-API clients share one port; peers identify with a
    ``hello`` frame), one outbound connection per peer with automatic
    reconnect, and the per-link up/down masks the chaos layer flips.
    Sends are non-blocking -- a frame is written to the socket buffer or
    dropped (cut link, peer not connected), exactly the lossy-channel
    semantics of the fault model.  In-flight messages live in the kernel,
    so there is no queue to enumerate: this is a
    :class:`~repro.runtime.transport.Transport`, deliberately not a
    :class:`~repro.runtime.transport.ChannelTransport`.

:class:`ClusterNetwork`
    The cluster-wide facade over all node transports.  It exists so the
    pieces written against the simulator's ``Network`` -- the PR-5
    recovery manager, the campaign-style partition faults -- drive the
    live cluster unchanged: ``send`` routes through the owning node's
    socket, ``cut``/``heal_due`` push the masks to *both* endpoint
    transports (sender-side drops new frames, receiver-side discards
    frames that were already in flight when the link went down), and
    ``flush_all`` drains the node inboxes that registered a flush hook.

A directional link is down if either endpoint masks it; cuts are pushed
to both ends so a cut takes effect immediately even for frames already
buffered in the kernel.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable, Iterable
from typing import Any

from repro.runtime.messages import Message
from repro.service.wire import (
    WireError,
    encode_frame,
    frame_message,
    message_frame,
    read_frame,
)

#: Delay between outbound reconnect attempts (wall pacing of IO retries
#: only -- never a protocol decision).
RECONNECT_DELAY_S = 0.05

DeliverFn = Callable[[Message], None]
ClientHandler = Callable[
    [asyncio.StreamReader, asyncio.StreamWriter, dict[str, Any]],
    Awaitable[None],
]


class SocketTransport:
    """One node's socket endpoint (see module docstring)."""

    def __init__(
        self,
        pid: str,
        pids: Iterable[str],
        deliver: DeliverFn,
        client_handler: ClientHandler | None = None,
    ):
        self.pid = pid
        self.pids = tuple(sorted(pids))
        if pid not in self.pids:
            raise ValueError(f"{pid!r} not in {self.pids}")
        self._index = self.pids.index(pid)
        self._deliver = deliver
        self._client_handler = client_handler
        self._server: asyncio.base_events.Server | None = None
        self._peer_addrs: dict[str, tuple[str, int]] = {}
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._reconnect_tasks: dict[str, asyncio.Task] = {}
        self._reader_tasks: set[asyncio.Task] = set()
        self._closed = False
        # Message uids: node i allocates i+1, i+1+(n+1), ... -- disjoint
        # residues mod n+1 across nodes (residue 0 is the cluster facade's),
        # so uids stay globally unique without coordination.
        self._uid_next = self._index + 1
        self._uid_stride = len(self.pids) + 1
        # Link masks over links incident to this node, value = heal tick.
        self._down: dict[tuple[str, str], int | None] = {}
        self.sent_by_kind: dict[str, int] = {}
        self._dropped = 0
        self.delivered = 0

    # -- lifecycle ------------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind the node's server socket; returns the bound address."""
        self._server = await asyncio.start_server(
            self._on_connection, host=host, port=port
        )
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    def set_peers(self, addresses: dict[str, tuple[str, int]]) -> None:
        """Learn every peer's address (call once all servers are bound)."""
        self._peer_addrs = {
            k: tuple(v) for k, v in addresses.items() if k != self.pid
        }

    async def connect_peers(self) -> None:
        """Open the outbound connection to every peer (blocks until all
        are up; startup only -- later failures go through reconnect)."""
        for peer in sorted(self._peer_addrs):
            await self._connect(peer)

    async def _connect(self, peer: str) -> None:
        host, port = self._peer_addrs[peer]
        while not self._closed:
            try:
                _reader, writer = await asyncio.open_connection(host, port)
                break
            except OSError:
                await asyncio.sleep(RECONNECT_DELAY_S)
        else:
            return
        writer.write(encode_frame({"t": "hello", "pid": self.pid}))
        self._writers[peer] = writer

    def _schedule_reconnect(self, peer: str) -> None:
        if self._closed or peer in self._reconnect_tasks:
            return

        async def reconnect() -> None:
            try:
                await asyncio.sleep(RECONNECT_DELAY_S)
                await self._connect(peer)
            finally:
                self._reconnect_tasks.pop(peer, None)

        self._reconnect_tasks[peer] = asyncio.get_running_loop().create_task(
            reconnect()
        )

    async def stop(self) -> None:
        """Close the server, every connection, and all helper tasks."""
        self._closed = True
        for task in list(self._reconnect_tasks.values()):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for task in list(self._reader_tasks):
            task.cancel()
        await asyncio.gather(*self._reader_tasks, return_exceptions=True)
        self._reader_tasks.clear()

    # -- inbound --------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        try:
            first = await read_frame(reader)
            if first is None:
                writer.close()
                return
            if first.get("t") == "hello":
                await self._peer_loop(str(first.get("pid")), reader, writer)
            elif self._client_handler is not None:
                await self._client_handler(reader, writer, first)
            else:
                writer.close()
        except WireError:
            writer.close()
        except asyncio.CancelledError:
            # Shutdown path: stop() cancels connection handlers; exiting
            # quietly here keeps the event loop's logger silent.
            writer.close()

    async def _peer_loop(
        self,
        peer: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except WireError:
                    break
                if frame is None:
                    break
                if frame.get("t") != "msg":
                    continue
                message = frame_message(frame)
                if (message.sender, self.pid) in self._down:
                    # The link was cut while this frame was in flight.
                    self._dropped += 1
                    continue
                self.delivered += 1
                self._deliver(message)
        finally:
            writer.close()

    # -- the Transport contract ----------------------------------------------

    def fresh_uid(self) -> int:
        """Allocate a globally unique physical message id (see __init__)."""
        uid = self._uid_next
        self._uid_next += self._uid_stride
        return uid

    def send(  # noqa: PLR0913 -- the Transport contract has this many fields
        self,
        kind: str,
        sender: str,
        receiver: str,
        payload: Any,
        send_event_uid: int | None = None,
        sender_clock: int | None = None,
    ) -> Message:
        """Write one frame to the receiver's connection (or drop it)."""
        if sender != self.pid:
            raise ValueError(f"{self.pid} cannot send as {sender}")
        if receiver not in self.pids or receiver == self.pid:
            raise KeyError(f"no link {sender}->{receiver}")
        message = Message(
            uid=self.fresh_uid(),
            kind=kind,
            sender=sender,
            receiver=receiver,
            payload=payload,
            send_event_uid=send_event_uid,
            sender_clock=sender_clock,
        )
        self.sent_by_kind[kind] = self.sent_by_kind.get(kind, 0) + 1
        writer = self._writers.get(receiver)
        if (sender, receiver) in self._down or writer is None:
            # Cut link or no connection: the send happens but the frame is
            # lost on the wire (same contract as Network.send).
            self._dropped += 1
            return message
        try:
            writer.write(encode_frame(message_frame(message)))
        except (ConnectionError, RuntimeError, OSError):
            self._dropped += 1
            self._writers.pop(receiver, None)
            self._schedule_reconnect(receiver)
        return message

    def _check_incident(self, src: str, dst: str) -> None:
        if src == dst or src not in self.pids or dst not in self.pids:
            raise KeyError(f"no link {src}->{dst}")
        if self.pid not in (src, dst):
            raise KeyError(
                f"link {src}->{dst} is not incident to node {self.pid}"
            )

    def link_up(self, src: str, dst: str) -> bool:
        """Is the link up, as far as this endpoint knows?"""
        return (src, dst) not in self._down

    def cut_link(self, src: str, dst: str, heal_at: int | None = None) -> None:
        """Mask one directional link incident to this node."""
        self._check_incident(src, dst)
        self._down[(src, dst)] = heal_at

    def heal_link(self, src: str, dst: str) -> bool:
        """Unmask one directional link; returns whether it was down."""
        return self._down.pop((src, dst), "absent") != "absent"

    def cut(
        self, side: Iterable[str], heal_at: int | None = None
    ) -> tuple[tuple[str, str], ...]:
        """Cut every crossing link incident to this node (a node-scoped
        transport has no authority over links between other nodes)."""
        side_set = frozenset(side)
        links = tuple(
            sorted(
                (a, b)
                for a in self.pids
                for b in self.pids
                if a != b
                and self.pid in (a, b)
                and (a in side_set) != (b in side_set)
            )
        )
        for link in links:
            self._down[link] = heal_at
        return links

    def heal_all(self) -> tuple[tuple[str, str], ...]:
        """Unmask every link; returns the links healed, sorted."""
        healed = tuple(sorted(self._down))
        self._down.clear()
        return healed

    def heal_due(self, step_index: int) -> tuple[tuple[str, str], ...]:
        """Unmask links whose scheduled heal tick has arrived."""
        due = tuple(
            sorted(
                link
                for link, heal_at in self._down.items()
                if heal_at is not None and heal_at <= step_index
            )
        )
        for link in due:
            del self._down[link]
        return due

    def down_links(self) -> tuple[tuple[str, str], ...]:
        """Currently masked links, sorted."""
        return tuple(sorted(self._down))

    def total_sent(self) -> int:
        """Messages sent by this node (all kinds, dropped included)."""
        return sum(self.sent_by_kind.values())

    def total_dropped(self) -> int:
        """Frames lost at this endpoint (cut links + dead connections)."""
        return self._dropped

    def flush_all(self) -> int:
        """Nothing to flush: in-flight frames live in the kernel."""
        return 0

    def __repr__(self) -> str:
        return (
            f"SocketTransport({self.pid}, sent={self.total_sent()}, "
            f"delivered={self.delivered}, down={len(self._down)})"
        )


class ClusterNetwork:
    """Cluster-wide Transport facade over the node transports."""

    def __init__(self, transports: dict[str, SocketTransport]):
        self.pids = tuple(sorted(transports))
        self._transports = dict(transports)
        self._down: dict[tuple[str, str], int | None] = {}
        self._uid_next = 0
        self._uid_stride = len(self.pids) + 1
        self._flush_hooks: list[Callable[[], int]] = []

    def transport(self, pid: str) -> SocketTransport:
        """One node's transport endpoint."""
        return self._transports[pid]

    def add_flush_hook(self, hook: Callable[[], int]) -> None:
        """Register an inbox-drain callback for :meth:`flush_all`."""
        self._flush_hooks.append(hook)

    # -- the Transport contract ----------------------------------------------

    def fresh_uid(self) -> int:
        """Cluster-level uids: residue 0 mod n+1 (nodes use 1..n)."""
        self._uid_next += self._uid_stride
        return self._uid_next

    def send(  # noqa: PLR0913 -- the Transport contract has this many fields
        self,
        kind: str,
        sender: str,
        receiver: str,
        payload: Any,
        send_event_uid: int | None = None,
        sender_clock: int | None = None,
    ) -> Message:
        """Route the send through the owning node's socket."""
        return self._transports[sender].send(
            kind,
            sender,
            receiver,
            payload,
            send_event_uid=send_event_uid,
            sender_clock=sender_clock,
        )

    def _endpoints(self, src: str, dst: str) -> tuple[SocketTransport, ...]:
        if src == dst or src not in self._transports or dst not in self._transports:
            raise KeyError(f"no link {src}->{dst}")
        return (self._transports[src], self._transports[dst])

    def link_up(self, src: str, dst: str) -> bool:
        """Is the directional link up cluster-wide?"""
        return (src, dst) not in self._down

    def cut_link(self, src: str, dst: str, heal_at: int | None = None) -> None:
        """Cut one directional link at both endpoints."""
        for endpoint in self._endpoints(src, dst):
            endpoint.cut_link(src, dst, heal_at)
        self._down[(src, dst)] = heal_at

    def heal_link(self, src: str, dst: str) -> bool:
        """Heal one directional link at both endpoints."""
        for endpoint in self._endpoints(src, dst):
            endpoint.heal_link(src, dst)
        return self._down.pop((src, dst), "absent") != "absent"

    def cut(
        self, side: Iterable[str], heal_at: int | None = None
    ) -> tuple[tuple[str, str], ...]:
        """Partition fault: cut every crossing link, both directions."""
        side_set = frozenset(side)
        unknown = side_set - set(self.pids)
        if unknown:
            raise ValueError(
                f"unknown pids in partition side: {sorted(unknown)}"
            )
        links = tuple(
            sorted(
                (a, b)
                for a in self.pids
                for b in self.pids
                if a != b and (a in side_set) != (b in side_set)
            )
        )
        for link in links:
            self.cut_link(link[0], link[1], heal_at)
        return links

    def heal_all(self) -> tuple[tuple[str, str], ...]:
        """Heal every cut link; returns them sorted."""
        healed = tuple(sorted(self._down))
        for src, dst in healed:
            self.heal_link(src, dst)
        return healed

    def heal_due(self, step_index: int) -> tuple[tuple[str, str], ...]:
        """Heal every link whose scheduled heal tick has arrived."""
        due = tuple(
            sorted(
                link
                for link, heal_at in self._down.items()
                if heal_at is not None and heal_at <= step_index
            )
        )
        for src, dst in due:
            self.heal_link(src, dst)
        return due

    def down_links(self) -> tuple[tuple[str, str], ...]:
        """Currently cut links, sorted."""
        return tuple(sorted(self._down))

    def total_sent(self) -> int:
        """Messages sent cluster-wide."""
        return sum(t.total_sent() for t in self._transports.values())

    def total_dropped(self) -> int:
        """Frames lost cluster-wide."""
        return sum(t.total_dropped() for t in self._transports.values())

    def flush_all(self) -> int:
        """Drain every registered node inbox (the global-reset hook)."""
        return sum(hook() for hook in self._flush_hooks)

    def __repr__(self) -> str:
        return (
            f"ClusterNetwork(n={len(self.pids)}, sent={self.total_sent()}, "
            f"down={len(self._down)})"
        )
