"""Chaos for the live cluster: link cuts and heals at runtime.

The fault surface is the one the simulator campaigns already use -- the
per-link cut/heal masks of the :class:`~repro.runtime.transport.Transport`
contract -- applied to the :class:`~repro.service.transport.ClusterNetwork`
while real traffic flows.  Two modes, composable:

* a **scheduled outage** (deterministic): cut one node away from the rest
  at a fixed chaos tick and heal after a fixed number of ticks -- what the
  CI smoke uses to assert stall-then-recover behaviour;
* a **random monkey** (seeded): with some probability per tick, pick a
  victim node and cut it off for a random number of ticks.

All decisions are functions of the tick counter and an explicitly seeded
``random.Random`` -- never of the wall clock -- so a chaos schedule is
reproducible from ``(seed, tick count)`` alone.  Monotonic loop time is
used only to *pace* the ticks.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.service.transport import ClusterNetwork

#: Called with (kind, detail) for every chaos action, e.g.
#: ("chaos", "cut:p1 for 12 ticks").
ChaosReporter = Callable[[str, str], None]


@dataclass(frozen=True)
class ChaosConfig:
    """What the chaos layer does, and when."""

    tick_s: float = 0.05
    #: Deterministic outage: cut ``victim`` at ``cut_at_tick`` and heal
    #: ``outage_ticks`` later.  ``cut_at_tick=None`` disables it.
    cut_at_tick: int | None = None
    outage_ticks: int = 10
    victim: str | None = None
    #: Random monkey: per-tick cut probability while nothing is cut.
    #: 0 disables it.
    cut_probability: float = 0.0
    min_outage_ticks: int = 4
    max_outage_ticks: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if not 0 <= self.cut_probability <= 1:
            raise ValueError("cut_probability must be in [0, 1]")
        if self.min_outage_ticks > self.max_outage_ticks:
            raise ValueError("min_outage_ticks > max_outage_ticks")

    @property
    def enabled(self) -> bool:
        return self.cut_at_tick is not None or self.cut_probability > 0


class ChaosMonkey:
    """Drives the configured cuts and heals over a ClusterNetwork."""

    def __init__(
        self,
        network: ClusterNetwork,
        config: ChaosConfig,
        report: ChaosReporter,
    ):
        self.network = network
        self.config = config
        self._report = report
        self._rng = random.Random(config.seed)
        self.tick_count = 0
        self.cuts = 0
        self.heals = 0
        self._running = False
        self._task: asyncio.Task | None = None

    # -- one tick (pure of wall time; unit-testable synchronously) ------------

    def _cut(self, victim: str, outage_ticks: int) -> None:
        heal_at = self.tick_count + outage_ticks
        links = self.network.cut([victim], heal_at=heal_at)
        self.cuts += 1
        self._report(
            "chaos",
            f"cut:{victim} ({len(links)} links, {outage_ticks} ticks)",
        )

    def tick(self) -> None:
        """Advance the chaos clock one tick and act."""
        self.tick_count += 1
        healed = self.network.heal_due(self.tick_count)
        if healed:
            self.heals += 1
            pairs = ",".join(f"{a}->{b}" for a, b in healed)
            self._report("chaos", f"heal:{pairs}")
        cfg = self.config
        if cfg.cut_at_tick is not None and self.tick_count == cfg.cut_at_tick:
            victim = cfg.victim or self.network.pids[0]
            self._cut(victim, cfg.outage_ticks)
            return
        if (
            cfg.cut_probability > 0
            and not self.network.down_links()
            and self._rng.random() < cfg.cut_probability
        ):
            victim = self._rng.choice(self.network.pids)
            outage = self._rng.randint(
                cfg.min_outage_ticks, cfg.max_outage_ticks
            )
            self._cut(victim, outage)

    # -- pacing ---------------------------------------------------------------

    async def run(self) -> None:
        self._running = True
        while self._running:
            await asyncio.sleep(self.config.tick_s)
            self.tick()

    def start(self) -> asyncio.Task:
        if self._task is not None and not self._task.done():
            raise RuntimeError("chaos already running")
        self._task = asyncio.get_running_loop().create_task(
            self.run(), name="chaos"
        )
        return self._task

    async def stop(self, heal: bool = True) -> None:
        """Stop ticking; by default heal whatever is still cut."""
        self._running = False
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if heal and self.network.down_links():
            healed = self.network.heal_all()
            pairs = ",".join(f"{a}->{b}" for a, b in healed)
            self._report("chaos", f"heal:{pairs}")
