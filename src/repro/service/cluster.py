"""LocalCluster: the whole live service, assembled.

A :class:`LocalCluster` stands up ``n`` wrapped TME processes as real
socket endpoints on localhost -- the same
:class:`~repro.dsl.program.ProcessProgram` composition the simulator runs
(implementation + W' wrapper, built by :func:`~repro.tme.scenarios.
tme_programs`), each driven by a :class:`~repro.service.node.ServiceNode`,
fronted by a :class:`~repro.service.lockapi.LockFrontend`, and joined by a
:class:`~repro.service.transport.ClusterNetwork`.

Running in a single process is a deliberate choice, not a shortcut: it
gives the event trace a total order, which is what lets the online
:class:`~repro.service.monitor.LiveMonitor` evaluate ME1-ME3 exactly as
the simulator's offline checker would.  The sockets, frames, reconnects,
and kernel buffering are all real; only the observer is centralized.

The PR-5 recovery subsystem runs unchanged: :class:`RecoveryManager` was
written against the simulator but only ever touches ``.processes`` and
``.network`` -- the :class:`_ClusterFacade` provides exactly those two
attributes over the live cluster, and a periodic asyncio task plays the
role of the per-step hook (``step_index`` becomes the recovery tick).
Whatever state the manager mutates (forged exclusions, resets) is diffed
against the monitored variables and emitted into the event trace, so the
monitor's verdict covers recovery interventions too.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path

from repro.recovery.manager import RecoveryConfig, RecoveryManager
from repro.runtime.process import ProcessRuntime
from repro.service.chaos import ChaosConfig, ChaosMonkey
from repro.service.lockapi import LockFrontend
from repro.service.monitor import LiveMonitor, TraceWriter, monitored_vars
from repro.service.node import DEFAULT_WRAPPER_TICK_S, ServiceNode
from repro.service.transport import ClusterNetwork, SocketTransport
from repro.tme.client import ClientConfig
from repro.tme.scenarios import pids_for, tme_programs
from repro.tme.spec import TmeSpecReport
from repro.tme.wrapper import WrapperConfig

#: How often the recovery manager's hook fires, in seconds of loop time.
DEFAULT_RECOVERY_TICK_S = 0.05

#: Schema of the service-verdict JSON artifact.
VERDICT_SCHEMA_VERSION = 1

#: The node-level client workload: timers are armed by the lock API, so
#: delays just need to be nonzero (a zero think_delay would make a node
#: re-request the CS forever with no client demand).
_SERVICE_CLIENT = ClientConfig(think_delay=1, eat_delay=1, max_sessions=None)


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of a live cluster."""

    algorithm: str = "ra"
    n: int = 3
    theta: int = 8
    host: str = "127.0.0.1"
    #: 0 = ephemeral ports (tests); otherwise node i listens on base+i.
    base_port: int = 0
    wrapper_tick_s: float = DEFAULT_WRAPPER_TICK_S
    recovery: bool = True
    recovery_tick_s: float = DEFAULT_RECOVERY_TICK_S
    trace_path: str | None = None


class _ClusterFacade:
    """What :class:`RecoveryManager` sees: ``.processes`` and ``.network``."""

    def __init__(
        self,
        processes: dict[str, ProcessRuntime],
        network: ClusterNetwork,
    ):
        self.processes = processes
        self.network = network


class LocalCluster:
    """The assembled live service (see module docstring)."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        chaos: ChaosConfig | None = None,
        recovery_config: RecoveryConfig | None = None,
    ):
        self.config = config or ClusterConfig()
        cfg = self.config
        self.pids = pids_for(cfg.n)
        programs = tme_programs(
            cfg.algorithm,
            cfg.n,
            client=_SERVICE_CLIENT,
            wrapper=WrapperConfig(theta=cfg.theta),
        )
        self.runtimes: dict[str, ProcessRuntime] = {
            pid: ProcessRuntime(pid, programs[pid], self.pids)
            for pid in self.pids
        }
        self.nodes: dict[str, ServiceNode] = {}
        self.frontends: dict[str, LockFrontend] = {}
        transports: dict[str, SocketTransport] = {}
        for pid in self.pids:
            transport = SocketTransport(
                pid,
                self.pids,
                deliver=lambda message, p=pid: self.nodes[p].deliver(message),
                client_handler=(
                    lambda reader, writer, first, p=pid: self.frontends[
                        p
                    ].handle_client(reader, writer, first)
                ),
            )
            node = ServiceNode(
                self.runtimes[pid],
                transport,
                emit=lambda action, p=pid: self._on_step(p, action),
                wrapper_tick_s=cfg.wrapper_tick_s,
            )
            frontend = LockFrontend(node)
            node.on_settle = frontend.poll
            transports[pid] = transport
            self.nodes[pid] = node
            self.frontends[pid] = frontend
        self.network = ClusterNetwork(transports)
        for pid in self.pids:
            self.network.add_flush_hook(self.nodes[pid].drain_inbox)
        self.monitor = LiveMonitor(
            {pid: rt.variables for pid, rt in self.runtimes.items()}
        )
        self._writer: TraceWriter | None = None
        self.addresses: dict[str, tuple[str, int]] = {}
        self._facade = _ClusterFacade(self.runtimes, self.network)
        self.recovery: RecoveryManager | None = (
            RecoveryManager(recovery_config) if cfg.recovery else None
        )
        self._recovery_tick = 0
        self._recovery_task: asyncio.Task | None = None
        self.chaos: ChaosMonkey | None = (
            ChaosMonkey(self.network, chaos, self._mark)
            if chaos is not None and chaos.enabled
            else None
        )
        self._started = False

    # -- event plumbing -------------------------------------------------------

    def _on_step(self, pid: str, action: str) -> None:
        """A node executed one step: feed monitor and trace, in order."""
        variables = self.runtimes[pid].variables
        seq = self.monitor.events_seen  # seq of the event about to land
        self.monitor.on_event(pid, variables)
        if self._writer is not None:
            self._writer.event(seq, pid, action, variables)

    def _mark(self, kind: str, detail: str) -> None:
        """A state-free intervention (link cut/heal): trace only."""
        if self._writer is not None:
            self._writer.mark(self.monitor.events_seen, kind, detail)
        for node in self.nodes.values():
            node.kick()

    # -- recovery -------------------------------------------------------------

    def _recovery_step(self) -> None:
        """One hook firing of the recovery manager over the facade."""
        assert self.recovery is not None
        self._recovery_tick += 1
        before = {
            pid: monitored_vars(rt.variables)
            for pid, rt in self.runtimes.items()
        }
        actions = self.recovery.before_step(self._facade, self._recovery_tick)
        if not actions:
            return
        for action in actions:
            if self._writer is not None:
                self._writer.mark(
                    self.monitor.events_seen, "recover", action
                )
        # Any state the manager rewrote must reach the monitor as ordered
        # events, or the online and offline verdicts would diverge.
        for pid, rt in self.runtimes.items():
            if monitored_vars(rt.variables) != before[pid]:
                self._on_step(pid, "recover")
        for node in self.nodes.values():
            node.kick()

    async def _recovery_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.recovery_tick_s)
            self._recovery_step()

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> dict[str, tuple[str, int]]:
        """Bind, interconnect, and start everything; returns the node
        addresses clients can connect to."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        cfg = self.config
        if cfg.trace_path is not None:
            # one-time file open before any request is served; the loop is
            # not yet carrying latency-sensitive traffic at this point
            self._writer = TraceWriter.open(  # repro: lint-ok[AIO-BLOCK]
                Path(cfg.trace_path)
            )
            self._writer.header(
                {pid: rt.variables for pid, rt in self.runtimes.items()}
            )
        for i, pid in enumerate(self.pids):
            port = 0 if cfg.base_port == 0 else cfg.base_port + i
            self.addresses[pid] = await self.nodes[pid].transport.start(
                cfg.host, port
            )
        for pid in self.pids:
            self.nodes[pid].transport.set_peers(self.addresses)
        for pid in self.pids:
            await self.nodes[pid].transport.connect_peers()
        for pid in self.pids:
            self.nodes[pid].start()
        if self.recovery is not None:
            self._recovery_task = asyncio.get_running_loop().create_task(
                self._recovery_loop(), name="recovery"
            )
        if self.chaos is not None:
            self.chaos.start()
        return dict(self.addresses)

    async def stop(self) -> TmeSpecReport:
        """Stop everything and return the monitor's final verdict."""
        if self.chaos is not None:
            await self.chaos.stop()
        if self._recovery_task is not None:
            self._recovery_task.cancel()
            try:
                await self._recovery_task
            except asyncio.CancelledError:
                pass
            self._recovery_task = None
        for node in self.nodes.values():
            await node.stop()
        for node in self.nodes.values():
            await node.transport.stop()
        report = self.monitor.report()
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        return report

    # -- observability --------------------------------------------------------

    def client_ports(self) -> list[int]:
        """Ports (sorted by pid) a lock client may connect to."""
        return [self.addresses[pid][1] for pid in self.pids]

    def frontend_stats(self) -> dict[str, dict[str, int]]:
        """Per-node lock-frontend counters."""
        return {
            pid: frontend.stats.as_dict()
            for pid, frontend in sorted(self.frontends.items())
        }

    def total_grants(self) -> int:
        """Lock grants served cluster-wide."""
        return sum(f.stats.grants for f in self.frontends.values())

    def verdict_artifact(self, report: TmeSpecReport) -> dict:
        """The stamped service-verdict artifact the CI smoke asserts on."""
        from repro.campaign.stats import stamp_artifact

        payload = {
            "kind": "service-verdict",
            "algorithm": self.config.algorithm,
            "n": self.config.n,
            "theta": self.config.theta,
            "events": self.monitor.events_seen,
            "me1_violations": len(report.me1),
            "me3_violations": len(report.me3),
            "cs_entries": sum(r.entries for r in report.me2),
            "grants": self.total_grants(),
            "sent": self.network.total_sent(),
            "dropped": self.network.total_dropped(),
            "frontends": self.frontend_stats(),
        }
        return stamp_artifact(payload, VERDICT_SCHEMA_VERSION)
