"""Load generation against the live lock service.

Spins up ``clients`` concurrent lock clients (each one connection, spread
round-robin over the cluster's nodes), has each run acquire -> hold ->
release -> think cycles until an op budget or a deadline runs out, and
streams every grant's latency into the campaign's quantile/ECDF machinery
(:mod:`repro.campaign.stats`).

Timing uses the monotonic clock only, and only for *measurement and
pacing* -- nothing about the workload's decisions depends on time-of-day
(or on any unseeded randomness; the workload is deterministic given its
config, modulo scheduling).

The result serializes to a stamped JSON artifact
(``schema_version`` + content hash, :func:`~repro.campaign.stats.
stamp_artifact`) that the CI service smoke re-reads and asserts on.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.campaign.stats import LatencySummary, stamp_artifact
from repro.service.lockapi import LockClient, LockError

#: Schema of the loadgen JSON artifact.
LOADGEN_SCHEMA_VERSION = 1

#: Delay before a client retries a failed connection.
_RECONNECT_DELAY_S = 0.05


@dataclass(frozen=True)
class LoadgenConfig:
    """Workload shape for one loadgen run."""

    ports: tuple[int, ...]
    host: str = "127.0.0.1"
    clients: int = 50
    #: Stop after this much wall time (monotonic), if set.
    duration_s: float | None = None
    #: Per-client op budget, if set.  At least one bound is required.
    ops_per_client: int | None = None
    #: Critical-section hold time and inter-op think time, per client.
    hold_s: float = 0.0
    think_s: float = 0.0
    #: A single acquire stalled longer than this counts as a timeout and
    #: the client reconnects (keeps clients live through partitions).
    acquire_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if not self.ports:
            raise ValueError("need at least one port")
        if self.clients < 1:
            raise ValueError("need at least one client")
        if self.duration_s is None and self.ops_per_client is None:
            raise ValueError("set duration_s or ops_per_client (or both)")


@dataclass
class LoadgenResult:
    """What a loadgen run measured."""

    config: LoadgenConfig
    grants: int = 0
    timeouts: int = 0
    errors: int = 0
    wall_s: float = 0.0
    #: Per-grant acquire->grant latencies, in milliseconds.
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Grants per second over the whole run."""
        return self.grants / self.wall_s if self.wall_s > 0 else 0.0

    def latency_summary(self) -> LatencySummary:
        return LatencySummary.of(self.latencies_ms)

    def artifact(self) -> dict:
        """The stamped JSON artifact (see module docstring)."""
        summary = self.latency_summary()
        payload = {
            "kind": "loadgen",
            "config": {
                "host": self.config.host,
                "ports": list(self.config.ports),
                "clients": self.config.clients,
                "duration_s": self.config.duration_s,
                "ops_per_client": self.config.ops_per_client,
                "hold_s": self.config.hold_s,
                "think_s": self.config.think_s,
            },
            "grants": self.grants,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "wall_s": self.wall_s,
            "throughput_grants_per_s": self.throughput,
            "latency_ms": {
                "count": summary.count,
                "mean": summary.mean,
                "p50": summary.p50,
                "p95": summary.p95,
                "max": summary.maximum,
                "cdf": [list(point) for point in summary.cdf],
            },
        }
        return stamp_artifact(payload, LOADGEN_SCHEMA_VERSION)

    def describe(self) -> str:
        summary = self.latency_summary()
        return (
            f"grants: {self.grants} ({self.throughput:.1f}/s over "
            f"{self.wall_s:.1f}s, {self.timeouts} timeouts, "
            f"{self.errors} errors); latency ms: "
            f"mean {summary.mean:.2f}  p50 {summary.p50:.2f}  "
            f"p95 {summary.p95:.2f}  max {summary.maximum:.2f}"
        )


async def _client_loop(
    index: int,
    config: LoadgenConfig,
    result: LoadgenResult,
    deadline: float | None,
) -> None:
    port = config.ports[index % len(config.ports)]
    client = LockClient()
    connected = False
    ops_left = config.ops_per_client

    def time_left() -> float | None:
        if deadline is None:
            return None
        return deadline - time.monotonic()

    try:
        while ops_left is None or ops_left > 0:
            remaining = time_left()
            if remaining is not None and remaining <= 0:
                return
            if not connected:
                try:
                    await client.connect(config.host, port)
                    connected = True
                except OSError:
                    result.errors += 1
                    await asyncio.sleep(_RECONNECT_DELAY_S)
                    continue
            timeout = config.acquire_timeout_s
            if remaining is not None:
                timeout = min(timeout, max(remaining, 0.01))
            started = time.monotonic()
            try:
                req_id = await asyncio.wait_for(
                    client.acquire(), timeout=timeout
                )
            except asyncio.TimeoutError:
                result.timeouts += 1
                # The pending acquire is still queued server-side; drop the
                # connection so the frontend marks it gone.
                await client.close()
                connected = False
                continue
            except (LockError, OSError):
                result.errors += 1
                await client.close()
                connected = False
                await asyncio.sleep(_RECONNECT_DELAY_S)
                continue
            result.latencies_ms.append(
                (time.monotonic() - started) * 1000.0
            )
            result.grants += 1
            if ops_left is not None:
                ops_left -= 1
            try:
                if config.hold_s > 0:
                    await asyncio.sleep(config.hold_s)
                await client.release(req_id)
            except (LockError, OSError):
                result.errors += 1
                await client.close()
                connected = False
                continue
            if config.think_s > 0:
                await asyncio.sleep(config.think_s)
    finally:
        await client.close()


async def run_loadgen(config: LoadgenConfig) -> LoadgenResult:
    """Run the workload to completion and return the measurements."""
    result = LoadgenResult(config)
    started = time.monotonic()
    deadline = (
        started + config.duration_s if config.duration_s is not None else None
    )
    tasks = [
        asyncio.ensure_future(_client_loop(i, config, result, deadline))
        for i in range(config.clients)
    ]
    try:
        await asyncio.gather(*tasks)
    finally:
        for task in tasks:
            task.cancel()
    result.wall_s = time.monotonic() - started
    return result
