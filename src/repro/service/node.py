"""One live node: a ProcessRuntime driven by an asyncio event loop.

The simulator advances a process when its scheduler picks one of the
process's enabled steps; a live node advances itself.  :class:`ServiceNode`
runs the *same* :class:`~repro.runtime.process.ProcessRuntime` (protocol +
wrapper, composed exactly as in the simulator) with the event loop as the
scheduler:

* **Deliveries are immediate.**  Frames arriving from the transport are
  queued on the node's inbox and drained as soon as the loop wakes; the
  kernel's socket buffers play the role of the simulator's channels, and
  arrival order is whatever the wire produced (the asynchronous model
  assumes nothing more).

* **Protocol actions are eager.**  Enabled internal actions of the
  implementation (``ra:request``, ``ra:grant``, ...) run until none is
  enabled -- a node never sits on an enabled grant.

* **Wrapper actions are paced.**  In the simulator, W' counts its theta
  timeout in interleaved scheduler steps; at CPU speed that would be a
  retransmit storm.  Here each ``W:``-prefixed action (tick or correct)
  runs at most once per ``wrapper_tick_s`` of monotonic loop time, making
  ``theta * wrapper_tick_s`` the real-time correction period.

* **Client tick actions do not run at all.**  The TME client
  (``client:think-tick`` / ``client:eat-tick``) models the *environment*;
  in the live service the environment is real -- the lock API
  (:mod:`repro.service.lockapi`) implements the Client Spec by setting the
  timers directly when callers acquire and release.

Every executed step reports through the ``emit`` callback so the cluster
can stamp a totally ordered event trace for the online monitor.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable

from repro.dsl.guards import Effect, GuardedAction
from repro.runtime.messages import Message
from repro.runtime.process import LIVE, RECOVERING, ProcessRuntime
from repro.service.transport import SocketTransport

#: Real-time length of one wrapper scheduler step (see module docstring).
DEFAULT_WRAPPER_TICK_S = 0.005

#: Idle wait between loop wake-ups when nothing is pending.
_IDLE_WAIT_S = 0.05

#: Called after each executed step with the action (or handler) name.
EmitFn = Callable[[str], None]


class ServiceNode:
    """One process of the live cluster (see module docstring)."""

    def __init__(
        self,
        runtime: ProcessRuntime,
        transport: SocketTransport,
        emit: EmitFn,
        wrapper_tick_s: float = DEFAULT_WRAPPER_TICK_S,
    ):
        self.pid = runtime.pid
        self.runtime = runtime
        self.transport = transport
        self._emit = emit
        self.wrapper_tick_s = wrapper_tick_s
        self._inbox: asyncio.Queue[Message] = asyncio.Queue()
        self._wake = asyncio.Event()
        self._running = False
        self._task: asyncio.Task | None = None
        self.steps_executed = 0
        #: Called (with no arguments) whenever the loop settles, i.e. after
        #: every batch of steps; the lock frontend hooks in here.  Returns
        #: whether it changed state (so the loop re-evaluates guards).
        self.on_settle: Callable[[], bool] | None = None

    # -- transport-facing -----------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Inbox a message from the wire (the transport's deliver hook)."""
        self._inbox.put_nowait(message)
        self._wake.set()

    def kick(self) -> None:
        """Wake the loop after out-of-band state changes (lock frontend
        timer writes, recovery interventions)."""
        self._wake.set()

    def drain_inbox(self) -> int:
        """Drop all queued, undelivered messages (the cluster registers
        this as the transport's flush hook for global resets)."""
        dropped = 0
        while True:
            try:
                self._inbox.get_nowait()
            except asyncio.QueueEmpty:
                return dropped
            dropped += 1

    # -- stepping -------------------------------------------------------------

    def _apply_sends(self, effect: Effect) -> None:
        clock = self.runtime.variables.get("lc")
        sender_clock = clock if isinstance(clock, int) and clock >= 0 else None
        for send in effect.sends:
            self.transport.send(
                send.kind,
                self.pid,
                send.receiver,
                send.payload,
                sender_clock=sender_clock,
            )

    def _finish_step(self, label: str, effect: Effect | None) -> None:
        if self.runtime.status == RECOVERING:
            self.runtime.status = LIVE
        self.steps_executed += 1
        if effect is not None:
            self._apply_sends(effect)
        self._emit(label)

    def _deliver_one(self, message: Message) -> None:
        effect = self.runtime.execute_receive(message)
        handler = self.runtime.program.receive_action_for(message.kind)
        label = handler.name if handler else f"recv:{message.kind}"
        self._finish_step(label, effect)

    def _execute_internal(self, action: GuardedAction) -> None:
        effect = self.runtime.execute_internal(action)
        self._finish_step(action.name, effect)

    def _next_protocol_action(self) -> GuardedAction | None:
        """One enabled internal action that is neither client-environment
        nor wrapper (those are handled by the lock API and by pacing)."""
        for action in self.runtime.enabled_internal_actions():
            if action.name.startswith(("client:", "W:")):
                continue
            return action
        return None

    def _next_wrapper_action(self) -> GuardedAction | None:
        for action in self.runtime.enabled_internal_actions():
            if action.name.startswith("W:"):
                return action
        return None

    def step_batch(self, wrapper_due: bool) -> bool:
        """Drain the inbox and run eager actions until quiescent; run at
        most one wrapper action when the pacing tick is due.  Returns
        whether anything executed."""
        ran = False
        progressed = True
        while progressed:
            progressed = False
            if not self.runtime.is_live:
                self.drain_inbox()
                break
            while True:
                try:
                    message = self._inbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self._deliver_one(message)
                progressed = True
            action = self._next_protocol_action()
            if action is not None:
                self._execute_internal(action)
                progressed = True
            if wrapper_due:
                wrapper_action = self._next_wrapper_action()
                if wrapper_action is not None:
                    self._execute_internal(wrapper_action)
                    progressed = True
                    wrapper_due = False
            if self.on_settle is not None and self.on_settle():
                progressed = True
            ran = ran or progressed
        return ran

    # -- the loop -------------------------------------------------------------

    async def run(self) -> None:
        """Drive the node until :meth:`stop` (the cluster's node task)."""
        self._running = True
        loop = asyncio.get_running_loop()
        next_wrapper = loop.time() + self.wrapper_tick_s
        while self._running:
            now = loop.time()
            wrapper_due = now >= next_wrapper
            if wrapper_due:
                next_wrapper = now + self.wrapper_tick_s
            self.step_batch(wrapper_due)
            # Sleep until woken (inbox arrival / kick) or the next wrapper
            # tick, whichever comes first.
            timeout = min(max(next_wrapper - loop.time(), 0.0), _IDLE_WAIT_S)
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()

    def start(self) -> asyncio.Task:
        """Spawn the node loop as a task on the running event loop."""
        if self._task is not None and not self._task.done():
            raise RuntimeError(f"node {self.pid} already running")
        self._task = asyncio.get_running_loop().create_task(
            self.run(), name=f"node:{self.pid}"
        )
        return self._task

    async def stop(self) -> None:
        """Stop the loop and wait for the task to unwind."""
        self._running = False
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None

    def __repr__(self) -> str:
        return f"ServiceNode({self.pid}, steps={self.steps_executed})"
