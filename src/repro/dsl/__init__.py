"""Guarded-command DSL: the paper's implementation language (Section 2.1)."""

from repro.dsl.guards import (
    Effect,
    GuardedAction,
    LocalView,
    Send,
    action,
    always_enabled,
    sends_to_all,
)
from repro.dsl.program import ProcessProgram, enabled_actions, merge_initial_vars

__all__ = [
    "Effect",
    "GuardedAction",
    "LocalView",
    "ProcessProgram",
    "Send",
    "action",
    "always_enabled",
    "enabled_actions",
    "merge_initial_vars",
    "sends_to_all",
]
