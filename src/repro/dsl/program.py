"""Process programs: named collections of guarded actions.

A :class:`ProcessProgram` is the unit the runtime executes and the unit the
paper wraps: a set of guarded actions over a declared set of local variables.
Wrappers are themselves process programs; box composition at the process
level (``P [] W``) is simply the union of the action sets --- matching the
core-layer semantics of :func:`repro.core.box.box` (transition-relation
union).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.dsl.guards import GuardedAction, LocalView


@dataclass(frozen=True)
class ProcessProgram:
    """A guarded-command program for one process.

    Parameters
    ----------
    name:
        Program name (e.g. ``"RA_ME"``); processes executing it get their
        own identity separately.
    initial_vars:
        Variable valuation for a *properly initialized* process.  The fault
        model may replace it arbitrarily ("improper initialization").
    actions:
        Internal guarded actions, attempted by the scheduler.
    receive_actions:
        Actions keyed by message kind; enabled when a matching message is at
        the head of an incoming channel.
    """

    name: str
    initial_vars: Mapping[str, Any] = field(default_factory=dict)
    actions: tuple[GuardedAction, ...] = ()
    receive_actions: tuple[GuardedAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "initial_vars", dict(self.initial_vars))
        object.__setattr__(self, "actions", tuple(self.actions))
        object.__setattr__(self, "receive_actions", tuple(self.receive_actions))
        for act in self.receive_actions:
            if act.message_kind is None:
                raise ValueError(
                    f"receive action {act.name!r} must declare a message_kind"
                )
        names = [a.name for a in self.actions + self.receive_actions]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate action names in program {self.name!r}")

    def receive_action_for(self, kind: str) -> GuardedAction | None:
        """The receive handler registered for a message kind, if any."""
        for act in self.receive_actions:
            if act.message_kind == kind:
                return act
        return None

    def action_names(self) -> tuple[str, ...]:
        """All action names (internal first, then receive)."""
        return tuple(a.name for a in self.actions + self.receive_actions)

    def composed_with(self, other: "ProcessProgram", name: str | None = None) -> "ProcessProgram":
        """Process-level box composition: union of action sets.

        Variable spaces are merged; on clashes the *left* program's initial
        value wins (wrappers must not re-declare program variables -- the
        graybox wrapper only reads the Lspec interface, see
        :mod:`repro.tme.wrapper`).
        """
        merged_vars = dict(other.initial_vars)
        merged_vars.update(self.initial_vars)
        return ProcessProgram(
            name or f"({self.name} [] {other.name})",
            merged_vars,
            self.actions + other.actions,
            self.receive_actions + other.receive_actions,
        )


def enabled_actions(
    program: ProcessProgram, view: LocalView
) -> list[GuardedAction]:
    """The internal actions of ``program`` whose guards hold in ``view``."""
    return [a for a in program.actions if a.enabled(view)]


def merge_initial_vars(programs: Iterable[ProcessProgram]) -> dict[str, Any]:
    """Union of initial valuations; later programs win on clashes."""
    merged: dict[str, Any] = {}
    for p in programs:
        merged.update(p.initial_vars)
    return merged
