"""Process programs: named collections of guarded actions.

A :class:`ProcessProgram` is the unit the runtime executes and the unit the
paper wraps: a set of guarded actions over a declared set of local variables.
Wrappers are themselves process programs; box composition at the process
level (``P [] W``) is simply the union of the action sets --- matching the
core-layer semantics of :func:`repro.core.box.box` (transition-relation
union).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.dsl.guards import GuardedAction, LocalView


@dataclass(frozen=True)
class ProcessProgram:
    """A guarded-command program for one process.

    Parameters
    ----------
    name:
        Program name (e.g. ``"RA_ME"``); processes executing it get their
        own identity separately.
    initial_vars:
        Variable valuation for a *properly initialized* process.  The fault
        model may replace it arbitrarily ("improper initialization").
    actions:
        Internal guarded actions, attempted by the scheduler.
    receive_actions:
        Actions keyed by message kind; enabled when a matching message is at
        the head of an incoming channel.
    """

    name: str
    initial_vars: Mapping[str, Any] = field(default_factory=dict)
    actions: tuple[GuardedAction, ...] = ()
    receive_actions: tuple[GuardedAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "initial_vars", dict(self.initial_vars))
        object.__setattr__(self, "actions", tuple(self.actions))
        object.__setattr__(self, "receive_actions", tuple(self.receive_actions))
        for act in self.receive_actions:
            if act.message_kind is None:
                raise ValueError(
                    f"receive action {act.name!r} must declare a message_kind"
                )
        names = [a.name for a in self.actions + self.receive_actions]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate action names in program {self.name!r}")

    def variables(self) -> frozenset[str]:
        """The declared variable space (the corruptible state, Section 3.1)."""
        return frozenset(self.initial_vars)

    def validate_writes(self) -> None:
        """Reject actions that write variables outside ``initial_vars``.

        This closes the historic ``__post_init__`` gap: an undeclared write
        would materialize a variable mid-run, changing snapshot shape and
        hiding state from the fault model.  The check needs the static
        inference of :mod:`repro.lint` (actions are opaque closures), so it
        is explicit rather than part of construction -- campaigns build
        thousands of programs per run.  ``python -m repro lint`` reports the
        same violations as ``WRITE-UNDECLARED`` findings.
        """
        from repro.lint import analyze_action

        declared = self.variables()
        for act in self.actions + self.receive_actions:
            sets = analyze_action(act).sets
            if sets.writes_unknown:
                continue  # unbounded writes are the lint's GRAY/INF domain
            undeclared = sorted(sets.writes - declared)
            if undeclared:
                raise ValueError(
                    f"action {act.name!r} of program {self.name!r} writes "
                    f"undeclared variable(s) {undeclared}; declare them in "
                    "initial_vars"
                )

    def receive_action_for(self, kind: str) -> GuardedAction | None:
        """The receive handler registered for a message kind, if any."""
        for act in self.receive_actions:
            if act.message_kind == kind:
                return act
        return None

    def action_names(self) -> tuple[str, ...]:
        """All action names (internal first, then receive)."""
        return tuple(a.name for a in self.actions + self.receive_actions)

    def composed_with(self, other: "ProcessProgram", name: str | None = None) -> "ProcessProgram":
        """Process-level box composition: union of action sets.

        Variable spaces are merged; on clashes the *left* program's initial
        value wins (wrappers must not re-declare program variables -- the
        graybox wrapper only reads the Lspec interface, see
        :mod:`repro.tme.wrapper`).
        """
        merged_vars = dict(other.initial_vars)
        merged_vars.update(self.initial_vars)
        return ProcessProgram(
            name or f"({self.name} [] {other.name})",
            merged_vars,
            self.actions + other.actions,
            self.receive_actions + other.receive_actions,
        )


def enabled_actions(
    program: ProcessProgram, view: LocalView
) -> list[GuardedAction]:
    """The internal actions of ``program`` whose guards hold in ``view``."""
    return [a for a in program.actions if a.enabled(view)]


def merge_initial_vars(programs: Iterable[ProcessProgram]) -> dict[str, Any]:
    """Union of initial valuations; later programs win on clashes."""
    merged: dict[str, Any] = {}
    for p in programs:
        merged.update(p.initial_vars)
    return merged
