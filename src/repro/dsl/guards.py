"""Guarded commands: the paper's implementation-description language.

The paper describes implementations in Dijkstra's guarded-command notation
(``guard -> statement``) and specifications in UNITY; both are fusion closed
(Section 2.1).  A :class:`GuardedAction` is a named pair of

* a *guard*: a predicate over the process's local view, and
* a *body*: a function that, given the local view, returns the *effects* to
  apply (state updates and messages to send).

Actions never mutate state directly -- they return :class:`Effect` values
that the runtime applies atomically.  This keeps action execution pure,
makes traces replayable, and lets fault injectors interpose between decision
and application.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Send:
    """Effect: enqueue a ``kind`` message with ``payload`` to ``receiver``."""

    receiver: str
    kind: str
    payload: Any


@dataclass(frozen=True)
class Effect:
    """The atomic outcome of executing one guarded action.

    ``updates`` maps local variable names to new values; ``sends`` lists the
    messages to enqueue, in order (order matters on FIFO channels).
    """

    updates: Mapping[str, Any] = field(default_factory=dict)
    sends: tuple[Send, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "updates", dict(self.updates))
        object.__setattr__(self, "sends", tuple(self.sends))

    @staticmethod
    def none() -> "Effect":
        """The empty effect (no updates, no sends)."""
        return Effect()

    def writes(self) -> frozenset[str]:
        """The variables this effect assigns (the runtime's write set)."""
        return frozenset(self.updates)

    def merged_with(self, other: "Effect") -> "Effect":
        """Sequential merge: ``other``'s updates win; sends concatenate."""
        merged = dict(self.updates)
        merged.update(other.updates)
        return Effect(merged, self.sends + other.sends)


class LocalView:
    """Read-only view of a process's local variables handed to guards/bodies.

    Attribute access reads variables (``view.h``, ``view.req``); item access
    works for non-identifier names (``view["j.REQ_k"]``).
    """

    __slots__ = ("_vars",)

    def __init__(self, variables: Mapping[str, Any]):
        object.__setattr__(self, "_vars", dict(variables))

    def __getattr__(self, name: str) -> Any:
        try:
            return self._vars[name]
        except KeyError:
            raise AttributeError(name) from None

    def __getitem__(self, name: str) -> Any:
        return self._vars[name]

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("LocalView is read-only; return updates in an Effect")

    def as_dict(self) -> dict[str, Any]:
        """A mutable copy of the viewed variables."""
        return dict(self._vars)

    def __repr__(self) -> str:
        return f"LocalView({self._vars!r})"


Guard = Callable[[LocalView], bool]
Body = Callable[[LocalView], Effect]


@dataclass(frozen=True)
class GuardedAction:
    """``name :: guard -> body``.

    ``message_kind`` marks receive-actions: the runtime enables them only
    when a message of that kind is at the head of some incoming channel, and
    passes the message to the body via the reserved ``_msg`` / ``_sender``
    variables in the view.
    """

    name: str
    guard: Guard
    body: Body
    message_kind: str | None = None

    def enabled(self, view: LocalView) -> bool:
        """Evaluate the guard."""
        return bool(self.guard(view))

    def execute(self, view: LocalView) -> Effect:
        """Run the body (guard must hold)."""
        if not self.enabled(view):
            raise RuntimeError(f"action {self.name!r} executed while disabled")
        return self.body(view)

    def reads(self) -> frozenset[str] | None:
        """Statically inferred read set (variables + ``_``-meta), or ``None``
        when inference cannot bound it.

        Delegates to :mod:`repro.lint` so the runtime and the verifier share
        one source of truth; reads routed through a published interface
        adapter are *not* included (they belong to the adapter's Lspec
        conformance, see :mod:`repro.lint.interference`).
        """
        from repro.lint import analyze_action

        sets = analyze_action(self).sets
        if sets.reads_unknown:
            return None
        return frozenset(sets.raw_reads | sets.meta_reads)

    def writes(self) -> frozenset[str] | None:
        """Statically inferred write set, or ``None`` when unbounded."""
        from repro.lint import analyze_action

        sets = analyze_action(self).sets
        if sets.writes_unknown:
            return None
        return frozenset(sets.writes)

    def __repr__(self) -> str:
        kind = f", on={self.message_kind!r}" if self.message_kind else ""
        return f"GuardedAction({self.name!r}{kind})"


def action(
    name: str,
    guard: Guard,
    body: Body,
    message_kind: str | None = None,
) -> GuardedAction:
    """Convenience constructor mirroring the paper's ``guard -> stmt``."""
    return GuardedAction(name, guard, body, message_kind)


def always_enabled(_view: LocalView) -> bool:
    """The trivially true guard."""
    return True


def sends_to_all(
    peers: Iterable[str], kind: str, make_payload: Callable[[str], Any]
) -> tuple[Send, ...]:
    """The paper's ``(forall k : k != j : send(..., j, k))`` broadcast."""
    return tuple(Send(k, kind, make_payload(k)) for k in peers)
