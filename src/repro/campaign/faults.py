"""The campaign's fault layer: decide -> record -> apply, then replay.

The probabilistic injectors in :mod:`repro.faults.message_faults` mutate the
simulator directly, which makes their effects impossible to mask
individually during counterexample shrinking.  The campaign therefore
factors fault injection into *concrete operations* (lose / duplicate /
corrupt message at a channel index, overwrite process variables) decided by
one RNG stream:

* :class:`DecidingFaults` rolls the Section 3.1 fault classes each step
  with the same per-step probabilities and victim weighting as
  :func:`repro.tme.scenarios.standard_fault_campaign`, records every dealt
  operation as a :class:`~repro.campaign.record.FaultDecision`, and applies
  it;
* :class:`ReplayFaults` applies a recorded (possibly masked) operation
  list with no RNG at all.  Operations whose victim no longer exists --
  the schedule diverged after an earlier mask -- are skipped and counted.

Both are plain :class:`~repro.faults.injector.FaultInjector` hooks, so the
trial wraps them in :class:`~repro.faults.injector.Windowed` exactly like
every other experiment realizes "any finite number of faults".
"""

from __future__ import annotations

import random
from collections.abc import Collection, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.campaign.record import FaultDecision
from repro.faults.injector import FaultInjector
from repro.tme.scenarios import scramble_tme_state, tme_message_corrupter

if TYPE_CHECKING:
    from repro.runtime.simulator import Simulator


@dataclass(frozen=True)
class FaultRates:
    """Per-step strike probabilities of the four Section 3.1 fault classes
    (defaults match :class:`repro.analysis.experiments.CampaignSettings`)."""

    loss: float = 0.15
    duplication: float = 0.10
    corruption: float = 0.10
    state_corruption: float = 0.05

    def scaled(self, factor: float) -> "FaultRates":
        """Rates at a different fault intensity (probabilities capped)."""
        cap = lambda p: min(0.95, p * factor)  # noqa: E731
        return FaultRates(
            loss=cap(self.loss),
            duplication=cap(self.duplication),
            corruption=cap(self.corruption),
            state_corruption=cap(self.state_corruption),
        )


@dataclass(frozen=True)
class ChurnRates:
    """Per-step strike probabilities of the crash/partition fault classes.

    Churn rolls are *appended* after the four Section 3.1 classes and only
    when a spec opts in, so every pre-churn campaign consumes its RNG
    stream -- and therefore produces its trace digest -- unchanged.
    """

    crash_restart: float = 0.02
    crash_stop: float = 0.0
    partition: float = 0.01
    heal: float = 0.0
    #: Steps a crash-restart victim stays down before reviving.
    downtime: int = 40
    #: Steps until a partition auto-heals (``None`` = stays cut until an
    #: explicit :class:`HealNet` strikes).
    heal_after: int | None = 60

    def scaled(self, factor: float) -> "ChurnRates":
        """Rates at a different churn intensity (durations unchanged)."""
        cap = lambda p: min(0.95, p * factor)  # noqa: E731
        return ChurnRates(
            crash_restart=cap(self.crash_restart),
            crash_stop=cap(self.crash_stop),
            partition=cap(self.partition),
            heal=cap(self.heal),
            downtime=self.downtime,
            heal_after=self.heal_after,
        )


# ---------------------------------------------------------------------------
# Concrete, replayable operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoseMessage:
    """Drop the message at ``index`` of channel ``src -> dst``."""

    src: str
    dst: str
    index: int

    def describe(self) -> str:
        return f"lose {self.src}->{self.dst}[{self.index}]"


@dataclass(frozen=True)
class DuplicateMessage:
    """Re-enqueue a copy of the message at ``index`` of ``src -> dst``."""

    src: str
    dst: str
    index: int

    def describe(self) -> str:
        return f"duplicate {self.src}->{self.dst}[{self.index}]"


@dataclass(frozen=True)
class CorruptMessage:
    """Overwrite kind/payload of the message at ``index`` of ``src -> dst``."""

    src: str
    dst: str
    index: int
    kind: str
    payload: Any

    def describe(self) -> str:
        return (
            f"corrupt {self.src}->{self.dst}[{self.index}] "
            f"to ({self.kind}, {self.payload!r})"
        )


@dataclass(frozen=True)
class CorruptState:
    """Overwrite ``pid``'s variables with the recorded valuation."""

    pid: str
    updates: tuple[tuple[str, Any], ...]

    def describe(self) -> str:
        names = ",".join(name for name, _value in self.updates)
        return f"scramble {self.pid}.{{{names}}}"


@dataclass(frozen=True)
class CrashProcess:
    """Crash ``pid``.  ``downtime`` is the steps until the scheduled restart
    (``None`` = crash-stop); ``restart_vars`` is the improperly initialized
    valuation the restart re-enters from, recorded at decision time so
    replays restart bit-for-bit identically."""

    pid: str
    downtime: int | None
    restart_vars: tuple[tuple[str, Any], ...] | None

    def describe(self) -> str:
        if self.downtime is None:
            return f"crash-stop {self.pid}"
        return f"crash {self.pid} (downtime {self.downtime})"


@dataclass(frozen=True)
class PartitionNet:
    """Cut every link between ``side`` and its complement; ``heal_after``
    steps later the cut heals on its own (``None`` = until a HealNet)."""

    side: tuple[str, ...]
    heal_after: int | None

    def describe(self) -> str:
        when = (
            f"heal after {self.heal_after}"
            if self.heal_after is not None
            else "unhealed"
        )
        return f"partition {{{','.join(self.side)}}} ({when})"


@dataclass(frozen=True)
class HealNet:
    """Bring every cut link back up."""

    def describe(self) -> str:
        return "heal all links"


FaultOp = (
    LoseMessage
    | DuplicateMessage
    | CorruptMessage
    | CorruptState
    | CrashProcess
    | PartitionNet
    | HealNet
)


def apply_op(simulator: "Simulator", op: FaultOp) -> str | None:
    """Apply one recorded operation; ``None`` if its victim is gone."""
    if isinstance(op, CorruptState):
        if op.pid not in simulator.processes:
            return None
        if not simulator.processes[op.pid].is_live:
            return None
        simulator.processes[op.pid].corrupt(dict(op.updates))
        return f"state-corrupt: {op.describe()}"
    if isinstance(op, CrashProcess):
        proc = simulator.processes.get(op.pid)
        if proc is None or not proc.is_live:
            return None
        restart_at = (
            simulator.step_index + op.downtime
            if op.downtime is not None
            else None
        )
        restart_vars = (
            dict(op.restart_vars) if op.restart_vars is not None else None
        )
        dropped = simulator.crash_process(
            op.pid, restart_at=restart_at, restart_vars=restart_vars
        )
        return f"crash: {op.describe()} (mail lost: {dropped})"
    if isinstance(op, PartitionNet):
        heal_at = (
            simulator.step_index + op.heal_after
            if op.heal_after is not None
            else None
        )
        links = simulator.network.cut(op.side, heal_at=heal_at)
        if not links:
            return None
        return f"partition: {op.describe()} ({len(links)} links)"
    if isinstance(op, HealNet):
        healed = simulator.network.heal_all()
        if not healed:
            return None
        return f"heal: {len(healed)} links up"
    chan = simulator.network.channel(op.src, op.dst)
    if op.index >= len(chan):
        return None
    if isinstance(op, LoseMessage):
        msg = chan.drop_at(op.index)
        return f"loss: {msg.kind} {op.src}->{op.dst}"
    if isinstance(op, DuplicateMessage):
        dup = chan.duplicate_at(op.index, simulator.network.fresh_uid())
        return f"dup: {dup.kind} {op.src}->{op.dst}"
    uid = simulator.network.fresh_uid()
    msg = chan.corrupt_at(
        op.index, lambda m: m.corrupted(uid, kind=op.kind, payload=op.payload)
    )
    return f"corrupt: {msg.kind} {op.src}->{op.dst}"


# ---------------------------------------------------------------------------
# The deciding injector (free runs)
# ---------------------------------------------------------------------------


class DecidingFaults(FaultInjector):
    """Roll, record, and apply the four fault classes each step.

    One step can deal up to one fault of each class, decided in a fixed
    order (loss, duplication, corruption, state corruption, then -- only
    when ``churn`` is set -- crash-restart, crash-stop, partition, heal) so
    the RNG stream is consumed identically on every run of the same seed.
    """

    def __init__(
        self,
        rng: random.Random,
        rates: FaultRates,
        log: list | None = None,
        churn: ChurnRates | None = None,
    ):
        self.rng = rng
        self.rates = rates
        self.log = log
        self.churn = churn
        self.count = 0

    def _victim(self, simulator: "Simulator") -> tuple[str, str, int] | None:
        """Pick (src, dst, index) uniformly over all in-flight messages."""
        channels = simulator.network.nonempty_channels()
        if not channels:
            return None
        weights = [len(c) for c in channels]
        chan = self.rng.choices(channels, weights=weights, k=1)[0]
        return chan.src, chan.dst, self.rng.randrange(len(chan))

    def _decide(self, simulator: "Simulator") -> list[FaultOp]:
        ops: list[FaultOp] = []
        rng = self.rng
        if rng.random() < self.rates.loss:
            victim = self._victim(simulator)
            if victim is not None:
                ops.append(LoseMessage(*victim))
        if rng.random() < self.rates.duplication:
            victim = self._victim(simulator)
            if victim is not None:
                ops.append(DuplicateMessage(*victim))
        if rng.random() < self.rates.corruption:
            victim = self._victim(simulator)
            if victim is not None:
                src, dst, index = victim
                msg = simulator.network.channel(src, dst).snapshot()[index]
                # Dummy uid: only the replacement kind/payload are recorded;
                # the real uid is drawn from the network at apply time.
                replacement = tme_message_corrupter(msg, rng, 0)
                ops.append(
                    CorruptMessage(
                        src, dst, index, replacement.kind, replacement.payload
                    )
                )
        if rng.random() < self.rates.state_corruption:
            pid = rng.choice(sorted(simulator.processes))
            updates = scramble_tme_state(simulator.processes[pid], rng)
            if updates:
                ops.append(CorruptState(pid, tuple(sorted(updates.items()))))
        if self.churn is not None:
            # Churn rolls come strictly after the Section 3.1 classes, in a
            # fixed order of their own, so churn-free specs consume the RNG
            # stream exactly as before this fault class existed.
            ops.extend(self._decide_churn(simulator))
        return ops

    def _decide_churn(self, simulator: "Simulator") -> list[FaultOp]:
        ops: list[FaultOp] = []
        rng = self.rng
        churn = self.churn
        assert churn is not None
        n = len(simulator.processes)
        max_down = (n - 1) // 2  # keep a strict majority live

        def crash_victim() -> str | None:
            crashed = sum(
                1 for p in simulator.processes.values() if not p.is_live
            )
            if crashed >= max_down:
                return None
            live = [
                pid
                for pid in sorted(simulator.processes)
                if simulator.processes[pid].is_live
            ]
            return rng.choice(live) if live else None

        if rng.random() < churn.crash_restart:
            pid = crash_victim()
            if pid is not None:
                proc = simulator.processes[pid]
                restart_vars = dict(proc.program.initial_vars)
                restart_vars.update(scramble_tme_state(proc, rng))
                ops.append(
                    CrashProcess(
                        pid,
                        churn.downtime,
                        tuple(sorted(restart_vars.items())),
                    )
                )
        if rng.random() < churn.crash_stop:
            pid = crash_victim()
            if pid is not None:
                ops.append(CrashProcess(pid, None, None))
        if rng.random() < churn.partition and not simulator.network.down_links():
            if max_down >= 1:
                pids = sorted(simulator.processes)
                size = rng.randrange(1, max_down + 1)
                side = tuple(sorted(rng.sample(pids, size)))
                ops.append(PartitionNet(side, churn.heal_after))
        if rng.random() < churn.heal and simulator.network.down_links():
            ops.append(HealNet())
        return ops

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        struck: list[str] = []
        for op in self._decide(simulator):
            # Victims are decided against the pre-fault channel state, so an
            # earlier loss in the same step can strand a later op's index;
            # such ops are dropped (never logged, never counted).
            description = apply_op(simulator, op)
            if description is None:
                continue
            if self.log is not None:
                self.log.append(FaultDecision(step_index, op))
            self.count += 1
            struck.append(description)
        return struck


# ---------------------------------------------------------------------------
# The replaying injector (scripted runs)
# ---------------------------------------------------------------------------


class ReplayFaults(FaultInjector):
    """Apply a recorded fault-decision list, minus ``masked`` decisions."""

    def __init__(
        self,
        decisions: Sequence[FaultDecision],
        masked: Collection[FaultDecision] = (),
    ):
        masked_set = set(masked)
        self._by_step: dict[int, list[FaultOp]] = {}
        for decision in decisions:
            if decision in masked_set:
                continue
            self._by_step.setdefault(decision.step_index, []).append(
                decision.op
            )
        self.count = 0
        self.skipped = 0

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        struck: list[str] = []
        for op in self._by_step.get(step_index, ()):
            description = apply_op(simulator, op)
            if description is None:
                self.skipped += 1
                continue
            self.count += 1
            struck.append(description)
        return struck
