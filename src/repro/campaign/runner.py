"""The single-spec campaign front door, now on the durable scheduler.

Historically this module owned its own fork/pipe fan-out; that engine
grew up and moved to :mod:`repro.campaign.sched` (work-stealing, lease
recovery, a durable journal, resume).  :func:`run_campaign` remains the
stable entry point for "run trials ``0..n-1`` of one spec": it wraps the
spec in a one-config :class:`~repro.campaign.spec.TrialMatrix`
(``task_id == trial_id``, root seed untouched, so digests match the
historical runner bit-for-bit) and hands it to
:func:`~repro.campaign.sched.run_matrix`.

The failure-containment contract is unchanged -- and now durable:

* a worker death is environmental: the trial is requeued with capped
  exponential backoff, and only after ``max_trial_retries`` deaths
  surfaces as ``"crashed"`` -- now carrying the *full per-attempt log*
  (exit codes and backoffs) in ``TrialResult.detail``;
* a ``trial_timeout`` overrun is deterministic: recorded once as
  ``"timeout"``, never retried;
* ``workers=1`` (and platforms without ``fork``) runs in-process and
  produces byte-identical digests to any parallel schedule.

Pass ``store_dir`` to journal the campaign durably; ``resume=True``
replays the journal and finishes only what is missing.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.campaign.sched import (
    SchedulerConfig,
    TrialFn,
    _failed_result,
    default_trial_fn,
    fork_available,
    run_matrix,
)
from repro.campaign.spec import single_spec_matrix
from repro.campaign.stats import summarize_outcomes
from repro.campaign.trial import CampaignSpec, TrialResult

__all__ = ["run_campaign", "summarize_outcomes", "TrialFn"]

# Compatibility aliases: tests and older callers import these from here.
_default_trial_fn = default_trial_fn
_failed = _failed_result
_fork_available = fork_available


def run_campaign(
    spec: CampaignSpec,
    trials: int,
    *,
    workers: int = 1,
    trial_timeout: float | None = None,
    trial_fn: TrialFn | None = None,
    on_result: Callable[[TrialResult], None] | None = None,
    max_trial_retries: int = 2,
    retry_backoff: float = 0.2,
    retry_stats: dict | None = None,
    store_dir: str | None = None,
    resume: bool = False,
) -> list[TrialResult]:
    """Run trials ``0..trials-1`` of ``spec``; results ordered by trial id.

    ``on_result`` streams results in *completion* order as they arrive.
    ``trial_fn`` exists for tests (inject crashes/hangs); campaigns use
    :func:`repro.campaign.trial.run_trial`.  A trial whose worker dies
    is requeued up to ``max_trial_retries`` times with doubling (capped)
    backoff starting at ``retry_backoff`` seconds; ``retry_stats`` (when
    given) receives the scheduler's execution counters -- ``"requeues"``
    stays additive across calls for the artifact.  ``store_dir`` turns
    on the durable journal; with ``resume=True`` a previous run's
    results are replayed instead of re-run.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if max_trial_retries < 0:
        raise ValueError("max_trial_retries must be non-negative")
    if retry_stats is not None:
        retry_stats.setdefault("requeues", 0)
    matrix = single_spec_matrix(spec, trials)
    run = run_matrix(
        matrix,
        SchedulerConfig(
            workers=workers,
            trial_timeout=trial_timeout,
            max_trial_retries=max_trial_retries,
            retry_backoff=retry_backoff,
        ),
        store_dir=store_dir,
        resume=resume,
        trial_fn=trial_fn,
        on_result=on_result,
    )
    if retry_stats is not None:
        stats = run.stats.as_dict()
        requeues = retry_stats["requeues"] + stats.pop("requeues")
        retry_stats.update(stats)
        retry_stats["requeues"] = requeues
    return run.results
