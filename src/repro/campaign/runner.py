"""Process fan-out for campaigns: timeouts, crash recovery, streaming.

Trials are embarrassingly parallel and fully determined by
``(spec, trial_id)``, so the runner ships *no* work description beyond the
trial id: workers are ``fork``-started (the same platform condition as
:mod:`repro.explore.parallel`) and inherit the spec, the programs module,
everything.  Each live trial owns one worker process and one result pipe;
the parent multiplexes completions with
:func:`multiprocessing.connection.wait`, enforcing a wall-clock deadline
per trial.

Failure containment is per trial, never per campaign:

* a worker that dies (OOM-kill, segfault, ``os._exit``) gets its trial
  *requeued* with backoff -- trials are deterministic, so a sporadic
  environmental kill deserves a clean retry; only after
  ``max_trial_retries`` consecutive worker deaths does the trial surface
  as a ``"crashed"`` :class:`~repro.campaign.trial.TrialResult`;
* a worker that overruns ``trial_timeout`` is terminated and yields a
  ``"timeout"`` result (no retry: the overrun is deterministic too);
* everything else keeps running, and the campaign completes.

Because trials are deterministic, ``workers=1`` (the in-process fallback,
also used where ``fork`` is unavailable) produces byte-identical digests
to any parallel schedule -- the parity test relies on this.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Sequence
from multiprocessing.connection import wait as connection_wait

from repro.campaign.trial import CampaignSpec, TrialResult, run_trial

TrialFn = Callable[[CampaignSpec, int], TrialResult]


def _default_trial_fn(spec: CampaignSpec, trial_id: int) -> TrialResult:
    return run_trial(spec, trial_id)


def _worker(conn, spec: CampaignSpec, trial_id: int, trial_fn: TrialFn) -> None:
    result = trial_fn(spec, trial_id)
    conn.send(result)
    conn.close()


def _failed(trial_id: int, outcome: str, wall: float, detail: str) -> TrialResult:
    return TrialResult(
        trial_id=trial_id,
        outcome=outcome,
        steps=0,
        latency=None,
        wall_seconds=wall,
        wall_latency=None,
        entries=0,
        faults=0,
        me1_after_horizon=0,
        digest="",
        detail=detail,
    )


def run_campaign(
    spec: CampaignSpec,
    trials: int,
    *,
    workers: int = 1,
    trial_timeout: float | None = None,
    trial_fn: TrialFn | None = None,
    on_result: Callable[[TrialResult], None] | None = None,
    max_trial_retries: int = 2,
    retry_backoff: float = 0.2,
    retry_stats: dict | None = None,
) -> list[TrialResult]:
    """Run trials ``0..trials-1`` of ``spec``; results ordered by trial id.

    ``on_result`` streams results in *completion* order as they arrive.
    ``trial_fn`` exists for tests (inject crashes/hangs); campaigns use
    :func:`repro.campaign.trial.run_trial`.  A trial whose worker dies is
    requeued up to ``max_trial_retries`` times, waiting ``retry_backoff``
    seconds (doubling per attempt) before the respawn; ``retry_stats``
    (when given) receives a ``"requeues"`` count for the artifact.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if max_trial_retries < 0:
        raise ValueError("max_trial_retries must be non-negative")
    fn = trial_fn or _default_trial_fn
    if retry_stats is not None:
        retry_stats.setdefault("requeues", 0)
    if workers <= 1 or trials <= 1 or not _fork_available():
        results = []
        for trial_id in range(trials):
            result = fn(spec, trial_id)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results
    return _run_parallel(
        spec,
        trials,
        workers,
        trial_timeout,
        fn,
        on_result,
        max_trial_retries,
        retry_backoff,
        retry_stats,
    )


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _run_parallel(  # noqa: PLR0913 -- the runner's full policy surface
    spec: CampaignSpec,
    trials: int,
    workers: int,
    trial_timeout: float | None,
    trial_fn: TrialFn,
    on_result: Callable[[TrialResult], None] | None,
    max_trial_retries: int,
    retry_backoff: float,
    retry_stats: dict | None,
) -> list[TrialResult]:
    ctx = multiprocessing.get_context("fork")
    pending = iter(range(trials))
    live: dict[int, tuple] = {}  # trial_id -> (process, conn, deadline)
    results: dict[int, TrialResult] = {}
    attempts: dict[int, int] = {}  # trial_id -> worker deaths so far
    retry_queue: list[tuple[float, int]] = []  # (ready_at, trial_id)
    requeues = 0

    def finish(trial_id: int, result: TrialResult) -> None:
        results[trial_id] = result
        if on_result is not None:
            on_result(result)

    def spawn(trial_id: int) -> None:
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker, args=(send, spec, trial_id, trial_fn)
        )
        proc.start()
        send.close()  # parent keeps only the read end
        deadline = (
            time.monotonic() + trial_timeout
            if trial_timeout is not None
            else None
        )
        live[trial_id] = (proc, recv, deadline)

    def crashed(trial_id: int, exitcode: object, context: str) -> None:
        """A worker died without delivering a result: requeue or give up."""
        nonlocal requeues
        deaths = attempts.get(trial_id, 0) + 1
        attempts[trial_id] = deaths
        if deaths <= max_trial_retries:
            requeues += 1
            backoff = retry_backoff * (2 ** (deaths - 1))
            retry_queue.append((time.monotonic() + backoff, trial_id))
            return
        finish(
            trial_id,
            _failed(
                trial_id,
                "crashed",
                0.0,
                f"worker {context} (exitcode {exitcode}) "
                f"after {deaths} attempts",
            ),
        )

    def spawn_ready() -> None:
        """Fill free worker slots: due retries first, then fresh trials."""
        now = time.monotonic()
        while len(live) < workers and retry_queue:
            ready_at, trial_id = min(retry_queue)
            if ready_at > now:
                break
            retry_queue.remove((ready_at, trial_id))
            spawn(trial_id)
        while len(live) < workers:
            trial_id = next(pending, None)
            if trial_id is None:
                break
            spawn(trial_id)

    try:
        while len(results) < trials:
            spawn_ready()
            if not live:
                if retry_queue:
                    # Every outstanding trial is backing off; wait it out.
                    time.sleep(
                        max(0.0, min(r for r, _t in retry_queue) - time.monotonic())
                    )
                    continue
                break
            connection_wait([conn for _p, conn, _d in live.values()], 0.05)
            now = time.monotonic()
            for trial_id in list(live):
                proc, conn, deadline = live[trial_id]
                if conn.poll():
                    try:
                        finish(trial_id, conn.recv())
                    except EOFError:
                        # A dead worker's closed pipe polls readable too;
                        # join so the exitcode is available for the report.
                        proc.join()
                        crashed(
                            trial_id,
                            proc.exitcode,
                            "closed the pipe without a result",
                        )
                elif deadline is not None and now > deadline:
                    proc.terminate()
                    finish(
                        trial_id,
                        _failed(
                            trial_id,
                            "timeout",
                            trial_timeout or 0.0,
                            f"exceeded trial_timeout={trial_timeout}s",
                        ),
                    )
                elif not proc.is_alive():
                    # The worker may have exited between the poll above and
                    # this check, with its result already in the pipe.
                    if conn.poll():
                        try:
                            finish(trial_id, conn.recv())
                        except EOFError:
                            crashed(
                                trial_id,
                                proc.exitcode,
                                "closed the pipe mid-result",
                            )
                    else:
                        proc.join()
                        crashed(trial_id, proc.exitcode, "died")
                else:
                    continue
                conn.close()
                proc.join()
                del live[trial_id]
    finally:
        for proc, conn, _deadline in live.values():
            proc.terminate()
            conn.close()
            proc.join()

    if retry_stats is not None:
        retry_stats["requeues"] = retry_stats.get("requeues", 0) + requeues
    return [results[i] for i in sorted(results)]


def summarize_outcomes(results: Sequence[TrialResult]) -> dict[str, int]:
    """Outcome -> count (stable key order: worst news first)."""
    order = ("converged", "diverged", "timeout", "crashed")
    counts = {key: 0 for key in order}
    for result in results:
        counts[result.outcome] = counts.get(result.outcome, 0) + 1
    return {key: count for key, count in counts.items() if count}
