"""The durable campaign journal: leases, results, requeues, resume.

Campaigns used to exist only in the coordinator's memory -- a crash at
trial 999,990 of a million lost everything.  This module gives a
campaign the same durability story PR 7 gave exploration, *reusing the
exact journal machinery*: records are framed with
:func:`repro.explore.wire.pack_record` (13-byte header + payload, torn
tails discarded on replay) and appended through
:class:`repro.explore.shard.ShardLog` (buffered, flushed to the kernel
before anything downstream observes the event).

One journal per campaign, one writer (the coordinator -- workers only
ever talk over pipes), three record kinds:

* ``LEASE``   -- task ``depth`` claimed for attempt ``aux`` by a worker
  (payload: worker id).  A lease without a later result is exactly the
  work a resumed run must redo.
* ``RESULT``  -- task ``depth`` finished attempt ``aux`` (payload: the
  canonical JSON of the :class:`~repro.campaign.trial.TrialResult`,
  minus its decision log -- decisions are re-derivable from
  ``(spec, trial_id)``).  Flushed before the result is surfaced, so a
  durable result is never re-run and a re-run result was never
  surfaced.
* ``REQUEUE`` -- attempt ``aux`` of task ``depth`` died environmentally
  (payload: death kind, exit code, backoff).  Replay restores the
  attempt counter so a coordinator crash cannot reset a trial's retry
  budget, and the requeue history survives into the final attempt log.

``meta.json`` pins the campaign's identity: a *stamped* artifact
(:func:`repro.campaign.stats.stamp_artifact`) carrying the matrix
digest of :class:`~repro.campaign.spec.TrialMatrix`.  ``--resume``
verifies the stamp and the digest before trusting a single record, so
a journal can never silently replay into a different experiment.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.spec import TrialMatrix, canonical_json
from repro.campaign.stats import stamp_artifact, verify_stamp
from repro.campaign.trial import TrialResult
from repro.explore.shard import ShardLog, iter_log_records, valid_prefix_len

#: Campaign record kinds, disjoint from the exploration journal's
#: ``REC_ADMIT``/``REC_MEMBER``/``REC_COMMIT`` tag values (the framing
#: is shared; see :mod:`repro.explore.wire`).
REC_LEASE = ord("L")
REC_RESULT = ord("R")
REC_REQUEUE = ord("Q")

#: ``meta.json`` schema (stamped; bumped on incompatible layout change).
META_SCHEMA_VERSION = 1

JOURNAL_NAME = "campaign.log"
META_NAME = "meta.json"
PARTIAL_NAME = "partial.json"


# ---------------------------------------------------------------------------
# TrialResult <-> canonical JSON payloads
# ---------------------------------------------------------------------------

def encode_result(result: TrialResult) -> bytes:
    """The canonical JSON bytes of a result (decisions dropped).

    Decision logs are closures over live dataclasses and re-derivable
    from ``(spec, trial_id)`` (the shrinker re-runs the trial anyway),
    so the journal stores everything *else* -- every field the summary
    and the artifact consume round-trips exactly, floats included
    (JSON's shortest-repr float encoding is lossless).
    """
    payload = {
        "trial_id": result.trial_id,
        "outcome": result.outcome,
        "steps": result.steps,
        "latency": result.latency,
        "wall_seconds": result.wall_seconds,
        "wall_latency": result.wall_latency,
        "entries": result.entries,
        "faults": result.faults,
        "me1_after_horizon": result.me1_after_horizon,
        "digest": result.digest,
        "detail": result.detail,
        "availability": result.availability,
        "dropped": result.dropped,
        "corrupted": result.corrupted,
        "detections": list(result.detections),
        "recoveries": list(result.recoveries),
        "recovery_stages": [list(s) for s in result.recovery_stages],
        "sched_fallbacks": result.sched_fallbacks,
        "ops_skipped": result.ops_skipped,
    }
    return canonical_json(payload).encode("utf-8")


def decode_result(raw: bytes) -> TrialResult:
    """The :class:`TrialResult` a ``RESULT`` payload encodes."""
    payload = json.loads(raw.decode("utf-8"))
    return TrialResult(
        trial_id=payload["trial_id"],
        outcome=payload["outcome"],
        steps=payload["steps"],
        latency=payload["latency"],
        wall_seconds=payload["wall_seconds"],
        wall_latency=payload["wall_latency"],
        entries=payload["entries"],
        faults=payload["faults"],
        me1_after_horizon=payload["me1_after_horizon"],
        digest=payload["digest"],
        detail=payload["detail"],
        decisions=None,
        availability=payload["availability"],
        dropped=payload["dropped"],
        corrupted=payload["corrupted"],
        detections=tuple(payload["detections"]),
        recoveries=tuple(payload["recoveries"]),
        recovery_stages=tuple(
            (stage, count) for stage, count in payload["recovery_stages"]
        ),
        sched_fallbacks=payload["sched_fallbacks"],
        ops_skipped=payload["ops_skipped"],
    )


# ---------------------------------------------------------------------------
# The journal itself
# ---------------------------------------------------------------------------


class CampaignJournal:
    """Append-only campaign journal (single writer: the coordinator).

    Reopening after a crash truncates the file to its longest
    whole-record prefix first (:func:`repro.explore.shard.
    valid_prefix_len`) -- appending after a torn tail would misalign
    the framing for every later replay.
    """

    def __init__(self, store_dir: str | Path):
        self.path = str(Path(store_dir) / JOURNAL_NAME)
        if os.path.exists(self.path):
            good = valid_prefix_len(self.path)
            if good < os.path.getsize(self.path):
                with open(self.path, "rb+") as fh:
                    fh.truncate(good)
        self._log = ShardLog(self.path)

    def lease(self, task_id: int, attempt: int, worker: int) -> None:
        self._log.append(
            REC_LEASE, task_id, attempt, str(worker).encode()
        )
        self._log.flush()

    def result(self, task_id: int, attempt: int, result: TrialResult) -> None:
        self._log.append(REC_RESULT, task_id, attempt, encode_result(result))
        self._log.flush()

    def requeue(
        self, task_id: int, attempt: int, kind: str,
        exitcode: int | None, backoff: float,
    ) -> None:
        payload = canonical_json(
            {"kind": kind, "exitcode": exitcode, "backoff": backoff}
        ).encode("utf-8")
        self._log.append(REC_REQUEUE, task_id, attempt, payload)
        self._log.flush()

    def close(self) -> None:
        self._log.close()


@dataclass
class JournalState:
    """Everything a resumed coordinator learns from a replay."""

    #: task_id -> durable result (first sighting wins; duplicates are
    #: bit-identical by trial determinism).
    results: dict[int, TrialResult] = field(default_factory=dict)
    #: task_id -> environmental death history, in journal order.
    attempt_log: dict[int, list[dict]] = field(default_factory=dict)
    #: task_ids leased but never resulted (the lease-recovery set).
    orphaned: set[int] = field(default_factory=set)
    records: int = 0

    def attempts(self, task_id: int) -> int:
        """Worker deaths already charged against a task's retry budget."""
        return len(self.attempt_log.get(task_id, ()))


def replay_journal(store_dir: str | Path) -> JournalState:
    """Replay a campaign journal into a :class:`JournalState`.

    Torn tails end the scan silently (:func:`iter_log_records`): a
    record cut short by ``kill -9`` was never acknowledged, so dropping
    it is exactly the crash semantics resume wants.
    """
    state = JournalState()
    path = Path(store_dir) / JOURNAL_NAME
    if not path.exists():
        return state
    for tag, task_id, attempt, payload in iter_log_records(str(path)):
        state.records += 1
        if tag == REC_RESULT:
            if task_id not in state.results:
                state.results[task_id] = decode_result(payload)
            state.orphaned.discard(task_id)
        elif tag == REC_LEASE:
            if task_id not in state.results:
                state.orphaned.add(task_id)
        elif tag == REC_REQUEUE:
            info = json.loads(payload.decode("utf-8"))
            info["attempt"] = attempt
            state.attempt_log.setdefault(task_id, []).append(info)
    return state


# ---------------------------------------------------------------------------
# Run-directory metadata (stamped)
# ---------------------------------------------------------------------------


def write_campaign_meta(store_dir: str | Path, matrix: TrialMatrix) -> dict:
    """Create ``store_dir`` and pin the campaign's identity in it."""
    store = Path(store_dir)
    store.mkdir(parents=True, exist_ok=True)
    payload = stamp_artifact(
        {
            "kind": "campaign-journal",
            "name": matrix.name,
            "matrix_digest": matrix.matrix_digest,
            "tasks": len(matrix),
        },
        META_SCHEMA_VERSION,
    )
    tmp = store / (META_NAME + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, store / META_NAME)
    return payload


def verify_campaign_meta(store_dir: str | Path, matrix: TrialMatrix) -> dict:
    """Validate ``meta.json`` against the matrix being resumed.

    Raises ``ValueError`` if the meta is missing, its stamp fails
    (truncated or hand-edited file), or the matrix digest differs (the
    journal belongs to a different experiment).
    """
    path = Path(store_dir) / META_NAME
    if not path.exists():
        raise ValueError(
            f"{path}: no campaign metadata; nothing to resume here"
        )
    payload = json.loads(path.read_text(encoding="utf-8"))
    verify_stamp(payload, META_SCHEMA_VERSION)
    if payload.get("kind") != "campaign-journal":
        raise ValueError(f"{path}: not a campaign journal directory")
    found = payload.get("matrix_digest")
    if found != matrix.matrix_digest:
        raise ValueError(
            f"{path}: journal belongs to a different experiment "
            f"({found} != {matrix.matrix_digest}); use a fresh store dir"
        )
    return payload


def journal_exists(store_dir: str | Path) -> bool:
    return (Path(store_dir) / JOURNAL_NAME).exists()


def write_partial_artifact(store_dir: str | Path, payload: dict) -> None:
    """Atomically publish a streamed partial artifact (temp + rename),
    so a reader never observes a half-written JSON file."""
    store = Path(store_dir)
    tmp = store / (PARTIAL_NAME + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, store / PARTIAL_NAME)
