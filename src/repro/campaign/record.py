"""Decision recording and scripted replay.

A trial's nondeterminism is exactly two streams of *decisions*:

* which candidate step the scheduler chose at each simulator step
  (:class:`SchedDecision`, identified by the step's stable ``key``);
* which concrete fault operation the injector dealt, and when
  (:class:`FaultDecision`, whose ``op`` is one of the replayable operations
  of :mod:`repro.campaign.faults`).

Recording them during a free (RNG-driven) run turns the run into data; a
*scripted* re-run consumes the record instead of the RNGs, which is what
makes delta-debugging well-defined: dropping a decision from the script is
a meaningful, executable variant (the scheduler falls back to the least
step key, a dropped fault simply never strikes).  With the full record and
no mask, the scripted run reproduces the free run bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence
from dataclasses import dataclass
from typing import Any

from repro.runtime.scheduler import Scheduler, Step

Decision = "SchedDecision | FaultDecision"


@dataclass(frozen=True)
class SchedDecision:
    """The scheduler chose the step with this key at ``step_index``."""

    step_index: int
    key: tuple

    def describe(self) -> str:
        return f"step {self.step_index}: schedule {'/'.join(map(str, self.key))}"


@dataclass(frozen=True)
class FaultDecision:
    """The injector dealt concrete operation ``op`` at ``step_index``."""

    step_index: int
    op: Any  # one of the ops in repro.campaign.faults

    def describe(self) -> str:
        return f"step {self.step_index}: fault {self.op.describe()}"


class RecordingScheduler(Scheduler):
    """Wrap a scheduler; append one :class:`SchedDecision` per choice."""

    def __init__(self, inner: Scheduler, log: list):
        self._inner = inner
        self._log = log

    def choose(self, candidates: Sequence[Step], step_index: int) -> Step:
        chosen = self._inner.choose(candidates, step_index)
        self._log.append(SchedDecision(step_index, chosen.key))
        return chosen


class ScriptedScheduler(Scheduler):
    """Replay recorded schedule decisions; deterministic fallback otherwise.

    ``masked`` decisions (and steps the record never reached, e.g. because a
    masked fault changed the run's length) fall back to the candidate with
    the least ``key`` -- the same deterministic order every simulator
    component already sorts by.  ``fallbacks`` counts how often the record
    did not apply, which the shrinker reports.
    """

    def __init__(
        self,
        decisions: Sequence[SchedDecision],
        masked: Collection[SchedDecision] = (),
    ):
        masked_set = set(masked)
        self._by_step = {
            d.step_index: d.key
            for d in decisions
            if d not in masked_set
        }
        self.fallbacks = 0

    def choose(self, candidates: Sequence[Step], step_index: int) -> Step:
        if not candidates:
            raise ValueError("no candidate steps")
        wanted = self._by_step.get(step_index)
        if wanted is not None:
            for step in candidates:
                if step.key == wanted:
                    return step
        self.fallbacks += 1
        return min(candidates, key=lambda s: s.key)
