"""Campaign statistics: latency distributions, summaries, JSON artifacts.

The quantity of interest (after *Ideal Stabilization*'s framing) is the
per-burst recovery cost: how many steps after the fault window closes until
the legitimacy predicate holds for good.  A campaign yields its empirical
distribution -- mean/p50/p95/max plus an empirical CDF -- per configuration,
and the JSON artifact (``BENCH_campaign.json`` in CI) records enough to
regenerate every number: the spec, the root seed, and per-trial outcomes
with digests.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.campaign.trial import CampaignSpec, TrialResult


def summarize_outcomes(results: Sequence[TrialResult]) -> dict[str, int]:
    """Outcome -> count (stable key order: worst news first)."""
    order = ("converged", "diverged", "timeout", "crashed")
    counts = {key: 0 for key in order}
    for result in results:
        counts[result.outcome] = counts.get(result.outcome, 0) + 1
    return {key: count for key, count in counts.items() if count}


def quantile(values: Sequence[float], q: float) -> float:
    """Empirical quantile (linear interpolation between order statistics)."""
    if not values:
        raise ValueError("quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def ecdf(values: Sequence[float], points: int = 11) -> list[tuple[float, float]]:
    """``points`` samples of the empirical CDF as (value, P[X <= value])."""
    if not values:
        return []
    ordered = sorted(values)
    out = []
    for i in range(points):
        q = i / (points - 1) if points > 1 else 1.0
        out.append((quantile(ordered, q), q))
    return out


@dataclass(frozen=True)
class LatencySummary:
    """Distribution of convergence latency over the converged trials."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float
    cdf: tuple[tuple[float, float], ...]

    @staticmethod
    def of(latencies: Sequence[int]) -> "LatencySummary":
        if not latencies:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, ())
        return LatencySummary(
            count=len(latencies),
            mean=sum(latencies) / len(latencies),
            p50=quantile(latencies, 0.50),
            p95=quantile(latencies, 0.95),
            maximum=float(max(latencies)),
            cdf=tuple(ecdf(latencies)),
        )


@dataclass(frozen=True)
class CampaignSummary:
    """A whole campaign, aggregated."""

    trials: int
    outcomes: dict[str, int]
    convergence_rate: float
    latency: LatencySummary
    wall_latency_mean: float
    mean_steps: float
    total_faults: int
    wall_seconds: float
    trials_per_second: float
    # -- robustness aggregates (defaults keep pre-churn callers valid) -----
    availability_mean: float | None = None
    detection: LatencySummary | None = None
    recovery: LatencySummary | None = None
    total_dropped: int = 0
    total_corrupted: int = 0
    requeues: int = 0

    def describe(self) -> str:
        lines = [
            f"trials:      {self.trials}  {self.outcomes}",
            f"convergence: {self.convergence_rate:.1%}",
        ]
        if self.availability_mean is not None:
            lines.append(f"availability: {self.availability_mean:.1%} mean")
        if self.detection is not None and self.detection.count:
            lines.append(
                "detection:   "
                f"mean {self.detection.mean:.1f}  p50 {self.detection.p50:.0f}  "
                f"p95 {self.detection.p95:.0f} steps "
                f"({self.detection.count} incidents)"
            )
        if self.recovery is not None and self.recovery.count:
            lines.append(
                "recovery:    "
                f"mean {self.recovery.mean:.1f}  p50 {self.recovery.p50:.0f}  "
                f"p95 {self.recovery.p95:.0f} steps "
                f"({self.recovery.count} episodes)"
            )
        if self.latency.count:
            lines.append(
                "latency:     "
                f"mean {self.latency.mean:.1f}  p50 {self.latency.p50:.0f}  "
                f"p95 {self.latency.p95:.0f}  max {self.latency.maximum:.0f} "
                f"steps  ({self.wall_latency_mean * 1000:.1f} ms mean wall)"
            )
            cdf = "  ".join(
                f"{value:.0f}:{p:.0%}" for value, p in self.latency.cdf
            )
            lines.append(f"latency CDF: {cdf}")
        lines.append(
            f"throughput:  {self.trials_per_second:.1f} trials/s "
            f"({self.wall_seconds:.1f}s wall, "
            f"{self.mean_steps:.0f} mean steps/trial, "
            f"{self.total_faults} faults dealt)"
        )
        if self.total_dropped or self.total_corrupted:
            lines.append(
                f"channels:    {self.total_dropped} dropped, "
                f"{self.total_corrupted} corrupted"
            )
        if self.requeues:
            lines.append(f"requeues:    {self.requeues} worker respawns")
        return "\n".join(lines)


def summarize(
    results: Sequence[TrialResult],
    wall_seconds: float,
    requeues: int = 0,
) -> CampaignSummary:
    """Aggregate a campaign's results (``wall_seconds``: end-to-end time)."""
    latencies = [r.latency for r in results if r.latency is not None]
    wall_latencies = [
        r.wall_latency for r in results if r.wall_latency is not None
    ]
    converged = sum(1 for r in results if r.converged)
    availabilities = [
        r.availability for r in results if r.availability is not None
    ]
    detections = [d for r in results for d in r.detections]
    recoveries = [d for r in results for d in r.recoveries]
    return CampaignSummary(
        trials=len(results),
        outcomes=summarize_outcomes(results),
        convergence_rate=converged / len(results) if results else 0.0,
        latency=LatencySummary.of(latencies),
        wall_latency_mean=(
            sum(wall_latencies) / len(wall_latencies)
            if wall_latencies
            else 0.0
        ),
        mean_steps=(
            sum(r.steps for r in results) / len(results) if results else 0.0
        ),
        total_faults=sum(r.faults for r in results),
        wall_seconds=wall_seconds,
        trials_per_second=len(results) / wall_seconds if wall_seconds else 0.0,
        availability_mean=(
            sum(availabilities) / len(availabilities)
            if availabilities
            else None
        ),
        detection=LatencySummary.of(detections) if detections else None,
        recovery=LatencySummary.of(recoveries) if recoveries else None,
        total_dropped=sum(r.dropped for r in results),
        total_corrupted=sum(r.corrupted for r in results),
        requeues=requeues,
    )


#: Campaign artifact schema: version 2 restructured the payload into a
#: deterministic core (``spec``/``summary``/``trials``, covered by the
#: content hash) plus volatile ``timing``/``execution`` sections, and
#: stamped it -- the content hash of a resumed campaign is bit-identical
#: to the uninterrupted run's.
CAMPAIGN_SCHEMA_VERSION = 2

#: Top-level artifact fields excluded from the content hash: wall-clock
#: measurements and execution incidents (requeues, lease reclaims) vary
#: between runs that computed bit-identical results.
CAMPAIGN_VOLATILE_FIELDS = ("timing", "execution")


def _latency_dict(latency: LatencySummary | None) -> dict | None:
    if latency is None:
        return None
    return {
        "count": latency.count,
        "mean": latency.mean,
        "p50": latency.p50,
        "p95": latency.p95,
        "max": latency.maximum,
        "cdf": [list(point) for point in latency.cdf],
    }


def summary_dict(summary: CampaignSummary) -> dict:
    """The deterministic half of a summary (no wall-clock, no requeues)."""
    return {
        "trials": summary.trials,
        "outcomes": summary.outcomes,
        "convergence_rate": summary.convergence_rate,
        "latency": _latency_dict(summary.latency),
        "mean_steps": summary.mean_steps,
        "total_faults": summary.total_faults,
        "availability_mean": summary.availability_mean,
        "detection": _latency_dict(summary.detection),
        "recovery": _latency_dict(summary.recovery),
        "total_dropped": summary.total_dropped,
        "total_corrupted": summary.total_corrupted,
    }


def timing_dict(summary: CampaignSummary) -> dict:
    """The wall-clock half of a summary (volatile; never hashed)."""
    return {
        "wall_seconds": summary.wall_seconds,
        "trials_per_second": summary.trials_per_second,
        "wall_latency_mean_s": summary.wall_latency_mean,
    }


def trial_rows(results: Sequence[TrialResult]) -> list[dict]:
    """Per-trial artifact rows (deterministic fields only)."""
    return [
        {
            "id": r.trial_id,
            "outcome": r.outcome,
            "steps": r.steps,
            "latency": r.latency,
            "entries": r.entries,
            "faults": r.faults,
            "digest": r.digest,
            "dropped": r.dropped,
            "corrupted": r.corrupted,
            "availability": r.availability,
            "detections": len(r.detections),
            "recoveries": len(r.recoveries),
        }
        for r in results
    ]


def spec_dict(spec: CampaignSpec) -> dict:
    out = asdict(spec)
    out["rates"] = asdict(spec.rates)
    return out


def artifact(
    spec: CampaignSpec,
    results: Sequence[TrialResult],
    summary: CampaignSummary,
    execution: dict | None = None,
) -> dict:
    """The stamped campaign artifact (CI's BENCH_campaign.json).

    The content hash covers ``spec`` + ``summary`` + ``trials`` -- a
    pure function of the trial matrix, because every hashed field of a
    :class:`TrialResult` is deterministic in ``(spec, trial_id)``.
    ``timing`` and ``execution`` (wall clocks, requeues, lease
    reclaims, resume provenance) are declared volatile, so an
    interrupted-and-resumed campaign stamps the *identical* hash as an
    uninterrupted one.
    """
    payload = {
        "spec": spec_dict(spec),
        "summary": summary_dict(summary),
        "trials": trial_rows(results),
        "timing": timing_dict(summary),
        "execution": {"requeues": summary.requeues, **(execution or {})},
    }
    return stamp_artifact(
        payload, CAMPAIGN_SCHEMA_VERSION, volatile=CAMPAIGN_VOLATILE_FIELDS
    )


def matrix_artifact(
    matrix,
    results: Sequence[TrialResult | None],
    wall_seconds: float,
    execution: dict | None = None,
    partial: bool = False,
) -> dict:
    """The stamped artifact of a (possibly multi-config) trial matrix.

    ``matrix`` is a :class:`repro.campaign.spec.TrialMatrix`;
    ``results[task_id]`` holds each finished task's result (``None``
    entries mark tasks a *partial* artifact has not seen yet -- final
    artifacts must be complete).  Each config gets its own summary over
    its own trials; the content hash covers the matrix identity and
    every deterministic row, with ``timing``/``execution`` volatile as
    in :func:`artifact`.
    """
    by_config: dict[str, list[TrialResult]] = {}
    done = 0
    for task, result in zip(matrix.tasks, results):
        if result is None:
            if not partial:
                raise ValueError(
                    f"final artifact missing task {task.task_id}"
                )
            continue
        done += 1
        by_config.setdefault(task.config, []).append(result)
    configs = {}
    for name, spec in matrix.configs:
        config_results = by_config.get(name, [])
        summary = summarize(config_results, wall_seconds)
        configs[name] = {
            "spec": spec_dict(spec),
            "summary": summary_dict(summary),
            "trials": trial_rows(config_results),
        }
    payload = {
        "campaign": matrix.name,
        "matrix_digest": matrix.matrix_digest,
        "partial": partial,
        "tasks": len(matrix),
        "completed": done,
        "configs": configs,
        "timing": {
            "wall_seconds": wall_seconds,
            "trials_per_second": (
                done / wall_seconds if wall_seconds else 0.0
            ),
        },
        "execution": dict(execution or {}),
    }
    return stamp_artifact(
        payload, CAMPAIGN_SCHEMA_VERSION, volatile=CAMPAIGN_VOLATILE_FIELDS
    )


def write_artifact(path: str | Path, payload: dict) -> None:
    """Write a campaign artifact as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


#: EXPERIMENTS.md table artifact schema (``repro experiment --json``).
EXPERIMENT_SCHEMA_VERSION = 1


def experiment_artifact(
    experiment_id: str, title: str, rows: Sequence[dict]
) -> dict:
    """The stamped artifact of an EXPERIMENTS.md table.

    ``rows`` must already be JSON-native (the CLI renders any rich cell
    values to their table strings first).  Experiment rows are
    deterministic, so the whole payload is hashed -- no volatile fields.
    """
    return stamp_artifact(
        {"experiment": experiment_id, "title": title, "rows": list(rows)},
        EXPERIMENT_SCHEMA_VERSION,
    )


# ---------------------------------------------------------------------------
# Artifact stamping (schema version + content hash)
# ---------------------------------------------------------------------------
#
# Artifacts that downstream steps *consume* (the CI service smoke asserts on
# the loadgen artifact) carry a schema version and a content hash, so a
# consumer can tell a truncated or hand-edited file from a genuine one and
# fail loudly on a schema it does not understand.

#: Field names the stamp occupies in a stamped artifact.
STAMP_SCHEMA_FIELD = "schema_version"
STAMP_HASH_FIELD = "content_hash"
STAMP_EXCLUDES_FIELD = "content_hash_excludes"


def artifact_content_hash(payload: dict) -> str:
    """SHA-256 over the canonical JSON of the payload minus the hash
    field and any top-level fields the stamp declares volatile.

    Volatile fields (``content_hash_excludes``) exist for measurements
    that legitimately differ between bit-identical runs -- wall-clock
    timing, requeue counts.  Excluding them makes the content hash a
    pure function of the *deterministic* payload, which is what lets a
    kill-9'd-and-resumed campaign present the same digest as an
    uninterrupted one.  The excludes list itself **is** hashed, so it
    cannot be widened after the fact to hide tampering.
    """
    volatile = set(payload.get(STAMP_EXCLUDES_FIELD, ()))
    body = {
        k: v
        for k, v in payload.items()
        if k != STAMP_HASH_FIELD and k not in volatile
    }
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def stamp_artifact(
    payload: dict,
    schema_version: int,
    volatile: Sequence[str] = (),
) -> dict:
    """A copy of ``payload`` carrying its schema version and content hash.

    ``volatile`` names top-level fields excluded from the content hash
    (recorded in the stamp, so verification applies the same exclusion).
    """
    stamped = dict(payload)
    stamped[STAMP_SCHEMA_FIELD] = schema_version
    if volatile:
        missing = [name for name in volatile if name not in stamped]
        if missing:
            raise ValueError(f"volatile field(s) not in payload: {missing}")
        stamped[STAMP_EXCLUDES_FIELD] = sorted(volatile)
    stamped[STAMP_HASH_FIELD] = artifact_content_hash(stamped)
    return stamped


def verify_stamp(payload: dict, expected_schema: int | None = None) -> None:
    """Validate a stamped artifact; raises ``ValueError`` on any mismatch."""
    if STAMP_SCHEMA_FIELD not in payload:
        raise ValueError("artifact has no schema_version stamp")
    if expected_schema is not None:
        found = payload[STAMP_SCHEMA_FIELD]
        if found != expected_schema:
            raise ValueError(
                f"artifact schema_version {found!r} != expected "
                f"{expected_schema}"
            )
    recorded = payload.get(STAMP_HASH_FIELD)
    if not recorded:
        raise ValueError("artifact has no content_hash stamp")
    actual = artifact_content_hash(payload)
    if actual != recorded:
        raise ValueError(
            f"artifact content hash mismatch: recorded {recorded}, "
            f"recomputed {actual}"
        )
