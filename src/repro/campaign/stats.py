"""Campaign statistics: latency distributions, summaries, JSON artifacts.

The quantity of interest (after *Ideal Stabilization*'s framing) is the
per-burst recovery cost: how many steps after the fault window closes until
the legitimacy predicate holds for good.  A campaign yields its empirical
distribution -- mean/p50/p95/max plus an empirical CDF -- per configuration,
and the JSON artifact (``BENCH_campaign.json`` in CI) records enough to
regenerate every number: the spec, the root seed, and per-trial outcomes
with digests.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.campaign.runner import summarize_outcomes
from repro.campaign.trial import CampaignSpec, TrialResult


def quantile(values: Sequence[float], q: float) -> float:
    """Empirical quantile (linear interpolation between order statistics)."""
    if not values:
        raise ValueError("quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def ecdf(values: Sequence[float], points: int = 11) -> list[tuple[float, float]]:
    """``points`` samples of the empirical CDF as (value, P[X <= value])."""
    if not values:
        return []
    ordered = sorted(values)
    out = []
    for i in range(points):
        q = i / (points - 1) if points > 1 else 1.0
        out.append((quantile(ordered, q), q))
    return out


@dataclass(frozen=True)
class LatencySummary:
    """Distribution of convergence latency over the converged trials."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float
    cdf: tuple[tuple[float, float], ...]

    @staticmethod
    def of(latencies: Sequence[int]) -> "LatencySummary":
        if not latencies:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, ())
        return LatencySummary(
            count=len(latencies),
            mean=sum(latencies) / len(latencies),
            p50=quantile(latencies, 0.50),
            p95=quantile(latencies, 0.95),
            maximum=float(max(latencies)),
            cdf=tuple(ecdf(latencies)),
        )


@dataclass(frozen=True)
class CampaignSummary:
    """A whole campaign, aggregated."""

    trials: int
    outcomes: dict[str, int]
    convergence_rate: float
    latency: LatencySummary
    wall_latency_mean: float
    mean_steps: float
    total_faults: int
    wall_seconds: float
    trials_per_second: float
    # -- robustness aggregates (defaults keep pre-churn callers valid) -----
    availability_mean: float | None = None
    detection: LatencySummary | None = None
    recovery: LatencySummary | None = None
    total_dropped: int = 0
    total_corrupted: int = 0
    requeues: int = 0

    def describe(self) -> str:
        lines = [
            f"trials:      {self.trials}  {self.outcomes}",
            f"convergence: {self.convergence_rate:.1%}",
        ]
        if self.availability_mean is not None:
            lines.append(f"availability: {self.availability_mean:.1%} mean")
        if self.detection is not None and self.detection.count:
            lines.append(
                "detection:   "
                f"mean {self.detection.mean:.1f}  p50 {self.detection.p50:.0f}  "
                f"p95 {self.detection.p95:.0f} steps "
                f"({self.detection.count} incidents)"
            )
        if self.recovery is not None and self.recovery.count:
            lines.append(
                "recovery:    "
                f"mean {self.recovery.mean:.1f}  p50 {self.recovery.p50:.0f}  "
                f"p95 {self.recovery.p95:.0f} steps "
                f"({self.recovery.count} episodes)"
            )
        if self.latency.count:
            lines.append(
                "latency:     "
                f"mean {self.latency.mean:.1f}  p50 {self.latency.p50:.0f}  "
                f"p95 {self.latency.p95:.0f}  max {self.latency.maximum:.0f} "
                f"steps  ({self.wall_latency_mean * 1000:.1f} ms mean wall)"
            )
            cdf = "  ".join(
                f"{value:.0f}:{p:.0%}" for value, p in self.latency.cdf
            )
            lines.append(f"latency CDF: {cdf}")
        lines.append(
            f"throughput:  {self.trials_per_second:.1f} trials/s "
            f"({self.wall_seconds:.1f}s wall, "
            f"{self.mean_steps:.0f} mean steps/trial, "
            f"{self.total_faults} faults dealt)"
        )
        if self.total_dropped or self.total_corrupted:
            lines.append(
                f"channels:    {self.total_dropped} dropped, "
                f"{self.total_corrupted} corrupted"
            )
        if self.requeues:
            lines.append(f"requeues:    {self.requeues} worker respawns")
        return "\n".join(lines)


def summarize(
    results: Sequence[TrialResult],
    wall_seconds: float,
    requeues: int = 0,
) -> CampaignSummary:
    """Aggregate a campaign's results (``wall_seconds``: end-to-end time)."""
    latencies = [r.latency for r in results if r.latency is not None]
    wall_latencies = [
        r.wall_latency for r in results if r.wall_latency is not None
    ]
    converged = sum(1 for r in results if r.converged)
    availabilities = [
        r.availability for r in results if r.availability is not None
    ]
    detections = [d for r in results for d in r.detections]
    recoveries = [d for r in results for d in r.recoveries]
    return CampaignSummary(
        trials=len(results),
        outcomes=summarize_outcomes(results),
        convergence_rate=converged / len(results) if results else 0.0,
        latency=LatencySummary.of(latencies),
        wall_latency_mean=(
            sum(wall_latencies) / len(wall_latencies)
            if wall_latencies
            else 0.0
        ),
        mean_steps=(
            sum(r.steps for r in results) / len(results) if results else 0.0
        ),
        total_faults=sum(r.faults for r in results),
        wall_seconds=wall_seconds,
        trials_per_second=len(results) / wall_seconds if wall_seconds else 0.0,
        availability_mean=(
            sum(availabilities) / len(availabilities)
            if availabilities
            else None
        ),
        detection=LatencySummary.of(detections) if detections else None,
        recovery=LatencySummary.of(recoveries) if recoveries else None,
        total_dropped=sum(r.dropped for r in results),
        total_corrupted=sum(r.corrupted for r in results),
        requeues=requeues,
    )


def artifact(
    spec: CampaignSpec,
    results: Sequence[TrialResult],
    summary: CampaignSummary,
) -> dict:
    """The JSON-serializable campaign artifact (CI's BENCH_campaign.json)."""
    spec_dict = asdict(spec)
    spec_dict["rates"] = asdict(spec.rates)

    def _latency_dict(latency: LatencySummary | None) -> dict | None:
        if latency is None:
            return None
        return {
            "count": latency.count,
            "mean": latency.mean,
            "p50": latency.p50,
            "p95": latency.p95,
            "max": latency.maximum,
            "cdf": [list(point) for point in latency.cdf],
        }

    return {
        "spec": spec_dict,
        "summary": {
            "trials": summary.trials,
            "outcomes": summary.outcomes,
            "convergence_rate": summary.convergence_rate,
            "latency": _latency_dict(summary.latency),
            "wall_latency_mean_s": summary.wall_latency_mean,
            "mean_steps": summary.mean_steps,
            "total_faults": summary.total_faults,
            "wall_seconds": summary.wall_seconds,
            "trials_per_second": summary.trials_per_second,
            "availability_mean": summary.availability_mean,
            "detection": _latency_dict(summary.detection),
            "recovery": _latency_dict(summary.recovery),
            "total_dropped": summary.total_dropped,
            "total_corrupted": summary.total_corrupted,
            "requeues": summary.requeues,
        },
        "trials": [
            {
                "id": r.trial_id,
                "outcome": r.outcome,
                "steps": r.steps,
                "latency": r.latency,
                "entries": r.entries,
                "faults": r.faults,
                "digest": r.digest,
                "dropped": r.dropped,
                "corrupted": r.corrupted,
                "availability": r.availability,
                "detections": len(r.detections),
                "recoveries": len(r.recoveries),
            }
            for r in results
        ],
    }


def write_artifact(path: str | Path, payload: dict) -> None:
    """Write a campaign artifact as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# ---------------------------------------------------------------------------
# Artifact stamping (schema version + content hash)
# ---------------------------------------------------------------------------
#
# Artifacts that downstream steps *consume* (the CI service smoke asserts on
# the loadgen artifact) carry a schema version and a content hash, so a
# consumer can tell a truncated or hand-edited file from a genuine one and
# fail loudly on a schema it does not understand.

#: Field names the stamp occupies in a stamped artifact.
STAMP_SCHEMA_FIELD = "schema_version"
STAMP_HASH_FIELD = "content_hash"


def artifact_content_hash(payload: dict) -> str:
    """SHA-256 over the canonical JSON of the payload minus the hash field."""
    body = {k: v for k, v in payload.items() if k != STAMP_HASH_FIELD}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def stamp_artifact(payload: dict, schema_version: int) -> dict:
    """A copy of ``payload`` carrying its schema version and content hash."""
    stamped = dict(payload)
    stamped[STAMP_SCHEMA_FIELD] = schema_version
    stamped[STAMP_HASH_FIELD] = artifact_content_hash(stamped)
    return stamped


def verify_stamp(payload: dict, expected_schema: int | None = None) -> None:
    """Validate a stamped artifact; raises ``ValueError`` on any mismatch."""
    if STAMP_SCHEMA_FIELD not in payload:
        raise ValueError("artifact has no schema_version stamp")
    if expected_schema is not None:
        found = payload[STAMP_SCHEMA_FIELD]
        if found != expected_schema:
            raise ValueError(
                f"artifact schema_version {found!r} != expected "
                f"{expected_schema}"
            )
    recorded = payload.get(STAMP_HASH_FIELD)
    if not recorded:
        raise ValueError("artifact has no content_hash stamp")
    actual = artifact_content_hash(payload)
    if actual != recorded:
        raise ValueError(
            f"artifact content hash mismatch: recorded {recorded}, "
            f"recomputed {actual}"
        )
