"""The deterministic single-trial runner.

A **trial** is one seeded randomized execution: build the (optionally
wrapped) TME system, drive it with a :class:`RandomScheduler` whose RNG is
derived from ``(root_seed, trial_id)``, inject a
:class:`~repro.faults.injector.Windowed` burst of Section 3.1 faults whose
RNG is derived from the *same* pair on an independent stream, and run until
the wrapped specification's legitimacy predicate has held continuously for
a confirmation window (or a step budget runs out).

Legitimacy is monitored online, so trials can stop early and never
accumulate a trace: a state is legitimate when at most one process eats
(ME1), and the run has *converged* at candidate point ``c`` -- the first
state after both the fault horizon and the last ME1 violation -- once a
full confirmation window passes ``c`` with at least one CS entry and no
process left hungry for longer than the window (the operational analogue
of :func:`repro.verification.stabilization.check_stabilization`, which is
trace-analytic and therefore unusable at campaign scale).

Determinism is checked, not assumed: every trial folds its schedule, fault
descriptions, and periodic state snapshots into a canonical SHA-256
**trace digest** that is independent of interpreter hash randomization, so
``run_trial(spec, i)`` in any process -- or a scripted
:func:`replay_trial` of its recorded decisions -- must reproduce the exact
digest.
"""

from __future__ import annotations

import hashlib
import time
from collections.abc import Collection, Sequence
from dataclasses import dataclass, field, replace

from repro.campaign.faults import (
    ChurnRates,
    DecidingFaults,
    FaultRates,
    ReplayFaults,
)
from repro.campaign.record import (
    FaultDecision,
    RecordingScheduler,
    SchedDecision,
    ScriptedScheduler,
)
from repro.campaign.seeds import FAULTS_STREAM, SCHEDULER_STREAM, spawn_rng
from repro.faults.injector import Composite, FaultInjector, Windowed
from repro.recovery import RecoveryConfig, RecoveryManager
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.simulator import Simulator
from repro.runtime.trace import StepRecord
from repro.tme.client import ClientConfig
from repro.tme.interfaces import EATING, HUNGRY
from repro.tme.scenarios import tme_programs
from repro.tme.wrapper import WrapperConfig

Decision = SchedDecision | FaultDecision


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a campaign's trials share; one spec + trial id = one run.

    ``theta=None`` runs the bare algorithm (no wrapper); any int attaches
    ``W'(theta)``.  ``confirm_window`` and ``max_steps`` default to
    ``None`` = scale with ``n`` (CS entries serialize, so a fixed window
    would starve large rings).
    """

    algorithm: str = "ra"
    n: int = 8
    root_seed: int = 0
    theta: int | None = 4
    fault_start: int = 40
    fault_stop: int = 160
    rates: FaultRates = field(default_factory=FaultRates)
    confirm_window: int | None = None
    max_steps: int | None = None
    deliver_bias: float = 2.0
    think_delay: int = 2
    eat_delay: int = 1
    digest_every: int = 64
    #: ``None`` = no crash/partition churn (the pre-churn RNG stream and
    #: digests are bit-for-bit preserved in that case).
    churn: ChurnRates | None = None
    #: ``None`` = no recovery subsystem attached.
    recovery: RecoveryConfig | None = None

    def __post_init__(self) -> None:
        if self.fault_stop < self.fault_start:
            raise ValueError("fault_stop must be >= fault_start")

    @property
    def effective_confirm_window(self) -> int:
        """Confirmation window: explicit, or ~one full service rotation.

        CS entries serialize and cost O(n) messages each, so under full
        contention a hungry process legitimately waits O(n^2) steps for
        all peers to be served (measured fault-free: ~9.5 n^2 worst
        hunger at n=16).  12 n^2 covers that with margin; anything
        linear in n misclassifies healthy large systems as diverged.
        """
        if self.confirm_window is not None:
            return self.confirm_window
        return max(120, 12 * self.n * self.n)

    @property
    def effective_max_steps(self) -> int:
        """Step budget: explicit, or horizon + several windows."""
        if self.max_steps is not None:
            return self.max_steps
        return self.fault_stop + max(1200, 3 * self.effective_confirm_window)

    @property
    def effective_avail_window(self) -> int:
        """A step is *served* if the last CS entry is at most this old
        (given demand); a quarter of the confirmation window keeps the
        availability measure strictly harder than the convergence one."""
        return max(30, self.effective_confirm_window // 4)


@dataclass(frozen=True)
class TrialResult:
    """One trial's verdict, measurements, and reproducibility evidence."""

    trial_id: int
    outcome: str  # "converged" | "diverged" | "timeout" | "crashed"
    steps: int
    latency: int | None  # steps from the fault horizon to convergence
    wall_seconds: float
    wall_latency: float | None  # seconds from the fault horizon
    entries: int
    faults: int
    me1_after_horizon: int
    digest: str
    detail: str = ""
    decisions: tuple[Decision, ...] | None = None
    # -- robustness measurements (defaults keep pre-churn artifacts valid) --
    availability: float | None = None
    dropped: int = 0
    corrupted: int = 0
    detections: tuple[int, ...] = ()
    recoveries: tuple[int, ...] = ()
    recovery_stages: tuple[tuple[str, int], ...] = ()
    sched_fallbacks: int = 0
    ops_skipped: int = 0

    @property
    def converged(self) -> bool:
        return self.outcome == "converged"


# ---------------------------------------------------------------------------
# Canonical digesting (hash-randomization independent)
# ---------------------------------------------------------------------------


def canonical_repr(obj: object) -> str:
    """A repr that is stable across processes: sets are sorted, dicts are
    ordered by key, everything else trusts its (deterministic) ``repr``."""
    if isinstance(obj, (frozenset, set)):
        return "{" + ",".join(sorted(canonical_repr(x) for x in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: canonical_repr(kv[0]))
        return (
            "{"
            + ",".join(
                f"{canonical_repr(k)}:{canonical_repr(v)}" for k, v in items
            )
            + "}"
        )
    if isinstance(obj, (tuple, list)):
        return "(" + ",".join(canonical_repr(x) for x in obj) + ")"
    return repr(obj)


class TraceDigest:
    """Rolling SHA-256 over step records plus periodic state snapshots."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()

    def update_step(self, record: StepRecord) -> None:
        self._hash.update(
            canonical_repr(
                (
                    record.index,
                    record.kind,
                    record.pid,
                    record.action,
                    record.delivered_kind,
                    record.delivered_from,
                    record.sends,
                    record.faults,
                )
            ).encode()
        )

    def update_state(self, simulator: Simulator) -> None:
        snapshot = simulator.snapshot()
        self._hash.update(
            canonical_repr((snapshot.processes, snapshot.channels)).encode()
        )

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


# ---------------------------------------------------------------------------
# The online legitimacy monitor
# ---------------------------------------------------------------------------


class _Monitor:
    """Track ME1 cleanliness, CS entries, and open hungers step by step."""

    def __init__(
        self, simulator: Simulator, horizon: int, avail_window: int = 0
    ):
        self.horizon = horizon
        self.phases = {
            pid: proc.variables.get("phase")
            for pid, proc in simulator.processes.items()
        }
        self.hungry_since = {
            pid: (0 if phase == HUNGRY else None)
            for pid, phase in self.phases.items()
        }
        self.last_bad = -1
        self.me1_total = 0
        self.me1_after_horizon = 0
        self.entry_indices: list[int] = []
        self.avail_window = avail_window
        self.served_steps = 0
        self.observed_steps = 0

    def observe(self, simulator: Simulator, state_index: int) -> None:
        eating = 0
        for pid, proc in simulator.processes.items():
            phase = proc.variables.get("phase")
            if phase == EATING:
                eating += 1
            previous = self.phases[pid]
            if phase != previous:
                if previous == HUNGRY and phase == EATING:
                    self.entry_indices.append(state_index)
                if phase == HUNGRY:
                    self.hungry_since[pid] = state_index
                elif previous == HUNGRY:
                    self.hungry_since[pid] = None
                self.phases[pid] = phase
        if eating >= 2:
            self.last_bad = state_index
            self.me1_total += 1
            if state_index > self.horizon:
                self.me1_after_horizon += 1
        if self.avail_window:
            # A step is served if nobody wants the CS, or somebody entered
            # it recently enough (grace from step 0 before the first entry).
            self.observed_steps += 1
            demand = any(
                since is not None for since in self.hungry_since.values()
            )
            last_entry = self.entry_indices[-1] if self.entry_indices else 0
            if not demand or state_index - last_entry <= self.avail_window:
                self.served_steps += 1

    @property
    def availability(self) -> float | None:
        """Fraction of observed steps that were served (None untracked)."""
        if not self.avail_window or not self.observed_steps:
            return None
        return self.served_steps / self.observed_steps

    def converged_at(self, state_index: int, window: int) -> int | None:
        """The convergence candidate, once a window confirms it."""
        candidate = max(self.horizon, self.last_bad + 1)
        if state_index - candidate < window:
            return None
        if not self.entry_indices or self.entry_indices[-1] < candidate:
            return None
        for since in self.hungry_since.values():
            if since is not None and state_index - since > window:
                return None
        return candidate


# ---------------------------------------------------------------------------
# Trial execution
# ---------------------------------------------------------------------------


def build_trial_simulator(
    spec: CampaignSpec,
    scheduler,
    fault_hook,
) -> Simulator:
    """The trial's system: programs + scheduler + faults, lean recording."""
    wrapper = (
        WrapperConfig(theta=spec.theta) if spec.theta is not None else None
    )
    programs = tme_programs(
        spec.algorithm,
        spec.n,
        ClientConfig(think_delay=spec.think_delay, eat_delay=spec.eat_delay),
        wrapper,
    )
    sim = Simulator(
        programs, scheduler, fault_hook=fault_hook, record_states=False
    )
    # Campaign trials digest step records on the fly; accumulating the
    # trace (and its event log) would be O(steps) memory per trial.
    sim.record_trace = False
    return sim


def _attach_recovery(
    spec: CampaignSpec, hook: FaultInjector
) -> tuple[FaultInjector, RecoveryManager | None]:
    """Compose the recovery manager behind the trial's fault hook.

    The composition is identical in free runs and replays (the manager is
    deterministic and RNG-free, so it needs no recorded decisions).
    """
    if spec.recovery is None:
        return hook, None
    manager = RecoveryManager(spec.recovery)
    return Composite([hook, manager]), manager


def _execute(
    spec: CampaignSpec,
    trial_id: int,
    scheduler,
    fault_hook,
    fault_count,
    log: list | None,
    keep_decisions: str,
    recovery_manager: RecoveryManager | None = None,
) -> TrialResult:
    started = time.perf_counter()
    sim = build_trial_simulator(spec, scheduler, fault_hook)
    monitor = _Monitor(
        sim,
        horizon=spec.fault_stop,
        avail_window=spec.effective_avail_window,
    )
    digest = TraceDigest()
    window = spec.effective_confirm_window
    max_steps = spec.effective_max_steps
    horizon_wall = started if spec.fault_stop == 0 else None

    outcome = "diverged"
    latency: int | None = None
    wall_latency: float | None = None
    steps = 0
    for index in range(max_steps):
        record = sim.step()
        state_index = index + 1
        steps = state_index
        digest.update_step(record)
        if spec.digest_every and state_index % spec.digest_every == 0:
            digest.update_state(sim)
        monitor.observe(sim, state_index)
        if horizon_wall is None and state_index >= spec.fault_stop:
            horizon_wall = time.perf_counter()
        if state_index >= spec.fault_stop:
            candidate = monitor.converged_at(state_index, window)
            if candidate is not None:
                outcome = "converged"
                latency = candidate - spec.fault_stop
                wall_latency = time.perf_counter() - horizon_wall
                break
    digest.update_state(sim)

    keep = keep_decisions == "always" or (
        keep_decisions == "failure" and outcome != "converged"
    )
    detections: tuple[int, ...] = ()
    recoveries: tuple[int, ...] = ()
    recovery_stages: tuple[tuple[str, int], ...] = ()
    if recovery_manager is not None:
        metrics = recovery_manager.metrics()
        detections = metrics.detection_latencies
        recoveries = metrics.recovery_latencies
        recovery_stages = metrics.stage_counts
    return TrialResult(
        trial_id=trial_id,
        outcome=outcome,
        steps=steps,
        latency=latency,
        wall_seconds=time.perf_counter() - started,
        wall_latency=wall_latency,
        entries=len(monitor.entry_indices),
        faults=fault_count(),
        me1_after_horizon=monitor.me1_after_horizon,
        digest=digest.hexdigest(),
        detail=(
            f"me1_total={monitor.me1_total} "
            f"window={window} max_steps={max_steps}"
        ),
        decisions=tuple(log) if keep and log is not None else None,
        availability=monitor.availability,
        dropped=sim.network.total_dropped(),
        corrupted=sim.network.total_corrupted(),
        detections=detections,
        recoveries=recoveries,
        recovery_stages=recovery_stages,
    )


def run_trial(
    spec: CampaignSpec,
    trial_id: int,
    keep_decisions: str = "failure",
) -> TrialResult:
    """One free (RNG-driven) trial, fully determined by
    ``(spec.root_seed, trial_id)``.

    ``keep_decisions``: attach the recorded decision log to the result
    ``"always"``, only on ``"failure"`` (the default -- that is what the
    shrinker needs), or ``"never"``.
    """
    log: list[Decision] = []
    scheduler = RecordingScheduler(
        RandomScheduler(
            spawn_rng(spec.root_seed, trial_id, SCHEDULER_STREAM),
            deliver_bias=spec.deliver_bias,
        ),
        log,
    )
    deciding = DecidingFaults(
        spawn_rng(spec.root_seed, trial_id, FAULTS_STREAM),
        spec.rates,
        log,
        churn=spec.churn,
    )
    hook, manager = _attach_recovery(
        spec, Windowed(deciding, spec.fault_start, spec.fault_stop)
    )
    return _execute(
        spec,
        trial_id,
        scheduler,
        hook,
        lambda: deciding.count,
        log,
        keep_decisions,
        recovery_manager=manager,
    )


def replay_trial(
    spec: CampaignSpec,
    trial_id: int,
    decisions: Sequence[Decision],
    masked: Collection[Decision] = (),
) -> TrialResult:
    """A scripted re-run of a recorded decision list (minus ``masked``).

    With the full list and no mask this reproduces the free run's digest
    bit-for-bit; with masks it is the executable variant the shrinker
    probes.  No RNG is consumed at all.
    """
    sched_decisions = [d for d in decisions if isinstance(d, SchedDecision)]
    fault_decisions = [d for d in decisions if isinstance(d, FaultDecision)]
    scheduler = ScriptedScheduler(sched_decisions, masked)
    replayer = ReplayFaults(fault_decisions, masked)
    hook, manager = _attach_recovery(spec, replayer)
    result = _execute(
        spec,
        trial_id,
        scheduler,
        hook,
        lambda: replayer.count,
        None,
        "never",
        recovery_manager=manager,
    )
    extra = (
        f" fallbacks={scheduler.fallbacks} skipped_ops={replayer.skipped}"
    )
    return replace(
        result,
        detail=result.detail + extra,
        sched_fallbacks=scheduler.fallbacks,
        ops_skipped=replayer.skipped,
    )
