"""The declarative experiment-spec layer: spec file -> trial matrix.

A campaign used to be one :class:`~repro.campaign.trial.CampaignSpec`
plus a trial count, assembled ad hoc by whoever called
:func:`~repro.campaign.runner.run_campaign`.  This module makes the
experiment itself a declarative, serializable object (in the style of
erdos-scheduling-simulator's ``experiments`` module): an
:class:`ExperimentSpec` names a **base** parameter set, optional sweep
**axes** (expanded as a cartesian product) or explicit named **configs**,
and a per-config trial count -- and :meth:`ExperimentSpec.expand` turns
it into a :class:`TrialMatrix`, the flat, deterministically ordered list
of :class:`TrialTask` s a scheduler executes.

Everything downstream hangs off two properties of the expansion:

* **location independence** -- each config's ``root_seed`` is derived
  hierarchically (:func:`repro.campaign.seeds.derive_seed` over the
  experiment root and the config name), so ``(config, trial_id)``
  determines a trial completely no matter which process, machine, or
  resumed run executes it;
* **identity** -- :attr:`TrialMatrix.matrix_digest` is a SHA-256 over
  the canonical JSON of the expanded configuration, so a resumed run
  (or a third party holding a stamped artifact) can prove it is talking
  about the *same* experiment before trusting any journal.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.campaign.faults import ChurnRates, FaultRates
from repro.campaign.seeds import derive_seed
from repro.campaign.trial import CampaignSpec
from repro.recovery import RecoveryConfig

#: Parameter names :func:`build_campaign_spec` understands.  Anything
#: else in a spec file is a typo; expansion refuses it loudly.
SPEC_PARAMS = frozenset(
    {
        "algorithm",
        "n",
        "root_seed",
        "theta",
        "bare",
        "fault_start",
        "fault_stop",
        "fault_scale",
        "churn_scale",
        "downtime",
        "heal_after",
        "recovery",
        "stall_window",
        "confirm_window",
        "max_steps",
        "deliver_bias",
        "think_delay",
        "eat_delay",
        "digest_every",
        "trials",
    }
)


def canonical_json(payload: object) -> str:
    """The one JSON encoding of ``payload`` every process agrees on."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def build_campaign_spec(params: Mapping[str, object]) -> CampaignSpec:
    """A :class:`CampaignSpec` from flat declarative parameters.

    The flat names mirror the campaign CLI flags (``fault_scale`` scales
    the standard :class:`FaultRates`, ``churn_scale > 0`` switches churn
    on, ``recovery`` defaults to "on iff churn is on", ``bare`` beats
    ``theta``), so a spec file reads like the command line it replaces.
    """
    unknown = set(params) - SPEC_PARAMS
    if unknown:
        raise ValueError(
            f"unknown campaign spec parameter(s): {sorted(unknown)}"
        )
    get = params.get
    churn_scale = float(get("churn_scale", 0.0) or 0.0)
    churn = None
    if churn_scale > 0:
        churn = ChurnRates(
            downtime=int(get("downtime", 40)),
            heal_after=int(get("heal_after", 60)),
        ).scaled(churn_scale)
    with_recovery = get("recovery")
    if with_recovery is None:
        with_recovery = churn is not None
    recovery = (
        RecoveryConfig(stall_window=get("stall_window"))
        if with_recovery
        else None
    )
    theta = None if get("bare") else get("theta", 4)
    return CampaignSpec(
        algorithm=str(get("algorithm", "ra")),
        n=int(get("n", 8)),
        root_seed=int(get("root_seed", 0)),
        theta=None if theta is None else int(theta),
        fault_start=int(get("fault_start", 40)),
        fault_stop=int(get("fault_stop", 160)),
        rates=FaultRates().scaled(float(get("fault_scale", 1.0))),
        confirm_window=get("confirm_window"),
        max_steps=get("max_steps"),
        deliver_bias=float(get("deliver_bias", 2.0)),
        think_delay=int(get("think_delay", 2)),
        eat_delay=int(get("eat_delay", 1)),
        digest_every=int(get("digest_every", 64)),
        churn=churn,
        recovery=recovery,
    )


@dataclass(frozen=True)
class TrialTask:
    """One schedulable unit of work: run ``trial_id`` of one config.

    ``task_id`` is the task's dense index in matrix order -- the journal
    key, the lease key, and the position of its row in the artifact.
    """

    task_id: int
    config: str
    spec: CampaignSpec
    trial_id: int


@dataclass(frozen=True)
class TrialMatrix:
    """The fully expanded experiment: named configs and ordered tasks."""

    name: str
    configs: tuple[tuple[str, CampaignSpec], ...]
    trials: tuple[tuple[str, int], ...]  # (config name, trial count)
    tasks: tuple[TrialTask, ...]

    def __len__(self) -> int:
        return len(self.tasks)

    def config_specs(self) -> dict[str, CampaignSpec]:
        return dict(self.configs)

    @property
    def matrix_digest(self) -> str:
        """SHA-256 identity of the expanded experiment.

        Covers the experiment name, every config's full
        :class:`CampaignSpec` (dataclass-serialized), and the per-config
        trial counts -- everything that determines every trial -- so two
        runs with equal digests execute bit-identical work.
        """
        payload = {
            "name": self.name,
            "configs": {
                name: _spec_dict(spec) for name, spec in self.configs
            },
            "trials": dict(self.trials),
        }
        raw = canonical_json(payload).encode("utf-8")
        return "sha256:" + hashlib.sha256(raw).hexdigest()

    def describe(self) -> str:
        parts = [
            f"{name} x{count}" for name, count in self.trials
        ]
        return (
            f"{self.name}: {len(self.tasks)} trials over "
            f"{len(self.configs)} config(s) ({', '.join(parts)})"
        )


def _spec_dict(spec: CampaignSpec) -> dict:
    """A JSON-ready dict of a :class:`CampaignSpec` (nested dataclasses
    flattened by :func:`dataclasses.asdict`)."""
    return asdict(spec)


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative campaign experiment, before expansion.

    Exactly one of three shapes:

    * base only -- a single config named ``"default"``;
    * ``axes`` -- cartesian product of the axis values over the base
      (config names are ``"axis=value,..."`` in sorted-axis order);
    * ``configs`` -- explicit name -> parameter-override mapping.
    """

    name: str = "campaign"
    root_seed: int = 0
    trials: int = 100
    base: Mapping[str, object] = field(default_factory=dict)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    configs: Mapping[str, Mapping[str, object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trials < 0:
            raise ValueError("trials must be non-negative")
        if self.axes and self.configs:
            raise ValueError("give either axes or configs, not both")

    def _config_params(self) -> list[tuple[str, dict[str, object]]]:
        if self.configs:
            return [
                (name, {**self.base, **dict(overrides)})
                for name, overrides in self.configs.items()
            ]
        if self.axes:
            names = sorted(self.axes)
            combos = itertools.product(
                *(list(self.axes[axis]) for axis in names)
            )
            out = []
            for values in combos:
                label = ",".join(
                    f"{axis}={value}"
                    for axis, value in zip(names, values)
                )
                params = dict(self.base)
                params.update(dict(zip(names, values)))
                out.append((label, params))
            return out
        return [("default", dict(self.base))]

    def expand(self) -> TrialMatrix:
        """The deterministic trial matrix of this experiment.

        Config order is definition order (explicit configs) or sorted
        cartesian order (axes); tasks enumerate each config's trials
        contiguously.  Each config's ``root_seed`` is derived from the
        experiment root and the config *name* unless the config pins one
        explicitly, so sibling configs draw independent RNG streams.
        """
        configs: list[tuple[str, CampaignSpec]] = []
        trials: list[tuple[str, int]] = []
        tasks: list[TrialTask] = []
        for name, params in self._config_params():
            count = int(params.pop("trials", self.trials))
            if count < 0:
                raise ValueError(f"config {name!r}: trials must be >= 0")
            if "root_seed" not in params:
                params["root_seed"] = derive_seed(
                    self.root_seed, "config", name
                )
            spec = build_campaign_spec(params)
            configs.append((name, spec))
            trials.append((name, count))
        for name, spec in configs:
            count = dict(trials)[name]
            for trial_id in range(count):
                tasks.append(
                    TrialTask(
                        task_id=len(tasks),
                        config=name,
                        spec=spec,
                        trial_id=trial_id,
                    )
                )
        return TrialMatrix(
            name=self.name,
            configs=tuple(configs),
            trials=tuple(trials),
            tasks=tuple(tasks),
        )


def single_spec_matrix(
    spec: CampaignSpec, trials: int, name: str = "campaign"
) -> TrialMatrix:
    """The one-config matrix of a pre-built :class:`CampaignSpec`.

    The compatibility path for callers that never touch spec files
    (:func:`repro.campaign.runner.run_campaign`): the spec's own
    ``root_seed`` is used untouched, so ``task_id == trial_id`` and
    digests match the historical single-spec campaigns exactly.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    tasks = tuple(
        TrialTask(task_id=i, config="default", spec=spec, trial_id=i)
        for i in range(trials)
    )
    return TrialMatrix(
        name=name,
        configs=(("default", spec),),
        trials=(("default", trials),),
        tasks=tasks,
    )


def parse_experiment_spec(payload: Mapping[str, object]) -> ExperimentSpec:
    """An :class:`ExperimentSpec` from a decoded spec-file mapping."""
    known = {"name", "root_seed", "trials", "base", "axes", "configs"}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            f"unknown experiment spec key(s): {sorted(unknown)}"
        )
    return ExperimentSpec(
        name=str(payload.get("name", "campaign")),
        root_seed=int(payload.get("root_seed", 0)),
        trials=int(payload.get("trials", 100)),
        base=dict(payload.get("base", {})),
        axes={
            str(k): list(v) for k, v in dict(payload.get("axes", {})).items()
        },
        configs={
            str(k): dict(v)
            for k, v in dict(payload.get("configs", {})).items()
        },
    )


def load_experiment_spec(path: str | Path) -> ExperimentSpec:
    """Read and validate a JSON experiment spec file."""
    raw = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: spec must be a JSON object")
    return parse_experiment_spec(payload)
