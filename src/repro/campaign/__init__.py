"""Parallel Monte-Carlo fault-injection campaigns (statistical stabilization).

The exhaustive exploration engine (:mod:`repro.explore`) substantiates the
paper's theorems up to n~5; beyond that, *statistical* evidence takes over.
A **campaign** runs thousands of seeded randomized trials -- each one a
(algorithm, n, scheduler, :class:`~repro.faults.injector.Windowed` fault
burst, seed) execution on the existing
:class:`~repro.runtime.simulator.Simulator` -- and reports the distribution
of convergence latency after the fault window closes (Theorems 8/9/10 at
scales n=8..32, the Section 3.1 fault model realized by random bursts).

Layers:

* :mod:`repro.campaign.seeds`   -- the hierarchical seed scheme: one root
  seed deterministically derives every per-trial RNG stream, so any trial
  replays bit-for-bit from ``(root_seed, trial_id)`` alone;
* :mod:`repro.campaign.record`  -- decision recording and scripted replay
  (scheduler choices + concrete fault operations);
* :mod:`repro.campaign.faults`  -- the deciding fault injector: rolls the
  Section 3.1 fault classes (loss / duplication / corruption / state
  corruption, plus crash-restart / crash-stop / partition / heal churn
  when :class:`ChurnRates` is set) into *concrete, replayable* operations;
* :mod:`repro.campaign.trial`   -- the deterministic single-trial runner
  with an online legitimacy monitor and a canonical trace digest;
* :mod:`repro.campaign.spec`    -- the declarative experiment layer: a
  serializable :class:`ExperimentSpec` (base parameters, sweep axes or
  named configs) expands into a deterministic :class:`TrialMatrix`
  whose ``matrix_digest`` pins the experiment's identity;
* :mod:`repro.campaign.sched`   -- the kill-safe work-stealing scheduler:
  lease-based claims with heartbeat liveness, capped-backoff requeue of
  environmental deaths, graceful fan-out degradation, and resume to a
  bit-identical artifact digest;
* :mod:`repro.campaign.journal` -- the durable campaign journal behind
  it (append-only, torn-tail tolerant, same framing as the exploration
  logs);
* :mod:`repro.campaign.chaos`   -- the built-in chaos self-test that
  SIGKILLs workers and the coordinator at seeded points and asserts the
  resumed digest equals a clean run's;
* :mod:`repro.campaign.runner`  -- the stable single-spec front door
  (``run_campaign``), now a thin wrapper over the scheduler (a dead
  worker fails its trial, not the campaign);
* :mod:`repro.campaign.shrink`  -- delta-debugging of failing trials down
  to a locally minimal fault/schedule decision list, rendered via
  :mod:`repro.core.counterexample`;
* :mod:`repro.campaign.stats`   -- latency distributions (mean/p50/p95/max,
  empirical CDF) and the stamped JSON artifacts behind EXPERIMENTS.md
  E16/E20.
"""

from repro.campaign.faults import (
    ChurnRates,
    CrashProcess,
    DecidingFaults,
    FaultRates,
    HealNet,
    PartitionNet,
    ReplayFaults,
)
from repro.campaign.record import (
    FaultDecision,
    RecordingScheduler,
    SchedDecision,
    ScriptedScheduler,
)
from repro.campaign.chaos import ChaosReport, run_chaos_selftest
from repro.campaign.journal import CampaignJournal, replay_journal
from repro.campaign.runner import run_campaign
from repro.campaign.sched import (
    MatrixRun,
    SchedStats,
    SchedulerConfig,
    run_matrix,
)
from repro.campaign.seeds import derive_seed, spawn_rng
from repro.campaign.shrink import (
    ShrinkResult,
    ddmin,
    is_locally_minimal,
    shrink_trial,
)
from repro.campaign.spec import (
    ExperimentSpec,
    TrialMatrix,
    TrialTask,
    load_experiment_spec,
    parse_experiment_spec,
    single_spec_matrix,
)
from repro.campaign.stats import (
    CampaignSummary,
    LatencySummary,
    artifact,
    ecdf,
    matrix_artifact,
    quantile,
    stamp_artifact,
    summarize,
    verify_stamp,
    write_artifact,
)
from repro.campaign.trial import (
    CampaignSpec,
    TrialResult,
    replay_trial,
    run_trial,
)

__all__ = [
    "CampaignJournal",
    "CampaignSpec",
    "CampaignSummary",
    "ChaosReport",
    "ChurnRates",
    "CrashProcess",
    "DecidingFaults",
    "ExperimentSpec",
    "FaultDecision",
    "FaultRates",
    "HealNet",
    "LatencySummary",
    "MatrixRun",
    "PartitionNet",
    "RecordingScheduler",
    "ReplayFaults",
    "SchedDecision",
    "SchedStats",
    "SchedulerConfig",
    "ScriptedScheduler",
    "ShrinkResult",
    "TrialMatrix",
    "TrialResult",
    "TrialTask",
    "artifact",
    "ddmin",
    "derive_seed",
    "ecdf",
    "is_locally_minimal",
    "load_experiment_spec",
    "matrix_artifact",
    "parse_experiment_spec",
    "quantile",
    "replay_journal",
    "replay_trial",
    "run_campaign",
    "run_chaos_selftest",
    "run_matrix",
    "run_trial",
    "shrink_trial",
    "single_spec_matrix",
    "spawn_rng",
    "stamp_artifact",
    "summarize",
    "verify_stamp",
    "write_artifact",
]
