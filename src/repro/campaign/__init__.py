"""Parallel Monte-Carlo fault-injection campaigns (statistical stabilization).

The exhaustive exploration engine (:mod:`repro.explore`) substantiates the
paper's theorems up to n~5; beyond that, *statistical* evidence takes over.
A **campaign** runs thousands of seeded randomized trials -- each one a
(algorithm, n, scheduler, :class:`~repro.faults.injector.Windowed` fault
burst, seed) execution on the existing
:class:`~repro.runtime.simulator.Simulator` -- and reports the distribution
of convergence latency after the fault window closes (Theorems 8/9/10 at
scales n=8..32, the Section 3.1 fault model realized by random bursts).

Layers:

* :mod:`repro.campaign.seeds`   -- the hierarchical seed scheme: one root
  seed deterministically derives every per-trial RNG stream, so any trial
  replays bit-for-bit from ``(root_seed, trial_id)`` alone;
* :mod:`repro.campaign.record`  -- decision recording and scripted replay
  (scheduler choices + concrete fault operations);
* :mod:`repro.campaign.faults`  -- the deciding fault injector: rolls the
  Section 3.1 fault classes (loss / duplication / corruption / state
  corruption, plus crash-restart / crash-stop / partition / heal churn
  when :class:`ChurnRates` is set) into *concrete, replayable* operations;
* :mod:`repro.campaign.trial`   -- the deterministic single-trial runner
  with an online legitimacy monitor and a canonical trace digest;
* :mod:`repro.campaign.runner`  -- process fan-out with per-trial timeout
  and worker-crash recovery (a dead worker fails its trial, not the
  campaign);
* :mod:`repro.campaign.shrink`  -- delta-debugging of failing trials down
  to a locally minimal fault/schedule decision list, rendered via
  :mod:`repro.core.counterexample`;
* :mod:`repro.campaign.stats`   -- latency distributions (mean/p50/p95/max,
  empirical CDF) and the JSON artifact behind EXPERIMENTS.md E16.
"""

from repro.campaign.faults import (
    ChurnRates,
    CrashProcess,
    DecidingFaults,
    FaultRates,
    HealNet,
    PartitionNet,
    ReplayFaults,
)
from repro.campaign.record import (
    FaultDecision,
    RecordingScheduler,
    SchedDecision,
    ScriptedScheduler,
)
from repro.campaign.runner import run_campaign
from repro.campaign.seeds import derive_seed, spawn_rng
from repro.campaign.shrink import (
    ShrinkResult,
    ddmin,
    is_locally_minimal,
    shrink_trial,
)
from repro.campaign.stats import (
    CampaignSummary,
    LatencySummary,
    artifact,
    ecdf,
    quantile,
    summarize,
    write_artifact,
)
from repro.campaign.trial import (
    CampaignSpec,
    TrialResult,
    replay_trial,
    run_trial,
)

__all__ = [
    "CampaignSpec",
    "CampaignSummary",
    "ChurnRates",
    "CrashProcess",
    "DecidingFaults",
    "FaultDecision",
    "FaultRates",
    "HealNet",
    "LatencySummary",
    "PartitionNet",
    "RecordingScheduler",
    "ReplayFaults",
    "SchedDecision",
    "ScriptedScheduler",
    "ShrinkResult",
    "TrialResult",
    "artifact",
    "ddmin",
    "derive_seed",
    "ecdf",
    "is_locally_minimal",
    "quantile",
    "replay_trial",
    "run_campaign",
    "run_trial",
    "shrink_trial",
    "spawn_rng",
    "summarize",
    "write_artifact",
]
