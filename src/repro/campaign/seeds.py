"""Hierarchical seed derivation: one root seed, many independent streams.

Reproducibility demands that every RNG in a trial be derivable from
``(root_seed, trial_id)`` alone -- and that distinct streams (the scheduler's
coin flips vs. the fault injector's) never share state, so that changing how
one stream is consumed cannot perturb the other.  Ad-hoc schemes like
``random.Random(run_seed + 1)`` correlate neighbouring seeds (Mersenne
Twister seeded with adjacent integers starts from adjacent initialization
paths, and ``seed`` vs. ``seed + 1`` collide outright across trials); the
scheme here instead *hashes the full derivation path*:

    ``child = random.Random("root/trial/stream").getrandbits(64)``

``random.Random`` seeded with a *string* runs it through SHA-512 (CPython's
``seed(version=2)``), so the derivation is deterministic across processes
and platforms -- unlike ``hash()``, which is randomized per interpreter --
and any two distinct paths yield statistically independent 64-bit seeds.
"""

from __future__ import annotations

import random

#: Named streams of a campaign trial.  New consumers must take a new name,
#: never share an existing stream.
SCHEDULER_STREAM = "scheduler"
FAULTS_STREAM = "faults"


def derive_seed(root: int, *path: int | str) -> int:
    """A 64-bit child seed for ``path`` under ``root``.

    The same ``(root, *path)`` always yields the same seed; any differing
    component yields an unrelated one.  Path components are joined
    positionally, so ``derive_seed(1, 23)`` and ``derive_seed(12, 3)``
    are distinct.
    """
    key = "/".join(str(part) for part in (root, *path))
    return random.Random(key).getrandbits(64)


def spawn_rng(root: int, *path: int | str) -> random.Random:
    """An independent ``random.Random`` for the stream named by ``path``."""
    return random.Random(derive_seed(root, *path))
