"""The built-in chaos self-test: kill everything, resume, compare bits.

The scheduler's headline claim -- ``kill -9`` of any worker *or the
coordinator*, followed by ``--resume``, yields an artifact whose content
hash is bit-identical to an uninterrupted run's -- is exactly the kind
of claim that rots silently.  This module keeps it honest:

1. run the matrix cleanly, in-process, and take the stamped artifact's
   content hash as the reference;
2. run the same matrix through a *child* coordinator against a journal
   directory, with a seeded chaos hook murdering workers mid-trial, and
   SIGKILL the coordinator itself at seeded random delays;
3. resume (new child, same store) until a round survives to completion;
4. replay the journal in-process one last time (a resume with nothing
   left to do) and demand hash equality with the reference.

Every random choice -- which worker attempts die, when the coordinator
dies -- derives from one seed through the campaign's own hierarchical
seed tree (:func:`repro.campaign.seeds.derive_seed`), so a failing
chaos schedule is a reproducible bug report, not an anecdote.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path

from repro.campaign.journal import META_NAME
from repro.campaign.seeds import derive_seed
from repro.campaign.sched import (
    ChaosFn,
    MatrixRun,
    SchedulerConfig,
    TrialFn,
    run_matrix,
)
from repro.campaign.spec import TrialMatrix


def make_chaos_fn(
    seed: int, kill_rate: float, max_trial_retries: int
) -> ChaosFn:
    """A seeded worker-killing hook, deterministic in (task, attempt).

    Rolls an independent derived stream per ``(task_id, attempt)`` --
    location-independent, like trial seeds, so a resumed run facing the
    same attempt makes the same life-or-death call.  Attempts at or past
    the retry budget are always spared: chaos must perturb *scheduling*,
    never push a trial into a deterministic ``"crashed"`` outcome, or
    the digest comparison would be testing the chaos, not the recovery.
    """

    def chaos(task_id: int, attempt: int) -> None:
        if attempt >= max_trial_retries:
            return
        rng = random.Random(derive_seed(seed, "chaos", task_id, attempt))
        if rng.random() < kill_rate:
            os._exit(42)

    return chaos


@dataclass
class ChaosReport:
    """What the self-test did and what it proved."""

    rounds: int
    coordinator_kills: int
    reference_hash: str
    resumed_hash: str
    resumed_results: int
    tasks: int

    @property
    def digests_match(self) -> bool:
        return self.reference_hash == self.resumed_hash


def _coordinator_round(
    matrix: TrialMatrix,
    config: SchedulerConfig,
    store_dir: str,
    resume: bool,
    chaos_seed: int,
    kill_rate: float,
    trial_fn: TrialFn | None,
) -> None:
    """One coordinator lifetime (runs in a forked child)."""
    run_matrix(
        matrix,
        config,
        store_dir=store_dir,
        resume=resume,
        trial_fn=trial_fn,
        chaos_fn=make_chaos_fn(
            chaos_seed, kill_rate, config.max_trial_retries
        ),
    )


def run_chaos_selftest(
    matrix: TrialMatrix,
    store_dir: str | Path,
    *,
    workers: int = 2,
    seed: int = 0,
    kill_rate: float = 0.2,
    coordinator_kills: int = 2,
    kill_window: tuple[float, float] = (0.05, 0.8),
    trial_fn: TrialFn | None = None,
    config: SchedulerConfig | None = None,
    max_rounds: int | None = None,
) -> ChaosReport:
    """Prove kill/resume digest stability for ``matrix``; see module doc.

    ``store_dir`` must not already hold a journal.  ``trial_timeout``
    must stay unset (timeouts are wall-clock judgements, so they are the
    one outcome a clean and a chaos run may legitimately disagree on).
    Raises ``AssertionError`` if the resumed hash diverges from the
    clean reference -- this *is* the self-test failing.
    """
    if config is None:
        config = SchedulerConfig(workers=workers)
    if config.trial_timeout is not None:
        raise ValueError(
            "chaos self-test forbids trial_timeout: timeouts are "
            "wall-clock judgements and would make the digest flaky"
        )
    store = str(store_dir)
    if max_rounds is None:
        max_rounds = coordinator_kills + 5

    reference = run_matrix(matrix, config, trial_fn=trial_fn)
    reference_hash = reference.artifact()["content_hash"]

    ctx = get_context("fork")
    rng = random.Random(derive_seed(seed, "chaos", "coordinator"))
    kills_delivered = 0
    rounds = 0
    while True:
        if rounds >= max_rounds:
            raise AssertionError(
                f"chaos self-test did not complete within {max_rounds} "
                "coordinator rounds"
            )
        resume = (Path(store) / META_NAME).exists()
        child = ctx.Process(
            target=_coordinator_round,
            args=(matrix, config, store, resume, seed, kill_rate, trial_fn),
        )
        child.start()
        rounds += 1
        if kills_delivered < coordinator_kills:
            delay = rng.uniform(*kill_window)
            deadline = time.monotonic() + delay
            while time.monotonic() < deadline and child.is_alive():
                time.sleep(0.01)
            if child.is_alive():
                os.kill(child.pid, signal.SIGKILL)
                child.join()
                kills_delivered += 1
                continue
        child.join()
        if child.exitcode == 0:
            break
        raise AssertionError(
            f"chaos coordinator round {rounds} exited "
            f"{child.exitcode} without being killed"
        )

    final: MatrixRun = run_matrix(
        matrix, config, store_dir=store, resume=True, trial_fn=trial_fn
    )
    resumed_hash = final.artifact()["content_hash"]
    report = ChaosReport(
        rounds=rounds,
        coordinator_kills=kills_delivered,
        reference_hash=reference_hash,
        resumed_hash=resumed_hash,
        resumed_results=final.stats.resumed_results,
        tasks=len(matrix),
    )
    if not report.digests_match:
        raise AssertionError(
            "chaos self-test digest divergence: clean run stamped "
            f"{reference_hash} but kill/resume stamped {resumed_hash}"
        )
    return report
