"""Counterexample shrinking: delta-debug a failing trial's decisions.

A failing trial (safety violations that never cease, or no convergence by
the step budget) arrives as a recorded decision list -- every scheduler
choice and every concrete fault operation.  :func:`ddmin` (Zeller &
Hildebrandt's delta debugging, complement-testing variant) prunes that
list to a subset that still fails and is **1-minimal**: removing any
single remaining decision makes the trial pass.  Probes are scripted
replays (:func:`repro.campaign.trial.replay_trial`), so each is exactly as
deterministic as the original run.

The shrunk artifact is rendered through
:func:`repro.core.counterexample.render_counterexample` -- the same
counterexample vocabulary the Figure 1 systems established: a minimal
witness that a claimed property does not hold.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.campaign.trial import (
    CampaignSpec,
    Decision,
    TrialResult,
    replay_trial,
    run_trial,
)
from repro.core.counterexample import render_counterexample


def _chunks(items: list, n: int) -> list[list]:
    """Split ``items`` into ``n`` near-equal contiguous chunks."""
    size, extra = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        stop = start + size + (1 if i < extra else 0)
        if stop > start:
            out.append(items[start:stop])
        start = stop
    return out


def ddmin(
    items: Sequence,
    fails: Callable[[list], bool],
    max_probes: int | None = None,
) -> tuple[list, bool]:
    """A 1-minimal failing subset of ``items`` under ``fails``.

    Returns ``(subset, complete)``; ``complete`` is ``False`` only when
    ``max_probes`` stopped the search early (the subset still fails, but
    1-minimality is then unverified).  Probe results are cached, so
    re-testing a seen subset is free.
    """
    current = list(items)
    if not fails(current):
        raise ValueError("ddmin requires a failing starting point")
    cache: dict[frozenset, bool] = {}
    probes = 0

    def probe(candidate: list) -> bool | None:
        nonlocal probes
        key = frozenset(candidate)
        if key in cache:
            return cache[key]
        if max_probes is not None and probes >= max_probes:
            return None
        probes += 1
        verdict = fails(candidate)
        cache[key] = verdict
        return verdict

    granularity = 2
    while len(current) >= 2:
        reduced = False
        for i, chunk in enumerate(_chunks(current, granularity)):
            complement = [x for x in current if x not in set(chunk)]
            verdict = probe(complement)
            if verdict is None:
                return current, False
            if verdict:
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, True


@dataclass(frozen=True)
class ShrinkResult:
    """The minimal failing decision list and how it was found."""

    trial_id: int
    original: tuple[Decision, ...]
    minimal: tuple[Decision, ...]
    probes: int
    complete: bool  # False if max_probes cut the search short
    final: TrialResult  # the scripted replay of `minimal`

    @property
    def reduction(self) -> float:
        """Fraction of decisions eliminated."""
        if not self.original:
            return 0.0
        return 1.0 - len(self.minimal) / len(self.original)

    def render(self, spec: CampaignSpec) -> str:
        """Human-readable counterexample via :mod:`repro.core.counterexample`."""
        label = "bare" if spec.theta is None else f"W'(theta={spec.theta})"
        notes = [
            f"shrunk {len(self.original)} -> {len(self.minimal)} "
            f"decisions in {self.probes} replay probes"
            + ("" if self.complete else " (probe budget hit)"),
            "1-minimal: removing any single remaining decision "
            "makes the trial pass"
            if self.complete
            else "minimality unverified (probe budget hit)",
        ]
        if self.final.ops_skipped:
            notes.append(
                f"{self.final.ops_skipped} masked fault ops skipped at "
                "replay (victim crashed/absent when its decision came due)"
            )
        if self.final.sched_fallbacks:
            notes.append(
                f"{self.final.sched_fallbacks} scheduler fallbacks "
                "(scripted choice unavailable; deterministic substitute)"
            )
        return render_counterexample(
            title=(
                f"trial {self.trial_id}: {spec.algorithm} n={spec.n} "
                f"{label} root_seed={spec.root_seed}"
            ),
            decisions=[d.describe() for d in self.minimal],
            verdict=(
                f"{self.final.outcome} after {self.final.steps} steps "
                f"({self.final.entries} CS entries, "
                f"{self.final.me1_after_horizon} post-horizon ME1 violations)"
            ),
            notes=tuple(notes),
        )


def shrink_trial(
    spec: CampaignSpec,
    trial_id: int,
    result: TrialResult | None = None,
    *,
    is_failing: Callable[[TrialResult], bool] | None = None,
    max_probes: int | None = 2000,
) -> ShrinkResult:
    """Shrink one failing trial to a 1-minimal fault/schedule decision list.

    ``result`` may carry the recorded decisions (from
    ``run_trial(..., keep_decisions=...)``); otherwise the trial is re-run
    to record them.  ``is_failing`` defaults to "did not converge".
    """
    failing = is_failing or (lambda r: not r.converged)
    if result is None or result.decisions is None:
        result = run_trial(spec, trial_id, keep_decisions="always")
    if not failing(result):
        raise ValueError(
            f"trial {trial_id} passes ({result.outcome}); nothing to shrink"
        )
    decisions = result.decisions
    assert decisions is not None
    probes = 0

    def fails(subset: list) -> bool:
        nonlocal probes
        probes += 1
        return failing(replay_trial(spec, trial_id, subset))

    if not fails(list(decisions)):
        raise ValueError(
            "scripted replay of the full decision list does not reproduce "
            "the failure; the trial is not replay-faithful"
        )
    minimal, complete = ddmin(decisions, fails, max_probes=max_probes)
    final = replay_trial(spec, trial_id, minimal)
    return ShrinkResult(
        trial_id=trial_id,
        original=tuple(decisions),
        minimal=tuple(minimal),
        probes=probes,
        complete=complete,
        final=final,
    )


def is_locally_minimal(
    spec: CampaignSpec,
    trial_id: int,
    decisions: Sequence[Decision],
    is_failing: Callable[[TrialResult], bool] | None = None,
) -> bool:
    """Does removing any single decision make the trial pass?  (The
    acceptance check for shrunk counterexamples; O(len) replays.)"""
    failing = is_failing or (lambda r: not r.converged)
    if not failing(replay_trial(spec, trial_id, list(decisions))):
        return False
    for i in range(len(decisions)):
        remainder = [d for j, d in enumerate(decisions) if j != i]
        if failing(replay_trial(spec, trial_id, remainder)):
            return False
    return True
