"""The kill-safe work-stealing scheduler for campaign trial matrices.

This is the execution half of the declarative layer in
:mod:`repro.campaign.spec`: a :class:`~repro.campaign.spec.TrialMatrix`
in, a complete, durably journalled result set out -- surviving the
death of any worker *or the coordinator itself* at any instant.

Architecture (one coordinator process, ``workers`` forked workers):

* **work stealing** -- tasks are never pre-partitioned; every idle
  worker is handed the next due task (overdue retries first, then fresh
  trials), so stragglers and heterogeneous trial costs balance
  themselves and a dying fleet just runs slower instead of stranding a
  partition.
* **leases with heartbeat liveness** -- each dispatch writes a ``LEASE``
  record and starts a liveness clock; workers heartbeat from a side
  thread every ``heartbeat_every`` seconds even while a trial computes.
  A worker that stops beating for ``lease_ttl`` is presumed dead,
  SIGKILLed, and its trial reclaimed -- the same path as an observed
  death (closed result pipe), so silent hangs cannot wedge a campaign.
* **environmental vs deterministic failure** -- a worker death is
  environmental: the trial is requeued with capped exponential backoff
  up to ``max_trial_retries`` times and only then recorded as
  ``"crashed"``, carrying its full per-attempt log.  A trial that
  overruns ``trial_timeout`` is *deterministic* (trials are pure
  functions of their seed): it is recorded as ``"timeout"`` once, never
  retried.
* **graceful degradation** -- a dead worker slot is respawned up to
  ``respawn_limit`` times, after which the fan-out shrinks; if every
  slot is gone the coordinator finishes the remaining trials serially
  in-process.  Throughout, a partial stamped artifact is streamed to
  the store directory every ``partial_every`` results.
* **durability and resume** -- all journalling happens in the
  coordinator (single writer).  A ``RESULT`` is flushed to the kernel
  before it is surfaced, so ``kill -9`` of the coordinator loses at
  most in-flight trials -- and those are deterministic.  ``resume=True``
  verifies the stamped ``meta.json`` against the matrix digest, replays
  the journal (results kept, orphaned leases requeued, retry budgets
  restored), and continues; because every hashed artifact field is a
  pure function of ``(spec, trial_id)``, the resumed run's final
  artifact carries the bit-identical content hash of an uninterrupted
  one.  :mod:`repro.campaign.chaos` turns that claim into a self-test.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait

from repro.campaign.journal import (
    CampaignJournal,
    journal_exists,
    replay_journal,
    verify_campaign_meta,
    write_campaign_meta,
    write_partial_artifact,
)
from repro.campaign.spec import TrialMatrix, TrialTask
from repro.campaign.stats import matrix_artifact
from repro.campaign.trial import CampaignSpec, TrialResult, run_trial

TrialFn = Callable[[CampaignSpec, int], TrialResult]
#: Test/chaos hook run in the *worker* before each attempt; may
#: ``os._exit`` (environmental death) or sleep (hang) -- that is its
#: entire purpose.  Must be deterministic in ``(task_id, attempt)`` so
#: chaos schedules replay.
ChaosFn = Callable[[int, int], None]


def default_trial_fn(spec: CampaignSpec, trial_id: int) -> TrialResult:
    return run_trial(spec, trial_id)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class SchedulerConfig:
    """The scheduler's full robustness policy surface."""

    workers: int = 1
    #: Wall-clock budget per attempt; overrun = deterministic timeout.
    trial_timeout: float | None = None
    #: Environmental deaths tolerated per trial before ``"crashed"``.
    max_trial_retries: int = 2
    #: First requeue backoff; doubles per death, capped below.
    retry_backoff: float = 0.2
    backoff_cap: float = 5.0
    #: Worker liveness cadence and the lease expiry that polices it.
    heartbeat_every: float = 0.25
    lease_ttl: float = 3.0
    #: Respawns per worker slot before the fan-out shrinks for good.
    respawn_limit: int = 3
    #: Stream a partial stamped artifact every N fresh results (0=off;
    #: needs a store directory).
    partial_every: int = 0
    poll_interval: float = 0.05


@dataclass
class SchedStats:
    """Execution incidents (volatile: excluded from artifact hashes)."""

    requeues: int = 0
    lease_reclaims: int = 0
    worker_deaths: int = 0
    respawns: int = 0
    timeouts: int = 0
    crashes: int = 0
    resumed_results: int = 0
    serial_fallback_tasks: int = 0
    partials_written: int = 0

    def as_dict(self) -> dict:
        return {
            "requeues": self.requeues,
            "lease_reclaims": self.lease_reclaims,
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "resumed_results": self.resumed_results,
            "serial_fallback_tasks": self.serial_fallback_tasks,
            "partials_written": self.partials_written,
        }


@dataclass
class MatrixRun:
    """A completed matrix execution: every task's result, in task order."""

    matrix: TrialMatrix
    results: list[TrialResult]
    stats: SchedStats
    wall_seconds: float

    def artifact(self) -> dict:
        return matrix_artifact(
            self.matrix,
            self.results,
            self.wall_seconds,
            execution=self.stats.as_dict(),
        )


def _failed_result(
    trial_id: int, outcome: str, wall: float, detail: str
) -> TrialResult:
    return TrialResult(
        trial_id=trial_id,
        outcome=outcome,
        steps=0,
        latency=None,
        wall_seconds=wall,
        wall_latency=None,
        entries=0,
        faults=0,
        me1_after_horizon=0,
        digest="",
        detail=detail,
    )


# ---------------------------------------------------------------------------
# The worker side
# ---------------------------------------------------------------------------


def _worker_main(
    slot_id: int,
    cmd,
    res,
    inherited,
    configs: dict[str, CampaignSpec],
    trial_fn: TrialFn,
    chaos_fn: ChaosFn | None,
    heartbeat_every: float,
) -> None:
    """One persistent worker: recv task, run trial, send result, repeat.

    A daemon thread heartbeats on the result pipe even while the main
    thread computes, so the coordinator can tell "slow" from "gone".
    Any pipe failure means the coordinator died or moved on -- exit
    immediately rather than computing for nobody.
    """
    # The fork copied every pipe end the coordinator had open -- the
    # parent-side ends of this worker's own pipes and every sibling
    # slot's ends.  Close them now: a retained write end of our own cmd
    # pipe would keep recv() below from ever seeing EOF after the
    # coordinator dies, stranding the worker forever.
    for conn in inherited:
        try:
            conn.close()
        except OSError:
            pass
    send_lock = threading.Lock()
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_every):
            try:
                with send_lock:
                    res.send(("hb", slot_id))
            except (BrokenPipeError, OSError):
                os._exit(0)

    threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            try:
                message = cmd.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            task_id, config, trial_id, attempt = message
            if chaos_fn is not None:
                chaos_fn(task_id, attempt)
            result = trial_fn(configs[config], trial_id)
            try:
                with send_lock:
                    res.send(("done", task_id, attempt, result))
            except (BrokenPipeError, OSError):
                break  # coordinator is gone; nobody wants the result
    finally:
        stop.set()
        res.close()


class _Lease:
    """One in-flight dispatch: who runs what, since when, until when."""

    __slots__ = ("task_id", "attempt", "started", "deadline")

    def __init__(self, task_id: int, attempt: int, deadline: float | None):
        self.task_id = task_id
        self.attempt = attempt
        self.started = time.monotonic()
        self.deadline = deadline


class _Slot:
    """One worker slot: the live process, its pipes, its lease."""

    __slots__ = ("slot_id", "proc", "cmd", "res", "spawns", "last_beat", "lease")

    def __init__(self, slot_id: int):
        self.slot_id = slot_id
        self.proc = None
        self.cmd = None
        self.res = None
        self.spawns = 0
        self.last_beat = 0.0
        self.lease: _Lease | None = None

    def close(self, kill: bool = False) -> None:
        if self.proc is not None:
            if kill and self.proc.is_alive():
                self.proc.kill()
            if self.cmd is not None:
                self.cmd.close()
            if self.res is not None:
                self.res.close()
            self.proc.join()
            self.proc = None


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


class _Coordinator:
    def __init__(
        self,
        matrix: TrialMatrix,
        config: SchedulerConfig,
        *,
        store_dir: str | None,
        resume: bool,
        trial_fn: TrialFn,
        chaos_fn: ChaosFn | None,
        on_result: Callable[[TrialResult], None] | None,
    ):
        self.matrix = matrix
        self.config = config
        self.store_dir = store_dir
        self.trial_fn = trial_fn
        self.chaos_fn = chaos_fn
        self.on_result = on_result
        self.stats = SchedStats()
        self.results: dict[int, TrialResult] = {}
        self.attempts: dict[int, int] = {}
        self.history: dict[int, list[str]] = {}
        self.retry: list[tuple[float, int]] = []  # heap (ready_at, task_id)
        self.fresh_done = 0
        self.started = time.perf_counter()
        self.journal: CampaignJournal | None = None

        if store_dir is not None:
            if resume:
                verify_campaign_meta(store_dir, matrix)
                state = replay_journal(store_dir)
                self.results.update(state.results)
                self.stats.resumed_results = len(state.results)
                for task_id, log in state.attempt_log.items():
                    self.attempts[task_id] = len(log)
                    self.history[task_id] = [
                        f"attempt {entry['attempt']}: {entry['kind']} "
                        f"(exitcode {entry['exitcode']}), "
                        f"backoff {entry['backoff']:g}s"
                        for entry in log
                    ]
            else:
                if journal_exists(store_dir):
                    raise ValueError(
                        f"{store_dir}: already holds a campaign journal; "
                        "pass resume=True to continue it or use a fresh "
                        "store dir"
                    )
                write_campaign_meta(store_dir, matrix)
            self.journal = CampaignJournal(store_dir)

        self.pending = deque(
            task.task_id
            for task in matrix.tasks
            if task.task_id not in self.results
        )

    # -- shared plumbing ---------------------------------------------------

    def task(self, task_id: int) -> TrialTask:
        return self.matrix.tasks[task_id]

    def finish(self, task_id: int, attempt: int, result: TrialResult) -> None:
        """Record a task's final result: journal first, then surface."""
        if self.journal is not None:
            self.journal.result(task_id, attempt, result)
        self.results[task_id] = result
        self.fresh_done += 1
        if self.on_result is not None:
            self.on_result(result)
        if (
            self.store_dir is not None
            and self.config.partial_every
            and self.fresh_done % self.config.partial_every == 0
        ):
            self.stream_partial()

    def stream_partial(self) -> None:
        rows = [
            self.results.get(i) for i in range(len(self.matrix.tasks))
        ]
        payload = matrix_artifact(
            self.matrix,
            rows,
            time.perf_counter() - self.started,
            execution=self.stats.as_dict(),
            partial=True,
        )
        write_partial_artifact(self.store_dir, payload)
        self.stats.partials_written += 1

    def requeue_death(
        self, task_id: int, attempt: int, kind: str, exitcode: object
    ) -> None:
        """An environmental death: backoff-requeue, or crash out with
        the full attempt log (the log also lands in the journal)."""
        deaths = self.attempts.get(task_id, 0) + 1
        self.attempts[task_id] = deaths
        log = self.history.setdefault(task_id, [])
        if deaths <= self.config.max_trial_retries:
            backoff = min(
                self.config.backoff_cap,
                self.config.retry_backoff * (2 ** (deaths - 1)),
            )
            self.stats.requeues += 1
            if self.journal is not None:
                self.journal.requeue(
                    task_id, attempt, kind,
                    exitcode if isinstance(exitcode, int) else None,
                    backoff,
                )
            log.append(
                f"attempt {attempt}: {kind} (exitcode {exitcode}), "
                f"backoff {backoff:g}s"
            )
            heapq.heappush(
                self.retry, (time.monotonic() + backoff, task_id)
            )
            return
        log.append(f"attempt {attempt}: {kind} (exitcode {exitcode})")
        self.stats.crashes += 1
        detail = (
            f"worker {kind} (exitcode {exitcode}) after {deaths} attempts; "
            + "; ".join(log)
        )
        result = _failed_result(
            self.task(task_id).trial_id, "crashed", 0.0, detail
        )
        self.finish(task_id, attempt, result)

    def next_task(self, now: float) -> int | None:
        if self.retry and self.retry[0][0] <= now:
            return heapq.heappop(self.retry)[1]
        if self.pending:
            return self.pending.popleft()
        return None

    def outstanding(self) -> list[int]:
        """Every unfinished task id, in task order (for serial fallback)."""
        queued = set(self.pending) | {tid for _at, tid in self.retry}
        return sorted(queued)

    # -- serial execution (workers<=1, degraded mode, tiny remainders) ----

    def run_serial(self, task_ids: list[int], degraded: bool = False) -> None:
        for task_id in task_ids:
            task = self.task(task_id)
            attempt = self.attempts.get(task_id, 0)
            if self.journal is not None:
                self.journal.lease(task_id, attempt, worker=-1)
            result = self.trial_fn(task.spec, task.trial_id)
            if degraded:
                self.stats.serial_fallback_tasks += 1
            self.finish(task_id, attempt, result)

    # -- parallel execution ------------------------------------------------

    def spawn(self, slot: _Slot, ctx, slots: dict[int, _Slot]) -> None:
        cmd_recv, cmd_send = ctx.Pipe(duplex=False)
        res_recv, res_send = ctx.Pipe(duplex=False)
        inherited = [cmd_send, res_recv]
        for other in slots.values():
            if other is slot:
                continue
            inherited.extend(
                c for c in (other.cmd, other.res) if c is not None
            )
        proc = ctx.Process(
            target=_worker_main,
            args=(
                slot.slot_id,
                cmd_recv,
                res_send,
                inherited,
                self.matrix.config_specs(),
                self.trial_fn,
                self.chaos_fn,
                self.config.heartbeat_every,
            ),
        )
        proc.start()
        cmd_recv.close()
        res_send.close()
        slot.proc = proc
        slot.cmd = cmd_send
        slot.res = res_recv
        slot.spawns += 1
        slot.last_beat = time.monotonic()
        slot.lease = None

    def slot_down(
        self, slot: _Slot, slots: dict[int, _Slot], ctx,
        kind: str, kill: bool = False,
    ) -> None:
        """A worker is gone (observed death, expired lease, or timeout
        kill): reclaim its lease, then respawn or shrink the fan-out."""
        exitcode = None
        if slot.proc is not None:
            if kill and slot.proc.is_alive():
                slot.proc.kill()
            slot.proc.join()
            exitcode = slot.proc.exitcode
        lease = slot.lease
        slot.lease = None
        slot.close()
        self.stats.worker_deaths += 1
        if lease is not None and lease.task_id not in self.results:
            self.requeue_death(lease.task_id, lease.attempt, kind, exitcode)
        if slot.spawns <= self.config.respawn_limit:
            self.stats.respawns += 1
            self.spawn(slot, ctx, slots)
        else:
            del slots[slot.slot_id]

    def dispatch(self, slot: _Slot, task_id: int) -> bool:
        """Lease a task to an idle worker; False if the send found it
        dead (the caller handles the death path)."""
        attempt = self.attempts.get(task_id, 0)
        if self.journal is not None:
            self.journal.lease(task_id, attempt, slot.slot_id)
        deadline = (
            time.monotonic() + self.config.trial_timeout
            if self.config.trial_timeout is not None
            else None
        )
        slot.lease = _Lease(task_id, attempt, deadline)
        task = self.task(task_id)
        try:
            slot.cmd.send((task_id, task.config, task.trial_id, attempt))
        except (BrokenPipeError, OSError):
            return False
        return True

    def run_parallel(self) -> None:
        ctx = multiprocessing.get_context("fork")
        total = len(self.matrix.tasks)
        slots: dict[int, _Slot] = {}
        for slot_id in range(self.config.workers):
            slot = _Slot(slot_id)
            self.spawn(slot, ctx, slots)
            slots[slot_id] = slot
        try:
            while len(self.results) < total:
                now = time.monotonic()
                # 1. police deadlines and liveness
                for slot in list(slots.values()):
                    lease = slot.lease
                    if lease is None:
                        continue
                    if lease.deadline is not None and now > lease.deadline:
                        # Deterministic overrun: record once, no retry.
                        self.stats.timeouts += 1
                        task = self.task(lease.task_id)
                        self.finish(
                            lease.task_id,
                            lease.attempt,
                            _failed_result(
                                task.trial_id,
                                "timeout",
                                self.config.trial_timeout or 0.0,
                                "exceeded trial_timeout="
                                f"{self.config.trial_timeout}s",
                            ),
                        )
                        slot.lease = None
                        self.slot_down(slots[slot.slot_id], slots, ctx,
                                       "timed out", kill=True)
                    elif now - slot.last_beat > self.config.lease_ttl:
                        self.stats.lease_reclaims += 1
                        self.slot_down(slot, slots, ctx,
                                       "lease expired", kill=True)
                # 2. steal work onto every idle slot
                for slot in list(slots.values()):
                    if slot.lease is not None:
                        continue
                    task_id = self.next_task(now)
                    if task_id is None:
                        break
                    if not self.dispatch(slot, task_id):
                        self.slot_down(slot, slots, ctx, "died at dispatch")
                # 3. fleet gone entirely: degrade to in-process serial
                if not slots:
                    self.run_serial(self.outstanding(), degraded=True)
                    return
                # 4. collect heartbeats, results, and observed deaths
                conns = {id(s.res): s for s in slots.values()}
                ready = connection_wait(
                    [s.res for s in slots.values()],
                    self.config.poll_interval,
                )
                now = time.monotonic()
                for conn in ready:
                    slot = conns[id(conn)]
                    if slot is not slots.get(slot.slot_id):
                        continue  # already recycled this round
                    try:
                        while slot.proc is not None and slot.res.poll():
                            message = slot.res.recv()
                            if message[0] == "hb":
                                slot.last_beat = now
                            elif message[0] == "done":
                                _kind, task_id, attempt, result = message
                                slot.last_beat = now
                                slot.lease = None
                                if task_id not in self.results:
                                    self.finish(task_id, attempt, result)
                    except (EOFError, OSError):
                        self.slot_down(slot, slots, ctx, "died")
        finally:
            for slot in list(slots.values()):
                try:
                    if slot.cmd is not None:
                        slot.cmd.send(None)
                except (BrokenPipeError, OSError):
                    pass
                slot.close(kill=True)

    # -- entry point -------------------------------------------------------

    def run(self) -> MatrixRun:
        total = len(self.matrix.tasks)
        remaining = total - len(self.results)
        try:
            if (
                self.config.workers <= 1
                or remaining <= 1
                or not fork_available()
            ):
                self.run_serial(
                    [
                        task.task_id
                        for task in self.matrix.tasks
                        if task.task_id not in self.results
                    ]
                )
            else:
                self.run_parallel()
        finally:
            if self.journal is not None:
                self.journal.close()
        ordered = [self.results[i] for i in range(total)]
        return MatrixRun(
            matrix=self.matrix,
            results=ordered,
            stats=self.stats,
            wall_seconds=time.perf_counter() - self.started,
        )


def run_matrix(
    matrix: TrialMatrix,
    config: SchedulerConfig | None = None,
    *,
    store_dir: str | None = None,
    resume: bool = False,
    trial_fn: TrialFn | None = None,
    chaos_fn: ChaosFn | None = None,
    on_result: Callable[[TrialResult], None] | None = None,
) -> MatrixRun:
    """Execute a trial matrix to completion; results in task order.

    ``store_dir`` journals every lease/result/requeue durably and
    enables ``resume=True`` after *any* crash -- including the
    coordinator's.  ``on_result`` streams freshly computed results in
    completion order (resumed results are already surfaced by the run
    that computed them).  ``trial_fn`` and ``chaos_fn`` exist for tests
    and the chaos self-test; campaigns run
    :func:`repro.campaign.trial.run_trial`.
    """
    if config is None:
        config = SchedulerConfig()
    coordinator = _Coordinator(
        matrix,
        config,
        store_dir=store_dir,
        resume=resume,
        trial_fn=trial_fn or default_trial_fn,
        chaos_fn=chaos_fn,
        on_result=on_result,
    )
    return coordinator.run()
