"""ASCII table rendering for experiment rows (what the benchmarks print)."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.analysis.metrics import Aggregate

Row = dict[str, Any]


def _cell(value: Any) -> str:
    if isinstance(value, Aggregate):
        if value.n == 0:
            return "-"
        return format(value)
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def render_table(rows: Sequence[Row], title: str = "") -> str:
    """Render rows (uniform dicts) as a boxed ASCII table."""
    if not rows:
        return f"{title}\n(no rows)"
    headers = list(rows[0])
    cells = [[_cell(r.get(h, "")) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells))
        for i, h in enumerate(headers)
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"
    )
    out.append(sep)
    for row in cells:
        out.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    out.append(sep)
    return "\n".join(out)


def print_table(rows: Sequence[Row], title: str = "") -> None:
    """Render and print a table with a leading blank line."""
    print()
    print(render_table(rows, title))
