"""Experiment harness, metrics, and table rendering."""

from repro.analysis.experiments import (
    CampaignSettings,
    experiment_campaign,
    experiment_churn,
    experiment_deadlock,
    experiment_everywhere,
    experiment_fifo_ablation,
    experiment_interference,
    experiment_refinement,
    experiment_reuse,
    experiment_scaling,
    experiment_stabilization,
    experiment_synthesis,
    experiment_theorem5,
    experiment_timeout,
    experiment_verification_cost,
    run_campaign,
)
from repro.analysis.metrics import (
    Aggregate,
    RunMetrics,
    cs_entries,
    total_sends,
    wrapper_sends,
)
from repro.analysis.tables import print_table, render_table

__all__ = [
    "Aggregate",
    "CampaignSettings",
    "RunMetrics",
    "cs_entries",
    "experiment_campaign",
    "experiment_churn",
    "experiment_deadlock",
    "experiment_everywhere",
    "experiment_fifo_ablation",
    "experiment_interference",
    "experiment_refinement",
    "experiment_reuse",
    "experiment_scaling",
    "experiment_stabilization",
    "experiment_synthesis",
    "experiment_theorem5",
    "experiment_timeout",
    "experiment_verification_cost",
    "print_table",
    "render_table",
    "run_campaign",
    "total_sends",
    "wrapper_sends",
]
