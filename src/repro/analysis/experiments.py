"""The experiment harness: one function per experiment of EXPERIMENTS.md.

Each ``experiment_*`` function runs seeded simulations, evaluates the
monitors, and returns a list of row dicts; :mod:`repro.analysis.tables`
renders them.  The benchmarks in ``benchmarks/`` call these functions (with
reduced repetition counts) and print the tables; the full-size parameters
are the defaults here.

The paper has no quantitative evaluation, so every experiment's "paper
value" is the qualitative claim the text proves; the module docstrings of
each function restate that claim, and EXPERIMENTS.md records claim vs.
measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.analysis.metrics import (
    Aggregate,
    RunMetrics,
    cs_entries,
    total_sends,
    wrapper_sends,
)
from repro.faults.injector import FaultInjector
from repro.runtime.trace import Trace
from repro.tme.client import ClientConfig
from repro.tme.scenarios import (
    build_simulation,
    deadlock_overrides,
    standard_fault_campaign,
)
from repro.tme.spec import check_tme_spec
from repro.tme.wrapper import WrapperConfig
from repro.verification.refinement import everywhere_implements_lspec
from repro.verification.stabilization import check_stabilization
from repro.tme.lspec import check_lspec

Row = dict[str, Any]

DEFAULT_CLIENT = ClientConfig(think_delay=2, eat_delay=1)


@dataclass(frozen=True)
class CampaignSettings:
    """Shared shape of the fault-then-converge runs (E2, E5)."""

    steps: int = 3000
    fault_start: int = 100
    fault_stop: int = 400
    grace: int = 400
    loss: float = 0.15
    duplication: float = 0.1
    corruption: float = 0.1
    state_corruption: float = 0.05
    deliver_bias: float = 2.0


def run_campaign(
    algorithm: str,
    n: int,
    wrapper: WrapperConfig | None,
    seed: int,
    settings: CampaignSettings = CampaignSettings(),
    fault_hook: FaultInjector | None = None,
    check_fcfs: bool = True,
) -> tuple[Trace, RunMetrics]:
    """One fault-burst-then-converge run, measured."""
    hook = fault_hook
    if hook is None:
        hook = standard_fault_campaign(
            seed=seed * 31 + 7,
            start=settings.fault_start,
            stop=settings.fault_stop,
            loss=settings.loss,
            duplication=settings.duplication,
            corruption=settings.corruption,
            state_corruption=settings.state_corruption,
        )
    sim = build_simulation(
        algorithm,
        n=n,
        seed=seed,
        client=DEFAULT_CLIENT,
        wrapper=wrapper,
        fault_hook=hook,
        deliver_bias=settings.deliver_bias,
    )
    trace = sim.run(settings.steps)
    conv = check_stabilization(
        trace, liveness_grace=settings.grace, check_fcfs=check_fcfs
    )
    rep = check_tme_spec(trace)
    metrics = RunMetrics(
        steps=settings.steps,
        cs_entries=cs_entries(trace),
        total_messages=total_sends(trace),
        wrapper_messages=wrapper_sends(trace),
        converged=conv.converged,
        convergence_latency=conv.latency,
        me1_violations=len(rep.me1),
    )
    return trace, metrics


# ---------------------------------------------------------------------------
# E2 -- Theorem 8 / Corollary 11: W stabilizes RA and Lamport
# ---------------------------------------------------------------------------


def experiment_stabilization(
    algorithms: tuple[str, ...] = ("ra", "lamport"),
    n: int = 3,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    theta: int = 4,
    settings: CampaignSettings = CampaignSettings(),
) -> list[Row]:
    """Paper claim: with W, any everywhere-implementation of Lspec
    stabilizes after finitely many faults; without W it may not."""
    rows: list[Row] = []
    for algorithm in algorithms:
        for wrapped in (False, True):
            wrapper = WrapperConfig(theta=theta) if wrapped else None
            results = [
                run_campaign(algorithm, n, wrapper, seed, settings)[1]
                for seed in seeds
            ]
            latencies = [
                m.convergence_latency
                for m in results
                if m.convergence_latency is not None
            ]
            rows.append(
                {
                    "algorithm": algorithm,
                    "wrapper": f"W'(theta={theta})" if wrapped else "none",
                    "runs": len(results),
                    "stabilized": sum(1 for m in results if m.converged),
                    "latency": Aggregate.of(latencies),
                    "entries": Aggregate.of([m.cs_entries for m in results]),
                    "wrapper_msgs": Aggregate.of(
                        [m.wrapper_messages for m in results]
                    ),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E3 -- the Section-4 deadlock scenario
# ---------------------------------------------------------------------------


def experiment_deadlock(
    algorithms: tuple[str, ...] = ("ra", "lamport"),
    seeds: tuple[int, ...] = (1, 2, 3),
    steps: int = 1500,
    theta: int = 2,
) -> list[Row]:
    """Paper claim (Section 4): mutually stale REQ information deadlocks
    the bare protocol; W's retransmission breaks the deadlock."""
    rows: list[Row] = []
    for algorithm in algorithms:
        for wrapped in (False, True):
            wrapper = WrapperConfig(theta=theta) if wrapped else None
            recovered = 0
            first_entry: list[int] = []
            for seed in seeds:
                overrides = deadlock_overrides(algorithm, ("p0", "p1"))
                sim = build_simulation(
                    algorithm,
                    n=2,
                    seed=seed,
                    client=DEFAULT_CLIENT,
                    wrapper=wrapper,
                    overrides=overrides,
                )
                trace = sim.run(steps)
                entries = cs_entries(trace)
                if entries > 0:
                    recovered += 1
                    for i in range(1, len(trace.states)):
                        prev, cur = trace.states[i - 1], trace.states[i]
                        if any(
                            prev.var(p, "phase") == "h"
                            and cur.var(p, "phase") == "e"
                            for p in cur.pids()
                        ):
                            first_entry.append(i)
                            break
            rows.append(
                {
                    "algorithm": algorithm,
                    "wrapper": f"W'(theta={theta})" if wrapped else "none",
                    "runs": len(seeds),
                    "recovered": recovered,
                    "first_entry_step": Aggregate.of(first_entry),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E4 -- W' timeout tuning
# ---------------------------------------------------------------------------


def experiment_timeout(
    thetas: tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32),
    algorithm: str = "ra",
    seeds: tuple[int, ...] = (1, 2, 3),
    settings: CampaignSettings = CampaignSettings(),
) -> list[Row]:
    """Paper claim: the timeout is "just an optimization" -- any theta
    stabilizes; larger theta trades recovery latency for fewer
    retransmissions in the steady state."""
    rows: list[Row] = []
    for theta in thetas:
        wrapper = WrapperConfig(theta=theta)
        latencies: list[int] = []
        stabilized = 0
        steady_msgs: list[int] = []
        for seed in seeds:
            trace, metrics = run_campaign(
                algorithm, 3, wrapper, seed, settings
            )
            if metrics.converged:
                stabilized += 1
                if metrics.convergence_latency is not None:
                    latencies.append(metrics.convergence_latency)
            # steady state: wrapper sends in the pre-fault window
            steady_msgs.append(
                wrapper_sends(trace, 0, settings.fault_start)
            )
        rows.append(
            {
                "theta": theta,
                "runs": len(seeds),
                "stabilized": stabilized,
                "latency": Aggregate.of(latencies),
                "steady_wrapper_msgs": Aggregate.of(steady_msgs),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E5 -- scalability in n
# ---------------------------------------------------------------------------


def experiment_scaling(
    ns: tuple[int, ...] = (2, 3, 4, 5, 6, 8),
    algorithm: str = "ra",
    seeds: tuple[int, ...] = (1, 2, 3),
    theta: int = 4,
    settings: CampaignSettings = CampaignSettings(),
) -> list[Row]:
    """Convergence latency and wrapper traffic as the system grows."""
    rows: list[Row] = []
    for n in ns:
        wrapper = WrapperConfig(theta=theta)
        latencies: list[int] = []
        stabilized = 0
        wrapper_msgs: list[int] = []
        for seed in seeds:
            _trace, metrics = run_campaign(
                algorithm, n, wrapper, seed, settings
            )
            if metrics.converged:
                stabilized += 1
                if metrics.convergence_latency is not None:
                    latencies.append(metrics.convergence_latency)
            wrapper_msgs.append(metrics.wrapper_messages)
        rows.append(
            {
                "n": n,
                "runs": len(seeds),
                "stabilized": stabilized,
                "latency": Aggregate.of(latencies),
                "wrapper_msgs": Aggregate.of(wrapper_msgs),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E6 -- reuse matrix (Corollary 11 + the negative control)
# ---------------------------------------------------------------------------


def experiment_reuse(
    seeds: tuple[int, ...] = (1, 2, 3),
    theta: int = 4,
    settings: CampaignSettings = CampaignSettings(),
) -> list[Row]:
    """Paper claim: the *same* wrapper W stabilizes every everywhere-
    implementation of Lspec (RA, Lamport) -- and nothing is promised for a
    non-implementation (token ring)."""
    rows: list[Row] = []
    for algorithm in ("ra", "ra-count", "lamport", "token"):
        for wrapped in (False, True):
            wrapper = WrapperConfig(theta=theta) if wrapped else None
            stabilized = 0
            me1 = 0
            for seed in seeds:
                _trace, metrics = run_campaign(
                    algorithm,
                    3,
                    wrapper,
                    seed,
                    settings,
                    check_fcfs=algorithm != "token",
                )
                if metrics.converged:
                    stabilized += 1
                me1 += metrics.me1_violations
            rows.append(
                {
                    "algorithm": algorithm,
                    "implements_lspec": algorithm != "token",
                    "wrapper": f"W'(theta={theta})" if wrapped else "none",
                    "stabilized": f"{stabilized}/{len(seeds)}",
                    "me1_violations": me1,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E7 -- graybox vs whitebox verification surface
# ---------------------------------------------------------------------------


def experiment_verification_cost(
    ns: tuple[int, ...] = (2, 3, 4, 5),
    max_clock: int = 2,
    explore_depth: int = 6,
    explore_max_states: int = 20_000,
) -> list[Row]:
    """Paper claim (Section 1): whitebox stabilization needs an invariant
    over the *global* state space (the product of all process states --
    "the complexity of calculating the invariant of large implementations
    may be exorbitant"), while Theorem 4 reduces the graybox obligation to
    per-process checks (a *sum*).

    Measured: the per-process local state count L(n) for RA_ME over a
    bounded clock domain (enumerated by the same machinery the exhaustive
    E8b check runs on), the graybox total n*L(n), and the whitebox global
    space L(n)^n (a lower bound -- it ignores channel contents entirely).

    The closed-form columns are complemented by *measured* bounded
    explorations on the unified engine (:mod:`repro.explore`): the local
    space of one process and the global product space, both to
    ``explore_depth`` steps, with the engine's throughput
    (:class:`~repro.explore.ExplorationStats`) alongside.  The global
    exploration is capped at ``explore_max_states`` states -- on this
    surface a cap is the point, not a limitation.

    The symmetric columns rerun the global exploration in the quotient
    under process-permutation symmetry (``symmetry="full"``, sound for
    the pid-template RA program -- see :mod:`repro.explore.canon`):
    ``global_sym`` counts orbit representatives, ``sym_reduction`` the
    measured exact/quotient ratio (up to ``n!``), and ``bytes_per_state``
    the interned store's packed footprint per representative.
    """
    from repro.tme import ClientConfig, tme_programs
    from repro.verification.explorer import explore_global, explore_local
    from repro.verification.refinement import count_local_states

    client = ClientConfig(think_delay=1, eat_delay=1)
    rows: list[Row] = []
    for n in ns:
        local = count_local_states("ra", n=n, max_clock=max_clock)
        graybox_total = n * local
        whitebox_space = local**n
        programs = tme_programs("ra", n, client)
        pids = tuple(sorted(programs))
        local_run = explore_local(
            programs[pids[0]],
            pids[0],
            pids,
            kinds=("request", "reply"),
            max_depth=explore_depth,
            max_clock=max_clock,
        )
        global_run = explore_global(
            programs,
            max_depth=explore_depth,
            max_states=explore_max_states,
        )
        sym_run = explore_global(
            programs,
            max_depth=explore_depth,
            max_states=explore_max_states,
            symmetry="full",
        )
        sym_reduction = (
            global_run.states / sym_run.states if sym_run.states else 0.0
        )
        rows.append(
            {
                "n": n,
                "local_states_L": local,
                "graybox_total_nL": graybox_total,
                "whitebox_global_L^n": f"{whitebox_space:.3e}",
                "ratio": f"{whitebox_space / graybox_total:.2e}",
                "local_explored": local_run.states,
                "global_explored": (
                    f"{global_run.states}"
                    + ("+" if global_run.frontier_truncated else "")
                ),
                "global_sym": (
                    f"{sym_run.states}"
                    + ("+" if sym_run.frontier_truncated else "")
                ),
                "sym_reduction": f"{sym_reduction:.2f}x",
                "bytes_per_state": (
                    f"{sym_run.stats.bytes_per_state:.0f}"
                ),
                "global_states_per_sec": (
                    f"{global_run.stats.states_per_second:.0f}"
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E14 -- the Section-4 refinement ablation: basic W vs refined W
# ---------------------------------------------------------------------------


def experiment_refinement(
    algorithm: str = "ra",
    seeds: tuple[int, ...] = (1, 2, 3),
    theta: int = 4,
    settings: CampaignSettings = CampaignSettings(),
) -> list[Row]:
    """Section 4 refines W_j (retransmit to everyone while hungry) into the
    suspect-set version (only ``k in X = {k : j.REQ_k lt REQ_j}``), arguing
    the rest is redundant: peers outside X are either fine or fixed by
    their own wrappers.  Measured: both variants stabilize; the refined
    wrapper sends strictly fewer retransmissions for the same outcome.
    """
    rows: list[Row] = []
    for refined in (False, True):
        wrapper = WrapperConfig(theta=theta, refined=refined)
        stabilized = 0
        wrapper_msgs: list[int] = []
        entries: list[int] = []
        for seed in seeds:
            _trace, metrics = run_campaign(
                algorithm, 3, wrapper, seed, settings
            )
            stabilized += metrics.converged
            wrapper_msgs.append(metrics.wrapper_messages)
            entries.append(metrics.cs_entries)
        rows.append(
            {
                "wrapper": wrapper.variant_name,
                "runs": len(seeds),
                "stabilized": stabilized,
                "wrapper_msgs": Aggregate.of(wrapper_msgs),
                "entries": Aggregate.of(entries),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E12 -- automatic wrapper synthesis (Section 6 future work)
# ---------------------------------------------------------------------------


def experiment_synthesis(
    sizes: tuple[int, ...] = (4, 6, 8, 12),
    specs_per_size: int = 40,
    seed: int = 17,
) -> list[Row]:
    """Paper direction: "automatic synthesis of graybox dependability".

    For random finite everywhere-specifications, synthesize the recovery
    wrapper, verify fair stabilization of ``A box W``, and verify the
    Theorem-1 transfer to a random everywhere-implementation.  Reports the
    wrapper footprint (recovery edges vs. state count) and how often plain
    (fairness-free) stabilization already holds.
    """
    from repro.core import (
        box,
        is_stabilizing_to_fair,
        random_subsystem,
        random_system,
        synthesize_stabilizing_wrapper,
    )

    rng = random.Random(seed)
    rows: list[Row] = []
    for size in sizes:
        verified = 0
        transfer_verified = 0
        unfair_ok = 0
        recovery_counts: list[int] = []
        for _ in range(specs_per_size):
            abstract = random_system(rng, size, 0.35, "A")
            # anchor the legitimate region at a single initial state so the
            # synthesis problem is non-trivial (illegitimate states exist)
            abstract = abstract.with_initial([min(abstract.states, key=repr)])
            result = synthesize_stabilizing_wrapper(abstract)
            recovery_counts.append(result.recovery_count)
            composed = box(abstract, result.wrapper)
            if is_stabilizing_to_fair(
                composed, abstract, result.recovery_edges
            ):
                verified += 1
            concrete = random_subsystem(rng, abstract, "C")
            if is_stabilizing_to_fair(
                box(concrete, result.wrapper), abstract, result.recovery_edges
            ):
                transfer_verified += 1
            if result.stabilizes_unfair:
                unfair_ok += 1
        rows.append(
            {
                "spec_states": size,
                "specs": specs_per_size,
                "A+W fair-stabilizing": verified,
                "C+W fair-stabilizing": transfer_verified,
                "plain (no fairness)": unfair_ok,
                "recovery_edges": Aggregate.of(recovery_counts),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E13 -- FIFO ablation: what Communication Spec buys
# ---------------------------------------------------------------------------


def experiment_fifo_ablation(
    algorithm: str = "ra",
    seeds: tuple[int, ...] = (1, 2, 3),
    steps: int = 3000,
    theta: int = 4,
    reorder_prob: float = 0.8,
) -> list[Row]:
    """Communication Spec demands FIFO channels.  Reordering is *outside*
    the paper's fault model; this ablation shows the boundary:

    * a **finite burst** of reordering is just another transient fault --
      the wrapped system still stabilizes;
    * **persistent** reordering falsifies the Environment Spec, so the
      wrapper's guarantee is void.  (Empirically, RA_ME with sound reply
      semantics still shows no violations -- the FIFO premise is needed by
      the proofs, not observably by this implementation.  A draft whose
      replies carried raw clocks instead of REQ values *did* violate
      mutual exclusion here, which is exactly the kind of bug a voided
      premise permits.)
    """
    from repro.faults.injector import Windowed
    from repro.faults.message_faults import MessageReorder

    rows: list[Row] = []
    for mode in ("none", "finite burst", "persistent"):
        stabilized = 0
        me1 = 0
        me3 = 0
        late_violations = 0
        reorders = 0
        for seed in seeds:
            rng = random.Random(seed * 97 + 5)
            injector = MessageReorder(rng, reorder_prob)
            if mode == "none":
                hook = None
            elif mode == "finite burst":
                hook = Windowed(injector, 100, 400)
            else:
                hook = injector
            sim = build_simulation(
                algorithm,
                n=3,
                seed=seed,
                client=DEFAULT_CLIENT,
                wrapper=WrapperConfig(theta=theta),
                fault_hook=hook,
                deliver_bias=1.0,
            )
            trace = sim.run(steps)
            report = check_tme_spec(trace)
            me1 += len(report.me1)
            me3 += len(report.me3)
            late = [
                i
                for i in list(report.me1)
                + [v.entry_index for v in report.me3]
                if i > steps * 3 // 4
            ]
            late_violations += len(late)
            reorders += injector.count
            if mode != "persistent":
                conv = check_stabilization(trace, liveness_grace=450)
                stabilized += conv.converged
        rows.append(
            {
                "reordering": mode,
                "runs": len(seeds),
                "reorder_faults": reorders,
                "stabilized": stabilized if mode != "persistent" else "n/a",
                "me1_violations": me1,
                "me3_violations": me3,
                "violations_in_last_quarter": late_violations,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E8 -- Theorems 9/10: everywhere implementation of Lspec
# ---------------------------------------------------------------------------


def experiment_everywhere(
    algorithms: tuple[str, ...] = ("ra", "ra-count", "lamport"),
    n: int = 3,
    runs: int = 15,
    steps: int = 1200,
    grace: int = 300,
) -> list[Row]:
    """Paper claim: RA_ME and Lamport_ME everywhere implement Lspec --
    checked from corrupted starts, fault-free, all clauses monitored."""
    rows: list[Row] = []
    for algorithm in algorithms:
        report = everywhere_implements_lspec(
            algorithm, n=n, runs=runs, steps=steps, seed=42, grace=grace
        )
        rows.append(
            {
                "algorithm": algorithm,
                "runs": report.runs,
                "clean_runs": report.clean_runs,
                "safety_violations": dict(report.safety_violations) or "none",
                "overdue_liveness": dict(report.pending_clauses) or "none",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E9 -- Lemma 6: interference freedom
# ---------------------------------------------------------------------------


def experiment_interference(
    algorithms: tuple[str, ...] = ("ra", "lamport"),
    n: int = 3,
    seeds: tuple[int, ...] = (1, 2, 3),
    steps: int = 2500,
    thetas: tuple[int, ...] = (0, 4),
    grace: int = 200,
) -> list[Row]:
    """Paper claim (Lemma 6): Lspec box W everywhere implements Lspec --
    the wrapper never breaks a conforming implementation, even fault-free."""
    rows: list[Row] = []
    for algorithm in algorithms:
        for theta in thetas:
            violations = 0
            wrapper_msgs: list[int] = []
            entries: list[int] = []
            for seed in seeds:
                sim = build_simulation(
                    algorithm,
                    n=n,
                    seed=seed,
                    client=DEFAULT_CLIENT,
                    wrapper=WrapperConfig(theta=theta),
                )
                trace = sim.run(steps)
                programs = {
                    pid: proc.program for pid, proc in sim.processes.items()
                }
                lrep = check_lspec(trace, programs)
                violations += lrep.total_violations()
                wrapper_msgs.append(wrapper_sends(trace))
                entries.append(cs_entries(trace))
            rows.append(
                {
                    "algorithm": algorithm,
                    "theta": theta,
                    "lspec_violations": violations,
                    "wrapper_msgs": Aggregate.of(wrapper_msgs),
                    "entries": Aggregate.of(entries),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# E10 -- Theorem 5: Lspec => TME Spec
# ---------------------------------------------------------------------------


def experiment_theorem5(
    algorithms: tuple[str, ...] = ("ra", "lamport"),
    n: int = 3,
    seeds: tuple[int, ...] = (1, 2, 3, 4),
    steps: int = 2500,
    grace: int = 300,
) -> list[Row]:
    """Paper claim (Theorem 5): every implementation of Lspec implements
    TME Spec -- on every fault-free run, Lspec-clean implies ME1-ME3."""
    rows: list[Row] = []
    for algorithm in algorithms:
        lspec_ok = 0
        tme_ok = 0
        implication_held = 0
        for seed in seeds:
            sim = build_simulation(
                algorithm, n=n, seed=seed, client=DEFAULT_CLIENT
            )
            trace = sim.run(steps)
            programs = {
                pid: proc.program for pid, proc in sim.processes.items()
            }
            l_ok = check_lspec(trace, programs).ok(grace=grace)
            t_ok = check_tme_spec(trace).holds(liveness_grace=grace)
            lspec_ok += l_ok
            tme_ok += t_ok
            implication_held += (not l_ok) or t_ok
        rows.append(
            {
                "algorithm": algorithm,
                "runs": len(seeds),
                "lspec_clean": lspec_ok,
                "tme_clean": tme_ok,
                "implication_held": f"{implication_held}/{len(seeds)}",
            }
        )
    return rows


# ---------------------------------------------------------------------------
# E16 -- Monte-Carlo convergence-latency campaign (repro.campaign)
# ---------------------------------------------------------------------------


def experiment_campaign(
    algorithms: tuple[str, ...] = ("ra", "lamport", "token"),
    sizes: tuple[int, ...] = (8, 16, 32),
    scales: tuple[float, ...] = (0.5, 1.0, 2.0),
    trials: int = 10,
    theta: int = 4,
    root_seed: int = 0,
    workers: int = 1,
) -> list[Row]:
    """Statistical stabilization at scale (:mod:`repro.campaign`).

    Two sweeps of wrapped-algorithm campaigns, reporting the
    convergence-latency distribution (steps after the fault window
    closes):

    * latency vs system size: each algorithm at every ``n`` in ``sizes``
      under the standard Section 3.1 fault rates;
    * latency vs fault intensity: ``ra`` at ``n = sizes[0]`` with the
      standard rates scaled by each factor in ``scales`` (1.0 appears in
      both sweeps and serves as the cross-check row).
    """
    from repro.campaign import CampaignSpec, FaultRates
    from repro.campaign import run_campaign as run_mc_campaign
    from repro.campaign import summarize

    def row(algorithm: str, n: int, scale: float, sweep: str) -> Row:
        spec = CampaignSpec(
            algorithm=algorithm,
            n=n,
            root_seed=root_seed,
            theta=theta,
            rates=FaultRates().scaled(scale),
        )
        import time

        started = time.perf_counter()
        results = run_mc_campaign(spec, trials, workers=workers)
        summary = summarize(results, time.perf_counter() - started)
        return {
            "sweep": sweep,
            "algorithm": algorithm,
            "n": n,
            "fault_scale": scale,
            "trials": trials,
            "converged": f"{summary.outcomes.get('converged', 0)}/{trials}",
            "latency_mean": round(summary.latency.mean, 1),
            "latency_p50": summary.latency.p50,
            "latency_p95": round(summary.latency.p95, 1),
            "latency_max": summary.latency.maximum,
            "faults": summary.total_faults,
        }

    rows: list[Row] = []
    for algorithm in algorithms:
        for n in sizes:
            rows.append(row(algorithm, n, 1.0, "size"))
    for scale in scales:
        if scale == 1.0:
            continue  # already measured in the size sweep
        rows.append(row(algorithms[0], sizes[0], scale, "intensity"))
    return rows


def experiment_churn(
    algorithms: tuple[str, ...] = ("ra", "ra-count", "lamport", "token"),
    n: int = 8,
    trials: int = 10,
    theta: int = 4,
    churn_scale: float = 1.0,
    root_seed: int = 0,
    workers: int = 1,
) -> list[Row]:
    """E17: availability under crash-restart/partition churn, with and
    without the self-healing recovery subsystem (:mod:`repro.recovery`).

    Every wrapped algorithm runs the same churned campaign (the standard
    Section 3.1 fault burst *plus* crash-restart and partition decisions
    at the standard :class:`~repro.campaign.ChurnRates` scaled by
    ``churn_scale``) twice -- recovery attached, recovery off -- and the
    table reports convergence, mean availability, and the detection /
    recovery latency distributions.  The token ring is the negative
    control: exclusion cannot substitute for its token, so only the
    watchdog's global reset restores service.
    """
    import time

    from repro.campaign import CampaignSpec, ChurnRates
    from repro.campaign import run_campaign as run_mc_campaign
    from repro.campaign import summarize
    from repro.recovery import RecoveryConfig

    def row(algorithm: str, recovery: bool) -> Row:
        spec = CampaignSpec(
            algorithm=algorithm,
            n=n,
            root_seed=root_seed,
            theta=theta,
            churn=ChurnRates().scaled(churn_scale),
            recovery=RecoveryConfig() if recovery else None,
        )
        started = time.perf_counter()
        results = run_mc_campaign(spec, trials, workers=workers)
        summary = summarize(results, time.perf_counter() - started)
        detection = summary.detection
        recovery_lat = summary.recovery
        return {
            "algorithm": algorithm,
            "recovery": "on" if recovery else "off",
            "n": n,
            "trials": trials,
            "converged": f"{summary.outcomes.get('converged', 0)}/{trials}",
            "availability": (
                round(summary.availability_mean, 3)
                if summary.availability_mean is not None
                else "-"
            ),
            "detect_p50": detection.p50 if detection else "-",
            "detect_p95": round(detection.p95, 1) if detection else "-",
            "recover_p50": recovery_lat.p50 if recovery_lat else "-",
            "recover_p95": (
                round(recovery_lat.p95, 1) if recovery_lat else "-"
            ),
            "dropped": summary.total_dropped,
        }

    rows: list[Row] = []
    for algorithm in algorithms:
        rows.append(row(algorithm, recovery=True))
    for algorithm in algorithms:
        rows.append(row(algorithm, recovery=False))
    return rows


# ---------------------------------------------------------------------------
# E18 -- sharded exploration: scaling and checkpoint/resume
# ---------------------------------------------------------------------------


def experiment_parallel(
    algorithm: str = "ra",
    n: int = 4,
    max_depth: int = 10,
    workers: tuple[int, ...] = (1, 2, 4),
) -> list[Row]:
    """E18: the sharded BFS engine against the whitebox cost argument.

    Section 1's whitebox complaint is about the *size* of the global
    state space; sharding answers the matching systems question -- can
    the enumeration at least be partitioned?  Every row explores the
    same symmetric quotient; the sharded rows must land on the
    bit-identical visited set (same count, same content digest) at every
    worker count, because shard-local dedup plus the level-committed
    rank merge reproduces the serial admission order exactly.  The last
    two rows journal the run to disk (out-of-core store) and then
    *resume* it from the committed checkpoint: the replay admits every
    journalled state without re-expanding the interior, so its
    throughput is pure IO.  ``speedup`` is honest wall-clock -- on a
    single-core runner the extra processes cost more than they buy, and
    the column says so.
    """
    import tempfile
    import time

    from repro.tme import tme_programs
    from repro.verification.explorer import explore_global

    client = ClientConfig(think_delay=1, eat_delay=1)
    programs = tme_programs(algorithm, n, client)
    symmetry = "ring" if algorithm == "token" else "full"

    def timed(label: str, **kwargs) -> tuple[Row, Any]:
        started = time.perf_counter()
        run = explore_global(
            programs,
            max_depth=max_depth,
            symmetry=symmetry,
            digest=True,
            **kwargs,
        )
        elapsed = time.perf_counter() - started
        return {
            "mode": label,
            "states": run.states,
            "digest": run.content_digest[:12],
            "states_per_sec": f"{run.states / elapsed:.0f}",
            "resumed": run.stats.resumed_states,
            "spilled_kib": round(run.stats.spill_bytes / 1024, 1),
        }, run

    rows: list[Row] = []
    serial_row, serial = timed("serial", workers=1)
    serial_row["speedup"] = "1.00x"
    serial_rate = float(serial_row["states_per_sec"])
    rows.append(serial_row)
    for count in workers:
        if count <= 1:
            continue
        row, run = timed(f"sharded x{count}", workers=count)
        row["speedup"] = f"{float(row['states_per_sec']) / serial_rate:.2f}x"
        assert run.content_digest == serial.content_digest
        rows.append(row)

    with tempfile.TemporaryDirectory() as store_dir:
        row, run = timed("checkpointed x2", workers=2, store_dir=store_dir)
        row["speedup"] = f"{float(row['states_per_sec']) / serial_rate:.2f}x"
        assert run.content_digest == serial.content_digest
        rows.append(row)
        row, run = timed(
            "resumed x2", workers=2, store_dir=store_dir, resume=True
        )
        row["speedup"] = "-"
        assert run.content_digest == serial.content_digest
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# E19 -- the live service: throughput and tail latency, chaos on vs off
# ---------------------------------------------------------------------------


def experiment_service(
    n: int = 3,
    theta: int = 8,
    clients: int = 30,
    duration_s: float = 3.0,
) -> list[Row]:
    """E19: the deployed-implementation claim, measured.

    Section 1 motivates graybox stabilization with *deployed*
    implementations -- components that already run and cannot be
    redesigned.  This experiment runs the same wrapped programs the
    simulator verifies as a real asyncio cluster on localhost sockets
    (:mod:`repro.service`) under concurrent lock clients, once clean and
    once with a chaos partition cutting one node for the middle third of
    the run.  Checked claims: the online monitor sees zero ME1/ME3
    violations either way; offline revalidation of the persisted trace
    reproduces the online verdict bit-for-bit; and the chaos run's
    latency tail (the stall) is the outage, not a safety violation.
    """
    import asyncio
    import tempfile
    from pathlib import Path

    from repro.service import (
        ChaosConfig,
        ClusterConfig,
        LoadgenConfig,
        LocalCluster,
        run_loadgen,
    )
    from repro.service.monitor import revalidate_trace

    async def variant(label: str, chaos: ChaosConfig | None, trace: str) -> Row:
        cluster = LocalCluster(
            ClusterConfig(n=n, theta=theta, trace_path=trace), chaos=chaos
        )
        await cluster.start()
        result = await run_loadgen(
            LoadgenConfig(
                ports=tuple(cluster.client_ports()),
                clients=clients,
                duration_s=duration_s,
                acquire_timeout_s=duration_s * 4,
                think_s=0.002,
            )
        )
        report = await cluster.stop()
        offline = revalidate_trace(trace)
        matches = (
            offline.me1 == report.me1
            and offline.me3 == report.me3
            and offline.trace_length == report.trace_length
        )
        latency = result.latency_summary()
        return {
            "variant": label,
            "clients": clients,
            "grants": result.grants,
            "grants_per_s": round(result.throughput, 1),
            "p50_ms": round(latency.p50, 2),
            "p95_ms": round(latency.p95, 2),
            "max_ms": round(latency.maximum, 1),
            "me1": len(report.me1),
            "me3": len(report.me3),
            "offline_match": matches,
        }

    tick_s = 0.05
    third_ticks = max(1, int(duration_s / 3 / tick_s))
    chaos = ChaosConfig(
        tick_s=tick_s,
        cut_at_tick=third_ticks,
        outage_ticks=third_ticks,
        victim="p0",
    )

    async def run_all() -> list[Row]:
        with tempfile.TemporaryDirectory() as tmp:
            rows = [
                await variant(
                    "clean", None, str(Path(tmp) / "clean.jsonl")
                ),
                await variant(
                    "chaos (p0 cut mid-run)",
                    chaos,
                    str(Path(tmp) / "chaos.jsonl"),
                ),
            ]
        return rows

    return asyncio.run(run_all())


# ---------------------------------------------------------------------------
# E20 -- kill-safe campaigns: chaos self-test digest stability
# ---------------------------------------------------------------------------


def experiment_killsafe(
    trials: int = 24,
    n: int = 4,
    workers: tuple[int, ...] = (1, 2),
    root_seed: int = 0,
    kill_rate: float = 0.25,
) -> list[Row]:
    """E20: Corollary 11's campaigns survive ``kill -9``, end to end.

    Each row runs the built-in chaos self-test
    (:func:`repro.campaign.run_chaos_selftest`) over the same campaign
    matrix: a clean in-process run stamps the reference content hash,
    then the campaign re-runs against a durable journal while a seeded
    chaos hook SIGKILLs workers mid-trial and the coordinator itself is
    SIGKILLed at seeded delays and resumed until it completes.  The
    ``digest_match`` column is the claim: the resumed run's stamped
    artifact hash is bit-identical to the uninterrupted one's, at every
    worker count (``workers=1`` exercises the serial fallback under
    coordinator kills alone).
    """
    import tempfile

    from repro.campaign import (
        CampaignSpec,
        run_chaos_selftest,
        single_spec_matrix,
    )

    spec = CampaignSpec(
        algorithm="ra",
        n=n,
        root_seed=root_seed,
        fault_start=20,
        fault_stop=80,
        confirm_window=120,
        max_steps=900,
    )
    rows: list[Row] = []
    for count in workers:
        matrix = single_spec_matrix(spec, trials, name="killsafe")
        with tempfile.TemporaryDirectory() as store:
            report = run_chaos_selftest(
                matrix,
                store,
                workers=count,
                seed=root_seed + count,
                kill_rate=kill_rate,
            )
        rows.append(
            {
                "workers": count,
                "trials": trials,
                "coordinator_kills": report.coordinator_kills,
                "rounds": report.rounds,
                "resumed": report.resumed_results,
                "digest": report.reference_hash.removeprefix("sha256:")[:12],
                "digest_match": report.digests_match,
            }
        )
    return rows
