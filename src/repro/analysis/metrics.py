"""Metrics over recorded runs: convergence, overhead, throughput."""

from __future__ import annotations

import statistics
from collections.abc import Sequence
from dataclasses import dataclass

from repro.runtime.trace import Trace
from repro.tme.interfaces import REQUEST


@dataclass(frozen=True)
class RunMetrics:
    """Per-run measurements the experiment tables are built from."""

    steps: int
    cs_entries: int
    total_messages: int
    wrapper_messages: int
    converged: bool
    convergence_latency: int | None
    me1_violations: int

    @property
    def wrapper_overhead_per_step(self) -> float:
        """Wrapper retransmissions per simulator step."""
        return self.wrapper_messages / self.steps if self.steps else 0.0

    @property
    def throughput(self) -> float:
        """CS entries per 100 steps."""
        return 100.0 * self.cs_entries / self.steps if self.steps else 0.0


def wrapper_sends(trace: Trace, start: int = 0, stop: int | None = None) -> int:
    """Request retransmissions issued by wrapper actions in a step window."""
    stop = len(trace.steps) if stop is None else stop
    count = 0
    for step in trace.steps[start:stop]:
        if step.is_wrapper_step:
            count += sum(1 for kind, _r in step.sends if kind == REQUEST)
    return count


def total_sends(trace: Trace, start: int = 0, stop: int | None = None) -> int:
    """All messages sent in a step window."""
    stop = len(trace.steps) if stop is None else stop
    return sum(len(step.sends) for step in trace.steps[start:stop])


def cs_entries(trace: Trace, start: int = 0) -> int:
    """CS entries counted as hungry -> eating transitions."""
    count = 0
    states = trace.states
    for i in range(max(start, 1), len(states)):
        prev, cur = states[i - 1], states[i]
        for pid in cur.pids():
            if (
                prev.var(pid, "phase") == "h"
                and cur.var(pid, "phase") == "e"
            ):
                count += 1
    return count


@dataclass(frozen=True)
class Aggregate:
    """Mean/min/max/stdev over repeated seeds."""

    mean: float
    minimum: float
    maximum: float
    stdev: float
    n: int

    @staticmethod
    def of(values: Sequence[float]) -> "Aggregate":
        """Summarize a sample (empty samples yield the zero aggregate)."""
        if not values:
            return Aggregate(0.0, 0.0, 0.0, 0.0, 0)
        return Aggregate(
            mean=statistics.fmean(values),
            minimum=min(values),
            maximum=max(values),
            stdev=statistics.pstdev(values) if len(values) > 1 else 0.0,
            n=len(values),
        )

    def __format__(self, spec: str) -> str:
        spec = spec or ".1f"
        return f"{self.mean:{spec}} (min {self.minimum:{spec}}, max {self.maximum:{spec}})"
