"""Crash-restart and partition fault injectors.

These extend the Section 3.1 fault lattice with the two classes a
production deployment of the wrapper must additionally survive: *crash
churn* (a process loses its volatile state and later restarts from an
improperly initialized valuation -- the paper's arbitrary-start assumption,
exercised at runtime) and *network partitions* (per-link cuts and heals,
first-class in :class:`repro.runtime.network.Network`).

All injectors here are probabilistic and compose with the existing
:class:`~repro.faults.injector.Windowed` / :class:`~repro.faults.injector.
Composite` machinery.  Timed revivals and heals are *scheduled on the
runtime* (``restart_at`` / ``heal_at``), so a fault window may close while
a restart scheduled inside it still fires afterwards -- crash-restart is
one fault, not two.

For bit-for-bit replayable churn inside Monte-Carlo campaigns use the
operation-based :class:`repro.campaign.faults.DecidingFaults` with a
:class:`repro.campaign.faults.ChurnRates` instead.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Collection, Mapping
from typing import TYPE_CHECKING, Any

from repro.faults.injector import FaultInjector

if TYPE_CHECKING:
    from repro.runtime.process import ProcessRuntime
    from repro.runtime.simulator import Simulator

#: Builds the (improper) valuation a process restarts from.  ``None``
#: restarts from the program's initial state.
RestartVarsFn = Callable[["ProcessRuntime", random.Random], Mapping[str, Any]]


def _live_pids(
    simulator: "Simulator", pids: Collection[str] | None
) -> list[str]:
    return [
        pid
        for pid in sorted(simulator.processes)
        if simulator.processes[pid].is_live and (pids is None or pid in pids)
    ]


def _crashed_count(simulator: "Simulator") -> int:
    return sum(1 for p in simulator.processes.values() if not p.is_live)


def default_max_crashed(n: int) -> int:
    """Keep a strict majority of processes live (quorums stay winnable)."""
    return (n - 1) // 2


class CrashStop(FaultInjector):
    """Each step, with probability ``rate``, crash-stop one live process.

    The victim's volatile state and queued mail are lost and it never
    restarts.  At most ``max_crashed`` processes are down simultaneously
    (default: a strict minority, so the rest of the system can still make
    progress once the recovery layer excludes the dead).
    """

    def __init__(
        self,
        rng: random.Random,
        rate: float,
        pids: Collection[str] | None = None,
        max_crashed: int | None = None,
    ):
        self.rng = rng
        self.rate = rate
        self.pids = frozenset(pids) if pids is not None else None
        self.max_crashed = max_crashed

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.rng.random() >= self.rate:
            return []
        cap = (
            self.max_crashed
            if self.max_crashed is not None
            else default_max_crashed(len(simulator.processes))
        )
        if _crashed_count(simulator) >= cap:
            return []
        live = _live_pids(simulator, self.pids)
        if not live:
            return []
        pid = self.rng.choice(live)
        dropped = simulator.crash_process(pid)
        return [f"crash-stop {pid} (mail lost: {dropped})"]


class CrashRestart(FaultInjector):
    """Each step, with probability ``rate``, crash one live process and
    schedule its restart ``downtime`` steps later.

    The restart re-enters from improper initialization: by default the
    program's initial valuation (improper because the rest of the system
    has moved on), or whatever ``restart_vars_fn`` returns -- e.g.
    :func:`repro.tme.scenarios.scramble_tme_state` layered over the
    initial state for an adversarial arbitrary start.
    """

    def __init__(
        self,
        rng: random.Random,
        rate: float,
        downtime: int = 40,
        pids: Collection[str] | None = None,
        max_crashed: int | None = None,
        restart_vars_fn: RestartVarsFn | None = None,
    ):
        if downtime < 1:
            raise ValueError("downtime must be >= 1 step")
        self.rng = rng
        self.rate = rate
        self.downtime = downtime
        self.pids = frozenset(pids) if pids is not None else None
        self.max_crashed = max_crashed
        self.restart_vars_fn = restart_vars_fn

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.rng.random() >= self.rate:
            return []
        cap = (
            self.max_crashed
            if self.max_crashed is not None
            else default_max_crashed(len(simulator.processes))
        )
        if _crashed_count(simulator) >= cap:
            return []
        live = _live_pids(simulator, self.pids)
        if not live:
            return []
        pid = self.rng.choice(live)
        proc = simulator.processes[pid]
        restart_vars: Mapping[str, Any] | None = None
        if self.restart_vars_fn is not None:
            restart_vars = dict(proc.program.initial_vars)
            restart_vars.update(self.restart_vars_fn(proc, self.rng))
        restart_at = step_index + self.downtime
        dropped = simulator.crash_process(
            pid, restart_at=restart_at, restart_vars=restart_vars
        )
        return [
            f"crash {pid} (restart at {restart_at}, mail lost: {dropped})"
        ]


class PartitionFaults(FaultInjector):
    """Random partitions and heals over process subsets.

    Each step, with probability ``partition_rate`` and only when no link is
    currently cut, a random minority side is split off (both directions of
    every crossing link go down).  ``heal_after`` schedules the heal that
    many steps later; when it is ``None`` the partition persists until an
    explicit heal strikes with probability ``heal_rate``.
    """

    def __init__(
        self,
        rng: random.Random,
        partition_rate: float,
        heal_after: int | None = 60,
        heal_rate: float = 0.0,
    ):
        if heal_after is not None and heal_after < 1:
            raise ValueError("heal_after must be >= 1 step")
        self.rng = rng
        self.partition_rate = partition_rate
        self.heal_after = heal_after
        self.heal_rate = heal_rate

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        struck: list[str] = []
        network = simulator.network
        if self.rng.random() < self.partition_rate and not network.down_links():
            pids = sorted(simulator.processes)
            max_side = default_max_crashed(len(pids))
            if max_side >= 1:
                size = self.rng.randrange(1, max_side + 1)
                side = tuple(sorted(self.rng.sample(pids, size)))
                heal_at = (
                    step_index + self.heal_after
                    if self.heal_after is not None
                    else None
                )
                links = network.cut(side, heal_at=heal_at)
                when = f"heal at {heal_at}" if heal_at is not None else "unhealed"
                struck.append(
                    f"partition {{{','.join(side)}}} "
                    f"({len(links)} links, {when})"
                )
        if self.heal_rate and self.rng.random() < self.heal_rate:
            healed = network.heal_all()
            if healed:
                struck.append(f"heal all ({len(healed)} links)")
        return struck
