"""Fault-injection framework.

The TME fault model (Section 3.1): *messages can be corrupted, lost, or
duplicated at any time; processes (respectively channels) can be improperly
initialized, fail, recover, or their state could be transiently (and
arbitrarily) corrupted at any time.  Stabilization is desired
notwithstanding the occurrence of any finite number of these faults.*

"Any finite number" is the key phrase: injectors are typically wrapped in a
:class:`Windowed` combinator so that faults strike during a window and then
cease, after which convergence is measured (see
:mod:`repro.verification.stabilization`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.runtime.simulator import Simulator


class FaultInjector:
    """Base class; subclasses mutate the simulator and describe what struck."""

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        """Inject faults; return a description per fault dealt."""
        raise NotImplementedError


class NoFaults(FaultInjector):
    """The fault-free environment (used for interference-freedom runs)."""

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        return []


class Composite(FaultInjector):
    """Apply several injectors in order each step."""

    def __init__(self, injectors: Sequence[FaultInjector]):
        self.injectors = list(injectors)

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        out: list[str] = []
        for inj in self.injectors:
            out.extend(inj.before_step(simulator, step_index))
        return out


class Windowed(FaultInjector):
    """Restrict an injector to steps in ``[start, stop)``.

    This realizes "any finite number of faults": after ``stop`` the
    environment is fault-free and stabilization must kick in.
    """

    def __init__(self, inner: FaultInjector, start: int, stop: int):
        if stop < start:
            raise ValueError("stop must be >= start")
        self.inner = inner
        self.start = start
        self.stop = stop

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.start <= step_index < self.stop:
            return self.inner.before_step(simulator, step_index)
        return []


class Scripted(FaultInjector):
    """Precise scenarios: run ``fn(simulator)`` at exactly the given steps.

    ``script`` maps step index -> callable returning a description.  Used
    for the paper's Section-4 deadlock scenario and for targeted tests.
    """

    def __init__(
        self, script: dict[int, Callable[["Simulator"], str]]
    ):
        self.script = dict(script)
        self.fired: list[int] = []

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        fn = self.script.get(step_index)
        if fn is None:
            return []
        self.fired.append(step_index)
        return [fn(simulator)]


class BudgetedFaults(FaultInjector):
    """Cap the total number of faults an injector may deal (the literal
    "finite number of faults" guarantee, independent of step windows)."""

    def __init__(self, inner: FaultInjector, budget: int):
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.inner = inner
        self.remaining = budget

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.remaining <= 0:
            return []
        struck = self.inner.before_step(simulator, step_index)
        if len(struck) > self.remaining:
            struck = struck[: self.remaining]
        self.remaining -= len(struck)
        return struck
