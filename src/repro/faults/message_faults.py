"""Channel faults: loss, duplication, corruption, improper channel state.

Each injector strikes independently per step with a configured probability,
choosing a uniformly random victim message across all non-empty channels
(so long channels are proportionally more exposed, as on a real network).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.runtime.messages import Message

if TYPE_CHECKING:
    from repro.runtime.simulator import Simulator


def _random_victim(
    simulator: "Simulator", rng: random.Random
) -> tuple | None:
    """Pick (channel, index) uniformly over all in-flight messages."""
    channels = simulator.network.nonempty_channels()
    if not channels:
        return None
    weights = [len(c) for c in channels]
    chan = rng.choices(channels, weights=weights, k=1)[0]
    return chan, rng.randrange(len(chan))


class MessageLoss:
    """Lose a random in-flight message with probability ``prob`` per step."""

    def __init__(self, rng: random.Random, prob: float):
        self.rng = rng
        self.prob = prob
        self.count = 0

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.rng.random() >= self.prob:
            return []
        victim = _random_victim(simulator, self.rng)
        if victim is None:
            return []
        chan, idx = victim
        msg = chan.drop_at(idx)
        self.count += 1
        return [f"loss: {msg.kind} {msg.sender}->{msg.receiver}"]


class MessageDuplication:
    """Duplicate a random in-flight message with probability ``prob``."""

    def __init__(self, rng: random.Random, prob: float):
        self.rng = rng
        self.prob = prob
        self.count = 0

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.rng.random() >= self.prob:
            return []
        victim = _random_victim(simulator, self.rng)
        if victim is None:
            return []
        chan, idx = victim
        dup = chan.duplicate_at(idx, simulator.network.fresh_uid())
        self.count += 1
        return [f"dup: {dup.kind} {dup.sender}->{dup.receiver}"]


Corrupter = Callable[[Message, random.Random, int], Message]


class MessageCorruption:
    """Corrupt a random in-flight message with probability ``prob``.

    ``corrupter(msg, rng, new_uid)`` builds the corrupted copy; domains
    (e.g. TME) supply one that scrambles payload timestamps or message
    kinds.  The default flips the payload to the opaque string
    ``"<garbage>"``.
    """

    def __init__(
        self,
        rng: random.Random,
        prob: float,
        corrupter: Corrupter | None = None,
    ):
        self.rng = rng
        self.prob = prob
        self.corrupter = corrupter or (
            lambda msg, _rng, uid: msg.corrupted(uid, payload="<garbage>")
        )
        self.count = 0

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.rng.random() >= self.prob:
            return []
        victim = _random_victim(simulator, self.rng)
        if victim is None:
            return []
        chan, idx = victim
        uid = simulator.network.fresh_uid()
        msg = chan.corrupt_at(idx, lambda m: self.corrupter(m, self.rng, uid))
        self.count += 1
        return [f"corrupt: {msg.kind} {msg.sender}->{msg.receiver}"]


class MessageReorder:
    """Swap the head of a random channel with a later message.

    This violates Communication Spec (FIFO channels) -- it is *outside* the
    paper's fault model, and the FIFO-ablation experiment uses it to show
    what the Environment Spec assumption buys: with reordering allowed as a
    recurring (not finite) fault, the wrapper's guarantee is void.
    """

    def __init__(self, rng: random.Random, prob: float):
        self.rng = rng
        self.prob = prob
        self.count = 0

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.rng.random() >= self.prob:
            return []
        channels = [
            c for c in simulator.network.nonempty_channels() if len(c) >= 2
        ]
        if not channels:
            return []
        chan = self.rng.choice(channels)
        other = self.rng.randrange(1, len(chan))
        queue = list(chan.snapshot())
        queue[0], queue[other] = queue[other], queue[0]
        chan.replace_contents(queue)
        self.count += 1
        return [f"reorder: {chan.src}->{chan.dst} head<->{other}"]


class ChannelFlush:
    """Lose *everything* in flight (a network partition blip), with
    probability ``prob`` per step."""

    def __init__(self, rng: random.Random, prob: float):
        self.rng = rng
        self.prob = prob
        self.count = 0

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.rng.random() >= self.prob:
            return []
        lost = simulator.network.flush_all()
        if lost == 0:
            return []
        self.count += 1
        return [f"flush: lost {lost} in-flight messages"]
