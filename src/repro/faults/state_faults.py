"""Process-state faults: transient corruption, improper initialization,
crash-and-recover.

Process state in this runtime is a flat variable valuation, so "transient
and arbitrary corruption" is an arbitrary partial overwrite.  What counts as
a *plausible arbitrary value* is domain knowledge (e.g. a TME timestamp),
so injectors take a ``scrambler`` callback supplied by the domain package
(:func:`repro.tme.scenarios.scramble_tme_state` for TME).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.runtime.process import ProcessRuntime
    from repro.runtime.simulator import Simulator

Scrambler = Callable[["ProcessRuntime", random.Random], dict[str, Any]]


class StateCorruption:
    """With probability ``prob`` per step, corrupt one random process's
    variables using ``scrambler`` (which returns the overwrite)."""

    def __init__(self, rng: random.Random, prob: float, scrambler: Scrambler):
        self.rng = rng
        self.prob = prob
        self.scrambler = scrambler
        self.count = 0

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.rng.random() >= self.prob:
            return []
        pid = self.rng.choice(sorted(simulator.processes))
        proc = simulator.processes[pid]
        updates = self.scrambler(proc, self.rng)
        if not updates:
            return []
        proc.corrupt(updates)
        self.count += 1
        return [f"state-corrupt: {pid} <- {sorted(updates)}"]


class ImproperInitialization:
    """One-shot fault at step 0: scramble every process and every channel.

    This realizes "improperly initialized" -- the system simply starts in an
    arbitrary state.  ``channel_filler(src, dst, rng)`` returns garbage
    messages to preload (may be empty).
    """

    def __init__(
        self,
        rng: random.Random,
        scrambler: Scrambler,
        channel_filler: Callable[[str, str, random.Random], list] | None = None,
    ):
        self.rng = rng
        self.scrambler = scrambler
        self.channel_filler = channel_filler
        self.fired = False

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.fired or step_index != 0:
            return []
        self.fired = True
        struck = []
        for pid in sorted(simulator.processes):
            proc = simulator.processes[pid]
            updates = self.scrambler(proc, self.rng)
            proc.corrupt(updates)
            struck.append(f"improper-init: {pid}")
        if self.channel_filler is not None:
            for chan in simulator.network.channels():
                garbage = self.channel_filler(chan.src, chan.dst, self.rng)
                if garbage:
                    chan.replace_contents(garbage)
                    struck.append(
                        f"improper-init: channel {chan.src}->{chan.dst} "
                        f"preloaded with {len(garbage)}"
                    )
        return struck


class CrashRecover:
    """Fail-and-recover: with probability ``prob``, reset one process to its
    program's initial valuation (a recovery to default state -- which may be
    *mutually* inconsistent with the rest of the system, the paper's level-2
    concern) and drop that process's in-flight mail."""

    def __init__(self, rng: random.Random, prob: float, drop_mail: bool = True):
        self.rng = rng
        self.prob = prob
        self.drop_mail = drop_mail
        self.count = 0

    def before_step(self, simulator: "Simulator", step_index: int) -> list[str]:
        if self.rng.random() >= self.prob:
            return []
        pid = self.rng.choice(sorted(simulator.processes))
        proc = simulator.processes[pid]
        proc.improper_init(dict(proc.program.initial_vars))
        lost = 0
        if self.drop_mail:
            for other in simulator.network.pids:
                if other != pid:
                    lost += simulator.network.channel(other, pid).clear()
                    lost += simulator.network.channel(pid, other).clear()
        self.count += 1
        return [f"crash-recover: {pid} (dropped {lost} messages)"]
