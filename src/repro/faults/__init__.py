"""The paper's fault model (Section 3.1), as composable injectors."""

from repro.faults.crash_faults import (
    CrashRestart,
    CrashStop,
    PartitionFaults,
)
from repro.faults.injector import (
    BudgetedFaults,
    Composite,
    FaultInjector,
    NoFaults,
    Scripted,
    Windowed,
)
from repro.faults.message_faults import (
    ChannelFlush,
    MessageCorruption,
    MessageDuplication,
    MessageLoss,
    MessageReorder,
)
from repro.faults.state_faults import (
    CrashRecover,
    ImproperInitialization,
    StateCorruption,
)

__all__ = [
    "BudgetedFaults",
    "ChannelFlush",
    "Composite",
    "CrashRecover",
    "CrashRestart",
    "CrashStop",
    "FaultInjector",
    "ImproperInitialization",
    "MessageCorruption",
    "MessageDuplication",
    "MessageLoss",
    "MessageReorder",
    "NoFaults",
    "PartitionFaults",
    "Scripted",
    "StateCorruption",
    "Windowed",
]
