"""The paper's fault model (Section 3.1), as composable injectors."""

from repro.faults.injector import (
    BudgetedFaults,
    Composite,
    FaultInjector,
    NoFaults,
    Scripted,
    Windowed,
)
from repro.faults.message_faults import (
    ChannelFlush,
    MessageCorruption,
    MessageDuplication,
    MessageLoss,
    MessageReorder,
)
from repro.faults.state_faults import (
    CrashRecover,
    ImproperInitialization,
    StateCorruption,
)

__all__ = [
    "BudgetedFaults",
    "ChannelFlush",
    "Composite",
    "CrashRecover",
    "FaultInjector",
    "ImproperInitialization",
    "MessageCorruption",
    "MessageDuplication",
    "MessageLoss",
    "MessageReorder",
    "NoFaults",
    "Scripted",
    "StateCorruption",
    "Windowed",
]
