"""Timestamps and the paper's ``lt`` total order.

Environment Spec (Timestamp Spec) requires timestamps drawn from a totally
ordered domain such that ``e hb f => ts:e < ts:f``.  The paper instantiates
this with Lamport logical clocks [10] and the standard tie-break by process
id::

    lc:e_j lt lc:f_k  ==  lc:e_j < lc:f_k  \\/  (lc:e_j = lc:f_k  /\\  j < k)

:class:`Timestamp` is an immutable ``(clock, pid)`` pair ordered exactly this
way.  Process ids are compared as strings (any fixed total order on ids
works; the paper only needs *some* total order).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class Timestamp:
    """A logical timestamp ``(clock, pid)`` under the paper's ``lt`` order."""

    clock: int
    pid: str

    def __post_init__(self) -> None:
        if not isinstance(self.clock, int):
            raise TypeError(f"clock must be an int, got {self.clock!r}")
        if self.clock < -1:
            raise ValueError(
                f"clock must be >= -1 (-1 is the BOTTOM sentinel used by "
                f"derived interfaces), got {self.clock}"
            )

    def __hash__(self) -> int:
        # Memoised: timestamps sit inside every global-state snapshot and
        # get re-hashed on each state-space dedup lookup.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            h = hash((self.clock, self.pid))
            object.__setattr__(self, "_hash", h)
            return h

    def __lt__(self, other: "Timestamp") -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.clock, self.pid) < (other.clock, other.pid)

    def lt(self, other: "Timestamp") -> bool:
        """The paper's ``lt`` relation (strictly earlier)."""
        return self < other

    def advanced_to(self, clock: int) -> "Timestamp":
        """The same owner's timestamp at a different clock value."""
        return Timestamp(clock, self.pid)

    def __repr__(self) -> str:
        return f"ts({self.clock},{self.pid})"


def zero(pid: str) -> Timestamp:
    """The initial timestamp of process ``pid`` (Init: ``ts:j = 0``)."""
    return Timestamp(0, pid)


def bottom(pid: str) -> Timestamp:
    """A timestamp strictly below every real (clock >= 0) timestamp.

    Real events never carry it; it exists so *derived* interfaces (e.g.
    Lamport_ME's ``j.REQ_k``, Section 5.2) can express "no confirmed
    information about k" -- a value that must compare ``lt`` any possible
    ``REQ_j``, including the global minimum ``Timestamp(0, min_pid)``.
    """
    return Timestamp(-1, pid)


def earliest(timestamps: dict[str, Timestamp]) -> str:
    """The pid whose timestamp is least under ``lt`` (the paper's
    ``earliest:j``).  Raises ``ValueError`` on an empty mapping."""
    if not timestamps:
        raise ValueError("earliest() of no timestamps")
    return min(timestamps.items(), key=lambda kv: kv[1])[0]


def is_total_order_consistent(timestamps: list[Timestamp]) -> bool:
    """Check the ``lt`` order is a strict total order on the given sample:
    irreflexive, antisymmetric, transitive, and total.  Used by the
    Timestamp Spec monitor and property tests."""
    for a in timestamps:
        if a.lt(a):
            return False
    for a in timestamps:
        for b in timestamps:
            if a != b and not (a.lt(b) ^ b.lt(a)):
                return False
    for a in timestamps:
        for b in timestamps:
            for c in timestamps:
                if a.lt(b) and b.lt(c) and not a.lt(c):
                    return False
    return True
