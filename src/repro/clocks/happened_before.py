"""The happened-before relation ``hb`` [Lamport 1978] over recorded events.

Timestamp Spec: ``(forall e, f :: e hb f => ts:e < ts:f)``.  The runtime
records every event (local step, send, receive) with its process, sequence
number, timestamp, and -- for receives -- the identity of the matching send.
This module computes ``hb`` as the transitive closure of

1. same-process program order, and
2. send -> matching receive,

and checks timestamp consistency against it.  Vector clocks are used
internally as the standard O(n) representation of the causal order (they
characterize ``hb`` exactly).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.clocks.timestamps import Timestamp


@dataclass(frozen=True)
class RecordedEvent:
    """One event of an execution, as recorded by the runtime.

    ``uid`` is globally unique; ``send_uid`` is set on receive events and
    names the matching send event.
    """

    uid: int
    pid: str
    seq: int
    kind: str
    timestamp: Timestamp
    send_uid: int | None = None
    step_index: int | None = None
    clock_event: bool = True


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector clock over a fixed set of process ids."""

    components: tuple[tuple[str, int], ...]

    @staticmethod
    def zero(pids: Iterable[str]) -> "VectorClock":
        """The all-zero clock over a pid set."""
        return VectorClock(tuple((p, 0) for p in sorted(pids)))

    def as_dict(self) -> dict[str, int]:
        """Components as a plain dict."""
        return dict(self.components)

    def incremented(self, pid: str) -> "VectorClock":
        """Advance one component (a local event at ``pid``)."""
        d = self.as_dict()
        if pid not in d:
            raise KeyError(pid)
        d[pid] += 1
        return VectorClock(tuple(sorted(d.items())))

    def merged(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum (message receipt)."""
        a, b = self.as_dict(), other.as_dict()
        if set(a) != set(b):
            raise ValueError("vector clocks over different pid sets")
        return VectorClock(tuple(sorted((p, max(a[p], b[p])) for p in a)))

    def dominates(self, other: "VectorClock") -> bool:
        """``other <= self`` componentwise (reflexive)."""
        a, b = self.as_dict(), other.as_dict()
        return all(b[p] <= a[p] for p in a)

    def strictly_after(self, other: "VectorClock") -> bool:
        """Causally later: dominates and differs."""
        return self.dominates(other) and self.components != other.components


def vector_clocks_for(
    events: Sequence[RecordedEvent], pids: Iterable[str]
) -> dict[int, VectorClock]:
    """Assign each event its vector clock (events must be listed in an order
    consistent with causality -- the runtime's global recording order is).

    Receives whose matching send is missing from ``events`` (a corrupted or
    fault-forged message) are treated as fresh local events: a forged message
    carries no causal history.
    """
    by_uid: dict[int, VectorClock] = {}
    latest: dict[str, VectorClock] = {p: VectorClock.zero(pids) for p in pids}
    for ev in events:
        base = latest[ev.pid]
        if ev.send_uid is not None and ev.send_uid in by_uid:
            base = base.merged(by_uid[ev.send_uid])
        vc = base.incremented(ev.pid)
        by_uid[ev.uid] = vc
        latest[ev.pid] = vc
    return by_uid


def happened_before(
    events: Sequence[RecordedEvent], pids: Iterable[str]
) -> set[tuple[int, int]]:
    """The full ``hb`` relation as a set of (uid, uid) pairs.

    Quadratic in the number of events; intended for verification on bounded
    traces, not for production paths.
    """
    vcs = vector_clocks_for(events, pids)
    pairs: set[tuple[int, int]] = set()
    for e in events:
        for f in events:
            if e.uid != f.uid and vcs[f.uid].strictly_after(vcs[e.uid]):
                pairs.add((e.uid, f.uid))
    return pairs


@dataclass(frozen=True)
class HbViolation:
    """A pair ``e hb f`` whose timestamps are not increasing."""

    earlier: RecordedEvent
    later: RecordedEvent

    def describe(self) -> str:
        """Human-readable account of the violated pair."""
        return (
            f"{self.earlier.kind}@{self.earlier.pid} hb "
            f"{self.later.kind}@{self.later.pid} but "
            f"ts {self.earlier.timestamp} !< {self.later.timestamp}"
        )


def check_timestamp_spec(
    events: Sequence[RecordedEvent], pids: Iterable[str]
) -> list[HbViolation]:
    """All Timestamp Spec violations: pairs ``e hb f`` with
    ``not (ts:e < ts:f)``.  Empty list == spec satisfied on this trace."""
    by_uid = {e.uid: e for e in events}
    violations = []
    for a, b in happened_before(events, pids):
        e, f = by_uid[a], by_uid[b]
        if not e.timestamp < f.timestamp:
            violations.append(HbViolation(e, f))
    return violations
