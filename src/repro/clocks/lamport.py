"""Lamport logical clocks [Lamport 1978], the paper's Timestamp Spec witness.

A logical clock assigns each event a counter such that the happened-before
relation ``hb`` is respected: local successor events and matching
send/receive pairs get strictly increasing counters.  Together with the
pid tie-break of :class:`repro.clocks.timestamps.Timestamp` this yields the
total order Timestamp Spec demands.

The clock is deliberately *corruptible*: the fault model allows transient
state corruption, and the wrapper must stabilize regardless.  Use
:meth:`LamportClock.corrupt` in fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks.timestamps import Timestamp


@dataclass
class LamportClock:
    """A per-process logical clock.

    ``counter`` is the value of the *most recent* event (the paper's
    ``lc:j``); :meth:`tick` stamps a new local event, :meth:`observe` merges
    a received timestamp before stamping the receive event.
    """

    pid: str
    counter: int = 0
    _history: list[int] = field(default_factory=list, repr=False)

    def now(self) -> Timestamp:
        """Timestamp of the most current event at this process (``ts:j``)."""
        return Timestamp(self.counter, self.pid)

    def tick(self) -> Timestamp:
        """Stamp a new local event: increment and return the new timestamp."""
        self.counter += 1
        self._history.append(self.counter)
        return self.now()

    def observe(self, other: Timestamp | int) -> Timestamp:
        """Stamp a receive event: advance past the received clock value.

        ``counter := max(counter, received) + 1`` -- the standard Lamport
        update, guaranteeing ``send hb receive => ts(send) < ts(receive)``.
        """
        received = other.clock if isinstance(other, Timestamp) else int(other)
        self.counter = max(self.counter, received) + 1
        self._history.append(self.counter)
        return self.now()

    def corrupt(self, value: int) -> None:
        """Transient fault: set the counter to an arbitrary (non-negative)
        value.  History is kept for diagnosis; monotonicity may be broken,
        which is exactly what stabilization must recover from."""
        if value < 0:
            raise ValueError("clock values are non-negative")
        self.counter = value
        self._history.append(value)

    @property
    def history(self) -> tuple[int, ...]:
        """Every counter value the clock has taken, in order."""
        return tuple(self._history)

    def is_locally_monotone(self) -> bool:
        """Did the recorded history ever decrease?  (False after certain
        corruptions; the Timestamp Spec monitor uses the same check on the
        event trace.)"""
        return all(a < b for a, b in zip(self._history, self._history[1:]))
