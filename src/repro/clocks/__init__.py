"""Logical clocks and timestamps (Environment Spec: Timestamp Spec)."""

from repro.clocks.happened_before import (
    HbViolation,
    RecordedEvent,
    VectorClock,
    check_timestamp_spec,
    happened_before,
    vector_clocks_for,
)
from repro.clocks.lamport import LamportClock
from repro.clocks.timestamps import (
    Timestamp,
    bottom,
    earliest,
    is_total_order_consistent,
    zero,
)

__all__ = [
    "HbViolation",
    "LamportClock",
    "RecordedEvent",
    "Timestamp",
    "bottom",
    "VectorClock",
    "check_timestamp_spec",
    "earliest",
    "happened_before",
    "is_total_order_consistent",
    "vector_clocks_for",
    "zero",
]
