"""Graybox Stabilization (Arora, Demirbas, Kulkarni -- DSN 2001): a full
Python reproduction.

The paper shows that *stabilization* -- recovery to correct behaviour from
any transiently corrupted state -- can be added to a system knowing only its
**specification** ("graybox"), not its implementation ("whitebox"), provided
the specification is a *local everywhere specification*.  The method is
demonstrated on timestamp-based distributed mutual exclusion: one wrapper W,
designed purely from the specification Lspec, makes both Ricart-Agrawala's
and Lamport's mutual exclusion programs self-stabilizing.

Package map (bottom-up):

* :mod:`repro.core`         -- Section 2: systems, refinement, box, theorems
* :mod:`repro.dsl`          -- guarded commands (implementation language)
* :mod:`repro.clocks`       -- logical clocks, ``lt``, happened-before
* :mod:`repro.runtime`      -- asynchronous message-passing simulator
* :mod:`repro.faults`       -- the paper's fault model
* :mod:`repro.tme`          -- Sections 3-5: Lspec, TME Spec, RA, Lamport, W
* :mod:`repro.verification` -- refinement / stabilization / exploration
* :mod:`repro.analysis`     -- experiment harness and tables

Quickstart::

    from repro.tme import build_simulation, WrapperConfig, standard_fault_campaign
    from repro.verification import check_stabilization

    sim = build_simulation(
        "ra", n=3, seed=1,
        wrapper=WrapperConfig(theta=4),
        fault_hook=standard_fault_campaign(seed=7, start=100, stop=400),
    )
    trace = sim.run(3000)
    print(check_stabilization(trace).converged)  # True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
