"""Source resolution: from live function objects to AST nodes.

Guards and bodies are *closures* built by program factories
(:func:`repro.tme.ricart_agrawala.ra_program` and friends), so the lint
cannot work from file paths alone -- it starts from the function objects a
:class:`~repro.dsl.guards.GuardedAction` actually carries, finds their
defining file, and locates the matching ``def``/``lambda`` node in that
file's AST.  Whole files are parsed once and cached; resolution is memoized
per code object.

Resolution can fail (C functions, ``functools.partial``, interactively
defined code).  That is not an error here: :class:`FunctionInfo.node` is
``None`` and downstream inference reports *unknown* sets -- the sound
over-approximation the contracts require.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from functools import lru_cache
from types import FunctionType
from typing import Any

FuncNode = ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda


@dataclass
class FunctionInfo:
    """A live function paired with its source location and AST."""

    fn: FunctionType | None
    path: str
    line: int
    name: str
    node: FuncNode | None
    closure: dict[str, Any] = field(default_factory=dict)
    globals_: dict[str, Any] = field(default_factory=dict)

    @property
    def resolved(self) -> bool:
        return self.node is not None

    @property
    def params(self) -> tuple[str, ...]:
        if self.node is None:
            return ()
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        return tuple(names)

    def body_statements(self) -> list[ast.stmt]:
        if self.node is None:
            return []
        if isinstance(self.node, ast.Lambda):
            return [ast.Return(value=self.node.body)]
        return list(self.node.body)

    def resolve_name(self, name: str) -> tuple[bool, Any]:
        """Look a free name up in the closure, then globals, then builtins.

        Returns ``(found, value)`` -- ``found`` distinguishes a name bound
        to ``None`` from an unresolvable name.
        """
        if name in self.closure:
            return True, self.closure[name]
        if name in self.globals_:
            return True, self.globals_[name]
        builtins = self.globals_.get("__builtins__", {})
        if isinstance(builtins, dict):
            if name in builtins:
                return True, builtins[name]
        elif hasattr(builtins, name):
            return True, getattr(builtins, name)
        return False, None


@lru_cache(maxsize=128)
def _module_ast(path: str) -> ast.Module | None:
    try:
        with open(path, encoding="utf-8") as fh:
            return ast.parse(fh.read(), filename=path)
    except (OSError, SyntaxError):
        return None


@lru_cache(maxsize=128)
def _function_nodes(path: str) -> tuple[FuncNode, ...]:
    tree = _module_ast(path)
    if tree is None:
        return ()
    return tuple(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
    )


def _locate_node(path: str, line: int, name: str) -> FuncNode | None:
    """The def/lambda node for a code object (first line + name match)."""
    candidates = []
    for node in _function_nodes(path):
        if isinstance(node, ast.Lambda):
            if name == "<lambda>" and node.lineno == line:
                candidates.append(node)
        elif node.name == name and node.lineno == line:
            candidates.append(node)
    if len(candidates) == 1:
        return candidates[0]
    if candidates and name != "<lambda>":
        return candidates[0]
    # Several lambdas on one line are ambiguous; give up (-> unknown sets)
    # rather than guess the wrong one.
    return candidates[0] if len(candidates) == 1 else None


def _closure_vars(fn: FunctionType) -> dict[str, Any]:
    cells = fn.__closure__ or ()
    names = fn.__code__.co_freevars
    out: dict[str, Any] = {}
    for name, cell in zip(names, cells):
        try:
            out[name] = cell.cell_contents
        except ValueError:  # empty cell (still being defined)
            continue
    return out


_INFO_CACHE: dict[int, FunctionInfo] = {}


def function_info(fn: Any) -> FunctionInfo:
    """Resolve a callable into a :class:`FunctionInfo` (memoized).

    Non-Python callables resolve to an unresolved info whose location is
    best-effort (``<builtin>`` when nothing better exists).
    """
    if isinstance(fn, FunctionType):
        code = fn.__code__
        # Key on the function object itself (held strongly, so ids stay
        # unique): closure instances of one code object can capture
        # different values and must not share an info.
        cached = _INFO_CACHE.get(id(fn))
        if cached is not None and cached.fn is fn:
            return cached
        path = code.co_filename
        line = code.co_firstlineno
        name = fn.__name__
        node = _locate_node(path, line, name)
        info = FunctionInfo(
            fn=fn,
            path=path,
            line=line,
            name=name,
            node=node,
            closure=_closure_vars(fn),
            globals_=fn.__globals__,
        )
        _INFO_CACHE[id(fn)] = info
        return info
    name = getattr(fn, "__name__", repr(fn))
    try:
        path = inspect.getfile(fn)
        _source, line = inspect.getsourcelines(fn)
    except (TypeError, OSError):
        path, line = "<builtin>", 0
    return FunctionInfo(
        fn=None, path=path, line=line, name=name, node=None
    )


def clear_caches() -> None:
    """Drop all memoized source state (tests that rewrite fixtures)."""
    _INFO_CACHE.clear()
    _module_ast.cache_clear()
    _function_nodes.cache_clear()
