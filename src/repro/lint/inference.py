"""Read/write-set inference for guarded actions.

The paper's side conditions are *set-theoretic*: the wrapper's write set
must be disjoint from the implementation's variables (Lemma 6 / Theorem 8),
its read set must stay inside the published Lspec interface, and every
action must be a pure function of its :class:`~repro.dsl.guards.LocalView`.
This module infers those sets statically by abstract interpretation of the
guard/body ASTs:

* attribute and subscript access on the view parameter become *reads*;
* ``Effect({...})`` constructions (including dicts built up locally,
  ``**helper()`` spreads, and ``dict.update`` calls) become *writes*;
* calls into resolvable closure/global helpers are followed
  interprocedurally (memoized, depth-capped);
* calls into an *interface boundary* -- a callable annotated to return
  :class:`~repro.tme.interfaces.LspecView`, i.e. a published adapter -- are
  not followed: their result is interface-tainted, and attribute reads on
  it are **interface reads**, checked against ``LSPEC_VARIABLES`` by the
  interference checker.

Everything the interpreter cannot resolve makes the affected set *unknown*
(a sound over-approximation to ``everything``), with a note at the exact
source location so the finding is actionable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum
from types import BuiltinFunctionType, FunctionType, ModuleType
from typing import Any

from repro.dsl.guards import Effect, GuardedAction, Send
from repro.lint.source import FunctionInfo, function_info

META_VARS = frozenset({"_pid", "_peers", "_msg", "_sender", "_msg_clock"})

#: method names that mutate their receiver in place
MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "remove",
        "clear",
        "extend",
        "insert",
        "setdefault",
        "popitem",
        "sort",
        "reverse",
        "discard",
        "difference_update",
        "intersection_update",
        "symmetric_difference_update",
    }
)

_MAX_DEPTH = 12


def dotted_chain(node: ast.AST) -> tuple[str, ...]:
    """Flatten an ``a.b.c`` attribute chain into ``("a", "b", "c")``.

    Calls embedded in the chain are kept as a ``"()"`` marker, so
    ``Path(p).open`` flattens to ``("Path", "()", "open")`` -- enough for
    pattern matchers to recognise method calls on constructor results.
    Returns ``()`` when the chain does not bottom out in a plain name.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            parts.append("()")
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        else:
            return ()


class Taint(Enum):
    """What an abstract value may alias."""

    VIEW = "view"  # the LocalView parameter itself
    VIEWDICT = "viewdict"  # view.as_dict() -- a *copy* of all variables
    INTERFACE = "interface"  # an LspecView (adapter output)
    STATE = "state"  # a value read off the view (possibly shared)


@dataclass(frozen=True)
class Note:
    """A located remark attached to an inference result."""

    path: str
    line: int
    col: int
    kind: str  # escape | unknown-read | unknown-write | mutation | view-assign
    message: str


@dataclass
class AccessSets:
    """The inferred access sets of one function (or merged action)."""

    raw_reads: set[str] = field(default_factory=set)
    meta_reads: set[str] = field(default_factory=set)
    interface_reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    sends: bool = False
    boundary_crossed: bool = False  # view handed to a published adapter
    reads_unknown: bool = False
    writes_unknown: bool = False
    notes: list[Note] = field(default_factory=list)

    def merge(self, other: "AccessSets") -> None:
        self.raw_reads |= other.raw_reads
        self.meta_reads |= other.meta_reads
        self.interface_reads |= other.interface_reads
        self.writes |= other.writes
        self.sends = self.sends or other.sends
        self.boundary_crossed = self.boundary_crossed or other.boundary_crossed
        self.reads_unknown = self.reads_unknown or other.reads_unknown
        self.writes_unknown = self.writes_unknown or other.writes_unknown
        self.notes.extend(other.notes)

    def as_dict(self) -> dict:
        return {
            "raw_reads": sorted(self.raw_reads),
            "meta_reads": sorted(self.meta_reads),
            "interface_reads": sorted(self.interface_reads),
            "writes": sorted(self.writes) if not self.writes_unknown else None,
            "sends": self.sends,
            "boundary_crossed": self.boundary_crossed,
            "reads_unknown": self.reads_unknown,
            "writes_unknown": self.writes_unknown,
        }


_MISSING = object()

#: sentinel for "dict with statically unknown keys"
_UNKNOWN_KEYS = object()


@dataclass
class Value:
    """Abstract value: taint + (optional) resolved object / dict keys."""

    taint: Taint | None = None
    obj: Any = _MISSING
    keys: Any = None  # frozenset[str] | _UNKNOWN_KEYS | None
    const: Any = _MISSING
    is_effect: bool = False


@dataclass
class Summary:
    """Memoized result of analyzing one function under one taint binding."""

    sets: AccessSets
    return_taint: Taint | None = None
    return_keys: Any = None  # frozenset | _UNKNOWN_KEYS | None
    returns_effect: bool = False
    visited: list[FunctionInfo] = field(default_factory=list)


class Engine:
    """Shared memo/state for one lint run."""

    def __init__(self) -> None:
        self._memo: dict[tuple[int, tuple], Summary] = {}
        self._in_progress: set[tuple[int, tuple]] = set()
        self._pins: list[Any] = []  # keep fns alive so ids stay unique

    def analyze(
        self,
        info: FunctionInfo,
        param_taints: tuple[Taint | None, ...],
        depth: int = 0,
    ) -> Summary:
        if info.fn is None or not info.resolved:
            sets = AccessSets(reads_unknown=True, writes_unknown=True)
            sets.notes.append(
                Note(
                    info.path,
                    info.line or 1,
                    0,
                    "escape",
                    f"cannot resolve source of {info.name!r}; "
                    "read/write sets are unknown",
                )
            )
            return Summary(sets=sets, visited=[info])
        key = (id(info.fn), param_taints)
        self._pins.append(info.fn)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress or depth > _MAX_DEPTH:
            sets = AccessSets(reads_unknown=True, writes_unknown=True)
            sets.notes.append(
                Note(
                    info.path,
                    info.line,
                    0,
                    "escape",
                    f"recursion while analyzing {info.name!r}; "
                    "sets over-approximated to unknown",
                )
            )
            return Summary(sets=sets, visited=[info])
        self._in_progress.add(key)
        try:
            analyzer = _Analyzer(self, info, param_taints, depth)
            summary = analyzer.run()
        finally:
            self._in_progress.discard(key)
        self._memo[key] = summary
        return summary


def _is_interface_boundary(obj: Any) -> bool:
    """Is ``obj`` a published adapter (returns the Lspec interface)?

    The convention is structural: any callable whose return annotation is
    ``LspecView`` is an abstraction-function boundary.  Reads *behind* it
    belong to the implementation's conformance claim, not to the caller.
    """
    annotations = getattr(obj, "__annotations__", None) or {}
    ret = annotations.get("return")
    if ret is None:
        return False
    name = getattr(ret, "__name__", None) or str(ret)
    return "LspecView" in name


def _const_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


#: order-insensitive / set-producing consumers (see rules.DET-ORDER too)
_ORDER_SAFE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "all", "any", "set", "frozenset"}
)


class _Analyzer(ast.NodeVisitor):
    """Abstract interpreter over one function body."""

    def __init__(
        self,
        engine: Engine,
        info: FunctionInfo,
        param_taints: tuple[Taint | None, ...],
        depth: int,
    ) -> None:
        self.engine = engine
        self.info = info
        self.depth = depth
        self.sets = AccessSets()
        self.env: dict[str, Value] = {}
        self.return_taint: Taint | None = None
        self.return_keys: Any = None
        self.returns_effect = False
        self.visited: list[FunctionInfo] = [info]
        params = info.params
        for i, name in enumerate(params):
            taint = param_taints[i] if i < len(param_taints) else None
            self.env[name] = Value(taint=taint)

    # -- driving --------------------------------------------------------------

    def run(self) -> Summary:
        for stmt in self.info.body_statements():
            self.exec_stmt(stmt)
        return Summary(
            sets=self.sets,
            return_taint=self.return_taint,
            return_keys=self.return_keys,
            returns_effect=self.returns_effect,
            visited=self.visited,
        )

    def note(self, node: ast.AST, kind: str, message: str) -> None:
        self.sets.notes.append(
            Note(
                self.info.path,
                getattr(node, "lineno", self.info.line),
                getattr(node, "col_offset", 0),
                kind,
                message,
            )
        )

    # -- statements -----------------------------------------------------------

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            self._exec_return(stmt)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            value = self.eval(stmt.value) if stmt.value is not None else Value()
            self._assign(stmt.target, value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                old = self.env.get(stmt.target.id, Value())
                if old.taint in (Taint.VIEW, Taint.VIEWDICT, Taint.STATE):
                    # x += ... keeps aliasing for containers; over-approximate
                    self.env[stmt.target.id] = Value(taint=old.taint)
                else:
                    self.env[stmt.target.id] = Value()
            else:
                self._assign(stmt.target, Value(), stmt)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            for s in stmt.body + stmt.orelse:
                self.exec_stmt(s)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self.eval(stmt.iter)
            element = Value()
            if iter_value.taint is Taint.VIEWDICT:
                self.sets.reads_unknown = True
                self.note(
                    stmt.iter,
                    "unknown-read",
                    "iteration over view.as_dict() reads every variable",
                )
            self._assign(stmt.target, element, stmt)
            for s in stmt.body + stmt.orelse:
                self.exec_stmt(s)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            for s in stmt.body + stmt.orelse:
                self.exec_stmt(s)
        elif isinstance(stmt, ast.Try):
            for s in stmt.body + stmt.orelse + stmt.finalbody:
                self.exec_stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self.exec_stmt(s)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr)
            for s in stmt.body:
                self.exec_stmt(s)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    base = self.eval(target.value)
                    if base.taint is Taint.STATE:
                        self.note(
                            stmt,
                            "mutation",
                            "del on a value read from the view mutates "
                            "shared state in place",
                        )
        # FunctionDef / ClassDef / Import / pass / break / continue: nothing
        # flows through them that the sets care about (a nested def is only
        # analyzed if it is called, at which point name resolution fails
        # soundly -> unknown).

    def _exec_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        value = self.eval(stmt.value)
        if value.taint is not None:
            self.return_taint = value.taint
        if value.keys is not None:
            if self.return_keys is None:
                self.return_keys = value.keys
            elif (
                self.return_keys is not _UNKNOWN_KEYS
                and value.keys is not _UNKNOWN_KEYS
            ):
                self.return_keys = frozenset(self.return_keys) | value.keys
            else:
                self.return_keys = _UNKNOWN_KEYS
        if value.is_effect:
            self.returns_effect = True

    def _assign(self, target: ast.expr, value: Value, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, Value(), stmt)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            if base.taint in (Taint.VIEW, Taint.INTERFACE):
                self.note(
                    target,
                    "view-assign",
                    "assignment into the view; actions must return updates "
                    "in an Effect",
                )
            elif base.taint is Taint.STATE:
                self.note(
                    target,
                    "mutation",
                    "subscript assignment on a value read from the view "
                    "mutates shared state in place",
                )
            elif isinstance(target.value, ast.Name):
                # dict key tracking: updates["x"] = ...
                slot = self.env.get(target.value.id)
                if slot is not None and slot.keys is not None:
                    key = _const_str(target.slice)
                    if key is None:
                        slot.keys = _UNKNOWN_KEYS
                    elif slot.keys is not _UNKNOWN_KEYS:
                        slot.keys = frozenset(slot.keys) | {key}
            self.eval(target.slice)
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value)
            if base.taint in (Taint.VIEW, Taint.INTERFACE):
                self.note(
                    target,
                    "view-assign",
                    "attribute assignment on the view; actions must return "
                    "updates in an Effect",
                )
            elif base.taint is Taint.STATE:
                self.note(
                    target,
                    "mutation",
                    "attribute assignment on a value read from the view "
                    "mutates shared state in place",
                )
        elif isinstance(target, ast.Starred):
            self._assign(target.value, Value(), stmt)

    # -- reads ----------------------------------------------------------------

    def _record_view_read(self, name: str, node: ast.AST) -> Value:
        if name in META_VARS or name.startswith("_"):
            self.sets.meta_reads.add(name)
        else:
            self.sets.raw_reads.add(name)
        return Value(taint=Taint.STATE)

    def _record_interface_read(self, name: str, node: ast.AST) -> Value:
        self.sets.interface_reads.add(name)
        return Value(taint=Taint.STATE)

    # -- expressions ----------------------------------------------------------

    def eval(self, node: ast.expr | None) -> Value:
        if node is None:
            return Value()
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # default: evaluate children for their reads
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return Value()

    def _eval_Constant(self, node: ast.Constant) -> Value:
        return Value(const=node.value)

    def _eval_Name(self, node: ast.Name) -> Value:
        if node.id in self.env:
            return self.env[node.id]
        found, obj = self.info.resolve_name(node.id)
        if found:
            return Value(obj=obj)
        return Value()

    def _eval_Attribute(self, node: ast.Attribute) -> Value:
        base = self.eval(node.value)
        return self._attribute_on(base, node.attr, node)

    def _attribute_on(self, base: Value, attr: str, node: ast.AST) -> Value:
        if base.taint is Taint.VIEW:
            if attr == "as_dict":
                return Value(obj=("method", Taint.VIEW, "as_dict"))
            return self._record_view_read(attr, node)
        if base.taint is Taint.VIEWDICT:
            return Value(obj=("method", Taint.VIEWDICT, attr))
        if base.taint is Taint.INTERFACE:
            if attr in ("get", "items", "keys", "values", "copy"):
                return Value(obj=("method", Taint.INTERFACE, attr))
            return self._record_interface_read(attr, node)
        if base.taint is Taint.STATE:
            return Value(obj=("method", Taint.STATE, attr))
        if base.obj is not _MISSING and isinstance(
            base.obj, (ModuleType, type, FunctionType, BuiltinFunctionType)
        ):
            try:
                resolved = getattr(base.obj, attr, _MISSING)
            except Exception:
                resolved = _MISSING
            if resolved is not _MISSING:
                return Value(obj=resolved)
        return Value()

    def _eval_Subscript(self, node: ast.Subscript) -> Value:
        base = self.eval(node.value)
        key = _const_str(node.slice)
        if base.taint in (Taint.VIEW, Taint.VIEWDICT):
            if key is None:
                self.sets.reads_unknown = True
                self.note(
                    node,
                    "unknown-read",
                    "subscript on the view with a non-constant key; "
                    "read set is unknown",
                )
                return Value(taint=Taint.STATE)
            return self._record_view_read(key, node)
        if base.taint is Taint.INTERFACE:
            if key is None:
                self.sets.reads_unknown = True
                self.note(
                    node,
                    "unknown-read",
                    "subscript on the Lspec view with a non-constant key",
                )
                return Value(taint=Taint.STATE)
            return self._record_interface_read(key, node)
        self.eval(node.slice)
        if base.taint is Taint.STATE:
            return Value(taint=Taint.STATE)
        return Value()

    def _eval_Compare(self, node: ast.Compare) -> Value:
        left = self.eval(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            right = self.eval(comparator)
            if isinstance(op, (ast.In, ast.NotIn)) and right.taint in (
                Taint.VIEW,
                Taint.VIEWDICT,
                Taint.INTERFACE,
            ):
                key = left.const if isinstance(left.const, str) else None
                if key is None:
                    self.sets.reads_unknown = True
                    self.note(
                        node,
                        "unknown-read",
                        "membership test on the view with a non-constant key",
                    )
                elif right.taint is Taint.INTERFACE:
                    self._record_interface_read(key, node)
                else:
                    self._record_view_read(key, node)
            left = right
        return Value()

    def _eval_BoolOp(self, node: ast.BoolOp) -> Value:
        taint = None
        for value in node.values:
            v = self.eval(value)
            taint = taint or v.taint
        return Value(taint=taint)

    def _eval_IfExp(self, node: ast.IfExp) -> Value:
        self.eval(node.test)
        a = self.eval(node.body)
        b = self.eval(node.orelse)
        return Value(
            taint=a.taint or b.taint,
            keys=a.keys if a.keys is not None else b.keys,
            is_effect=a.is_effect or b.is_effect,
        )

    def _eval_Dict(self, node: ast.Dict) -> Value:
        keys: Any = frozenset()
        for key_node, value_node in zip(node.keys, node.values):
            value = self.eval(value_node)
            if key_node is None:  # **spread
                spread_keys = value.keys
                if spread_keys is None or spread_keys is _UNKNOWN_KEYS:
                    keys = _UNKNOWN_KEYS
                    if value.taint in (Taint.VIEW, Taint.VIEWDICT):
                        pass  # spreading the whole view: handled by caller
                    self.note(
                        value_node,
                        "unknown-write",
                        "dict spread with statically unknown keys",
                    )
                elif keys is not _UNKNOWN_KEYS:
                    keys = frozenset(keys) | spread_keys
            else:
                key = _const_str(key_node)
                if key is None:
                    self.eval(key_node)
                    keys = _UNKNOWN_KEYS
                    self.note(
                        key_node,
                        "unknown-write",
                        "dict literal with a non-constant key",
                    )
                elif keys is not _UNKNOWN_KEYS:
                    keys = frozenset(keys) | {key}
        return Value(keys=keys)

    def _eval_Lambda(self, node: ast.Lambda) -> Value:
        # A lambda closes over our locals: analyze its body in a child env
        # with its own params unbound.
        saved = dict(self.env)
        for arg in node.args.posonlyargs + node.args.args:
            self.env[arg.arg] = Value()
        self.eval(node.body)
        self.env = saved
        return Value()

    def _eval_comprehension(self, node: ast.expr, generators, exprs) -> Value:
        saved = dict(self.env)
        for gen in generators:
            iter_value = self.eval(gen.iter)
            if iter_value.taint is Taint.VIEWDICT:
                self.sets.reads_unknown = True
                self.note(
                    gen.iter,
                    "unknown-read",
                    "iteration over view.as_dict() reads every variable",
                )
            self._assign(gen.target, Value(), node)  # type: ignore[arg-type]
            for cond in gen.ifs:
                self.eval(cond)
        for expr in exprs:
            if expr is not None:
                self.eval(expr)
        self.env = saved
        return Value()

    def _eval_ListComp(self, node: ast.ListComp) -> Value:
        return self._eval_comprehension(node, node.generators, [node.elt])

    def _eval_SetComp(self, node: ast.SetComp) -> Value:
        return self._eval_comprehension(node, node.generators, [node.elt])

    def _eval_GeneratorExp(self, node: ast.GeneratorExp) -> Value:
        return self._eval_comprehension(node, node.generators, [node.elt])

    def _eval_DictComp(self, node: ast.DictComp) -> Value:
        self._eval_comprehension(node, node.generators, [node.key, node.value])
        return Value(keys=_UNKNOWN_KEYS)

    # -- calls ----------------------------------------------------------------

    def _eval_Call(self, node: ast.Call) -> Value:
        if isinstance(node.func, ast.Attribute):
            return self._call_attribute(node)
        func = self.eval(node.func)
        return self._dispatch_call(node, func)

    def _call_attribute(self, node: ast.Call) -> Value:
        assert isinstance(node.func, ast.Attribute)
        base_node = node.func.value
        attr = node.func.attr
        base = self.eval(base_node)

        # method on a tracked local dict: updates.update({...})
        if (
            isinstance(base_node, ast.Name)
            and base.taint is None
            and base.keys is not None
        ):
            slot = self.env.get(base_node.id)
            if attr == "update" and slot is not None:
                added = self._dict_keys_of_arg(node.args[0]) if node.args else (
                    frozenset()
                )
                for kw in node.keywords:
                    if kw.arg is None:
                        extra = self._dict_keys_of_arg(kw.value)
                        added = (
                            _UNKNOWN_KEYS
                            if added is _UNKNOWN_KEYS or extra is _UNKNOWN_KEYS
                            else frozenset(added) | extra
                        )
                    else:
                        if added is not _UNKNOWN_KEYS:
                            added = frozenset(added) | {kw.arg}
                        self.eval(kw.value)
                if added is _UNKNOWN_KEYS or slot.keys is _UNKNOWN_KEYS:
                    slot.keys = _UNKNOWN_KEYS
                    self.note(
                        node,
                        "unknown-write",
                        "dict.update with statically unknown keys",
                    )
                else:
                    slot.keys = frozenset(slot.keys) | added
                return Value()

        method = self._attribute_on(base, attr, node.func)
        return self._dispatch_call(node, method, receiver=base, attr=attr)

    def _dict_keys_of_arg(self, node: ast.expr) -> Any:
        """Statically known key set of a dict-valued argument."""
        value = self.eval(node)
        if value.keys is not None:
            return value.keys
        return _UNKNOWN_KEYS

    def _eval_args(self, node: ast.Call) -> list[Value]:
        values = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                values.append(self.eval(arg.value))
            else:
                values.append(self.eval(arg))
        for kw in node.keywords:
            values.append(self.eval(kw.value))
        return values

    def _dispatch_call(
        self,
        node: ast.Call,
        func: Value,
        receiver: Value | None = None,
        attr: str | None = None,
    ) -> Value:
        # -- view/interface method calls -----------------------------------
        if (
            isinstance(func.obj, tuple)
            and len(func.obj) == 3
            and func.obj[0] == "method"
        ):
            _tag, taint, name = func.obj
            if taint is Taint.VIEW and name == "as_dict":
                self._eval_args(node)
                return Value(taint=Taint.VIEWDICT)
            if taint is Taint.VIEWDICT:
                if name == "get" and node.args:
                    key = _const_str(node.args[0])
                    for extra in node.args[1:]:
                        self.eval(extra)
                    if key is None:
                        self.sets.reads_unknown = True
                        self.note(
                            node,
                            "unknown-read",
                            "dict.get on the view copy with a non-constant "
                            "key",
                        )
                        return Value(taint=Taint.STATE)
                    return self._record_view_read(key, node)
                if name in ("items", "keys", "values"):
                    self.sets.reads_unknown = True
                    self.note(
                        node,
                        "unknown-read",
                        f"view.as_dict().{name}() reads every variable",
                    )
                    return Value()
                self._eval_args(node)
                return Value()
            if taint is Taint.INTERFACE:
                if name == "get" and node.args:
                    key = _const_str(node.args[0])
                    for extra in node.args[1:]:
                        self.eval(extra)
                    if key is None:
                        self.sets.reads_unknown = True
                        self.note(
                            node,
                            "unknown-read",
                            "Lspec view read with a non-constant key",
                        )
                        return Value(taint=Taint.STATE)
                    return self._record_interface_read(key, node)
                if name in ("items", "keys", "values"):
                    # the whole interface: every Lspec variable is read
                    from repro.tme.interfaces import LSPEC_VARIABLES

                    self.sets.interface_reads.update(LSPEC_VARIABLES)
                    self._eval_args(node)
                    return Value(taint=Taint.STATE)
                self._eval_args(node)
                return Value()
            if taint is Taint.STATE:
                if name in MUTATORS:
                    self.note(
                        node,
                        "mutation",
                        f".{name}() on a value read from the view mutates "
                        "shared state in place",
                    )
                self._eval_args(node)
                return Value()

        # -- Effect / Send construction ------------------------------------
        if func.obj is Effect:
            self._collect_effect_writes(node)
            return Value(is_effect=True)
        if func.obj is getattr(Effect, "none", None):
            self._eval_args(node)
            return Value(is_effect=True)
        if func.obj is Send:
            self._eval_args(node)
            self.sets.sends = True
            return Value()

        # -- interface boundary (published adapters) -------------------------
        if func.obj is not _MISSING and _is_interface_boundary(func.obj):
            args = self._eval_args(node)
            if any(
                v.taint in (Taint.VIEW, Taint.VIEWDICT, Taint.STATE)
                for v in args
            ):
                self.sets.boundary_crossed = True
            return Value(taint=Taint.INTERFACE)

        # -- LspecView class -------------------------------------------------
        if func.obj is not _MISSING and getattr(
            func.obj, "__name__", ""
        ) == "LspecView" and isinstance(func.obj, type):
            self._eval_args(node)
            return Value(taint=Taint.INTERFACE)

        # -- plain python helpers: follow the call ---------------------------
        if isinstance(func.obj, FunctionType):
            arg_taints: list[Taint | None] = []
            tainted = False
            for arg in node.args:
                if isinstance(arg, ast.Starred):
                    value = self.eval(arg.value)
                    if value.taint is not None:
                        tainted = True
                    arg_taints = []  # positions unknowable past *args
                    break
                value = self.eval(arg)
                arg_taints.append(value.taint)
                if value.taint is not None:
                    tainted = True
            kw_tainted = False
            for kw in node.keywords:
                value = self.eval(kw.value)
                if value.taint is not None:
                    kw_tainted = True
            sub_info = function_info(func.obj)
            if kw_tainted:
                # keyword binding is not modeled; a tainted keyword arg
                # makes the callee's effect on our sets unknown
                self.sets.reads_unknown = True
                self.note(
                    node,
                    "escape",
                    "view-derived value passed as a keyword argument; "
                    "inference does not follow keyword bindings",
                )
                return Value()
            sub = self.engine.analyze(
                sub_info, tuple(arg_taints), self.depth + 1
            )
            self.sets.merge(sub.sets)
            self.visited.extend(sub.visited)
            return Value(
                taint=sub.return_taint,
                keys=sub.return_keys,
                is_effect=sub.returns_effect,
            )

        # -- builtins and everything else ------------------------------------
        if func.obj is dict and isinstance(func.obj, type):
            keys: Any = frozenset()
            for arg in node.args:
                value = self.eval(arg)
                if value.keys is not None and value.keys is not _UNKNOWN_KEYS:
                    keys = frozenset(keys) | value.keys
                else:
                    keys = _UNKNOWN_KEYS
            for kw in node.keywords:
                self.eval(kw.value)
                if kw.arg is None:
                    keys = _UNKNOWN_KEYS
                elif keys is not _UNKNOWN_KEYS:
                    keys = frozenset(keys) | {kw.arg}
            return Value(keys=keys)

        args = self._eval_args(node)
        name = getattr(func.obj, "__name__", None)
        if any(v.taint in (Taint.VIEW, Taint.VIEWDICT) for v in args):
            if name in _ORDER_SAFE_CALLS:
                pass  # len(view) style: no variable content escapes
            else:
                self.sets.reads_unknown = True
                self.note(
                    node,
                    "escape",
                    "the view escapes into a call that cannot be analyzed; "
                    "read set is unknown",
                )
        return Value()

    def _collect_effect_writes(self, node: ast.Call) -> None:
        updates_node: ast.expr | None = None
        if node.args:
            updates_node = node.args[0]
        for kw in node.keywords:
            if kw.arg == "updates":
                updates_node = kw.value
        # evaluate everything for reads/sends first
        for arg in node.args[1:]:
            value = self.eval(arg)
        for kw in node.keywords:
            if kw.arg != "updates":
                self.eval(kw.value)
        if len(node.args) >= 2 or any(k.arg == "sends" for k in node.keywords):
            self.sets.sends = True
        if updates_node is None:
            return  # Effect() -- empty updates
        value = self.eval(updates_node)
        keys = value.keys
        if keys is None or keys is _UNKNOWN_KEYS:
            self.sets.writes_unknown = True
            self.note(
                updates_node,
                "unknown-write",
                "Effect updates with statically unknown keys; write set "
                "is unknown",
            )
        else:
            self.sets.writes |= set(keys)


# ---------------------------------------------------------------------------
# Action- and program-level entry points
# ---------------------------------------------------------------------------


@dataclass
class ActionAnalysis:
    """Inference result for one guarded action (guard + body merged)."""

    action: GuardedAction
    guard_info: FunctionInfo
    body_info: FunctionInfo
    guard: Summary
    body: Summary

    @property
    def sets(self) -> AccessSets:
        merged = AccessSets()
        merged.merge(self.guard.sets)
        merged.merge(self.body.sets)
        return merged

    @property
    def guard_writes(self) -> set[str]:
        return set(self.guard.sets.writes)

    def visited_infos(self) -> list[FunctionInfo]:
        seen: dict[int, FunctionInfo] = {}
        for info in self.guard.visited + self.body.visited:
            seen.setdefault(id(info), info)
        return list(seen.values())


def analyze_action(
    action: GuardedAction, engine: Engine | None = None
) -> ActionAnalysis:
    """Infer the read/write sets of one guarded action."""
    engine = engine or Engine()
    guard_info = function_info(action.guard)
    body_info = function_info(action.body)
    guard = engine.analyze(guard_info, (Taint.VIEW,))
    body = engine.analyze(body_info, (Taint.VIEW,))
    analysis = ActionAnalysis(
        action=action,
        guard_info=guard_info,
        body_info=body_info,
        guard=guard,
        body=body,
    )
    # A body whose return value is not a recognizable Effect defeats write
    # inference even if no Effect(...) call was seen.  (Summaries are
    # memoized; only mark once.)
    if (
        body_info.resolved
        and not body.returns_effect
        and not body.sets.writes_unknown
    ):
        body.sets.writes_unknown = True
        body.sets.notes.append(
            Note(
                body_info.path,
                body_info.line,
                0,
                "unknown-write",
                f"body {body_info.name!r} does not visibly return an "
                "Effect; write set is unknown",
            )
        )
    return analysis
