"""repro.lint: static verification of the paper's action contracts.

The runtime and the campaign engine (PRs 1-3) *assume* three properties of
every guarded action, and the composition theorems add a fourth:

1. **Purity** -- guards are predicates, bodies return Effects, nothing
   mutates shared state in place (``Simulator.fork()`` is copy-on-write);
2. **Determinism** -- same view, same effect: no wall clock, no unseeded
   randomness, no hash-order iteration (campaign replay + shrinking);
3. **Declared state** -- actions touch only variables in ``initial_vars``
   (the fault model corrupts *declared* state; snapshots are shape-stable);
4. **Graybox non-interference** -- the wrapper W writes only its own
   variables and reads only the published Lspec interface (Lemma 6,
   Theorems 4/5/8).

This package checks all four *statically*, by abstract interpretation of
the action functions' ASTs (sound over-approximation: when inference cannot
bound an access set it says *unknown* and the proof fails loudly), and
cross-checks the inference *dynamically* by running instrumented
simulations whose observed access sets must stay inside the static ones.

A second pass, :mod:`repro.lint.aio` (``--package``/``--all``), applies
the same contract-first treatment to the *concurrent* layers that never
flow through a ``ProcessProgram``: asyncio shared-state races across
await points, blocking calls reachable from coroutines, ambient
nondeterminism, nondeterminism leaking into recorded traces, and live
resources crossing the fork boundary -- with its own instrumented
cluster run as the dynamic cross-check.

Entry point: ``python -m repro lint [target ...]`` or :func:`run_lint`.
"""

from repro.lint.aio import (
    DEFAULT_PACKAGES,
    PACKAGE_RULES,
    PackageLintResult,
    lint_package,
)
from repro.lint.dynamic import (
    ActionObservation,
    RecordingView,
    cross_check,
    instrument_program,
)
from repro.lint.findings import Finding, LintReport, Severity
from repro.lint.inference import (
    AccessSets,
    ActionAnalysis,
    Engine,
    analyze_action,
)
from repro.lint.interference import (
    InterferenceProof,
    check_wrapper_interference,
    tme_interference_proof,
)
from repro.lint.rules import Rule, default_rules, register_rule
from repro.lint.runner import run_lint, tme_catalog
from repro.lint.source import clear_caches

__all__ = [
    "AccessSets",
    "ActionAnalysis",
    "ActionObservation",
    "DEFAULT_PACKAGES",
    "Engine",
    "Finding",
    "InterferenceProof",
    "LintReport",
    "PACKAGE_RULES",
    "PackageLintResult",
    "RecordingView",
    "Rule",
    "Severity",
    "analyze_action",
    "check_wrapper_interference",
    "clear_caches",
    "cross_check",
    "default_rules",
    "instrument_program",
    "lint_package",
    "register_rule",
    "run_lint",
    "tme_catalog",
    "tme_interference_proof",
]
