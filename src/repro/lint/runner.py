"""The lint driver: resolve targets, lint programs, assemble the report.

A *target* names a set of :class:`~repro.dsl.program.ProcessProgram`\\ s to
verify:

* ``tme`` (or the package path ``src/repro/tme``) -- the built-in catalog:
  all four TME implementations plus their graybox wrappers, the
  non-interference proofs for each pairing, and (with ``dynamic=True``)
  the instrumented cross-check runs;
* ``some.module`` or ``path/to/file.py`` -- every module-level
  :class:`ProcessProgram` (or the explicit ``LINT_PROGRAMS`` hook);
* ``some.module:factory`` -- one attribute: a program, a mapping/iterable
  of programs, or a zero-argument callable returning either.

Programs are linted from their *live* action objects -- closures and all --
because that is what actually executes; a file-level lint would miss the
captured configuration the paper's wrappers are built from.
"""

from __future__ import annotations

import importlib
import importlib.util
from collections.abc import Iterable, Mapping
from pathlib import Path
from types import ModuleType

from repro.dsl.program import ProcessProgram
from repro.lint.findings import Finding, LintReport, Severity
from repro.lint.inference import ActionAnalysis, Engine, analyze_action
from repro.lint.interference import tme_interference_proof
from repro.lint.rules import (
    action_findings,
    filter_suppressed,
    program_findings,
)

#: Algorithms covered by the ``tme`` catalog (mirrors scenarios.ALGORITHMS,
#: imported lazily to keep the lint importable without the TME package).
TME_ALGORITHMS = ("ra", "ra-count", "lamport", "token")


# ---------------------------------------------------------------------------
# target resolution
# ---------------------------------------------------------------------------


def is_tme_target(target: str) -> bool:
    """Does ``target`` name the built-in TME catalog?"""
    if target in ("tme", "repro.tme"):
        return True
    path = Path(target)
    return path.name == "tme" and "repro" in path.parts


def _load_module(spec: str) -> ModuleType:
    if spec.endswith(".py") or "/" in spec:
        path = Path(spec)
        module_spec = importlib.util.spec_from_file_location(path.stem, path)
        if module_spec is None or module_spec.loader is None:
            raise ValueError(f"cannot load lint target {spec!r}")
        module = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
        return module
    try:
        return importlib.import_module(spec)
    except ImportError as exc:
        raise ValueError(f"cannot import lint target {spec!r}: {exc}") from exc


def _programs_from(value: object) -> list[ProcessProgram]:
    if isinstance(value, ProcessProgram):
        return [value]
    if isinstance(value, Mapping):
        return [p for p in value.values() if isinstance(p, ProcessProgram)]
    if isinstance(value, (list, tuple)):
        out: list[ProcessProgram] = []
        for item in value:
            out.extend(_programs_from(item))
        return out
    if callable(value):
        return _programs_from(value())
    return []


def collect_programs(target: str) -> list[ProcessProgram]:
    """Resolve one module/file target into its programs."""
    spec, _, attr = target.partition(":")
    module = _load_module(spec)
    if attr:
        if not hasattr(module, attr):
            raise ValueError(f"{spec!r} has no attribute {attr!r}")
        programs = _programs_from(getattr(module, attr))
    elif hasattr(module, "LINT_PROGRAMS"):
        programs = _programs_from(module.LINT_PROGRAMS)
    else:
        programs = [
            value
            for value in vars(module).values()
            if isinstance(value, ProcessProgram)
        ]
    if not programs:
        raise ValueError(f"lint target {target!r} yields no programs")
    return programs


def tme_catalog(n: int = 3, theta: int = 4) -> list[ProcessProgram]:
    """The built-in catalog: each implementation plus its graybox wrapper."""
    from repro.tme.interfaces import adapter_for
    from repro.tme.scenarios import tme_programs
    from repro.tme.wrapper import WrapperConfig, wrapper_program

    config = WrapperConfig(theta=theta)
    programs: list[ProcessProgram] = []
    for algorithm in TME_ALGORITHMS:
        system = tme_programs(algorithm, n)
        pid = sorted(system)[0]
        implementation = system[pid]
        programs.append(implementation)
        programs.append(
            wrapper_program(
                pid,
                tuple(sorted(system)),
                adapter_for(implementation.name),
                config,
            )
        )
    return programs


# ---------------------------------------------------------------------------
# linting
# ---------------------------------------------------------------------------


def lint_program(
    program: ProcessProgram,
    engine: Engine,
    report: LintReport,
) -> list[ActionAnalysis]:
    """Lint one program's actions into ``report``; returns the analyses."""
    analyses: list[ActionAnalysis] = []
    findings: list[Finding] = []
    def_lines: dict[tuple[str, str], int] = {}
    for action in program.actions + program.receive_actions:
        analysis = analyze_action(action, engine)
        analyses.append(analysis)
        report.checked_actions += 1
        findings.extend(action_findings(analysis))
        for info in analysis.visited_infos():
            def_lines[(info.path, info.name)] = info.line
    findings.extend(
        program_findings(
            analyses, frozenset(program.initial_vars), program.name
        )
    )
    report.checked_programs += 1
    report.extend(filter_suppressed(findings, def_lines))
    return analyses


def run_lint(
    targets: Iterable[str] = (),
    n: int = 3,
    theta: int = 4,
    dynamic: bool = False,
    steps: int = 300,
    seed: int = 0,
    engine: Engine | None = None,
    packages: Iterable[str] = (),
) -> LintReport:
    """Lint every target; TME targets also get proofs and cross-checks.

    ``targets`` select DSL programs (the original pass); ``packages``
    select the asyncio pass over whole packages (``repro.lint.aio``).
    With neither given, the TME catalog is linted, as before.
    """
    engine = engine or Engine()
    report = LintReport()
    targets = tuple(targets)
    packages = tuple(packages)
    if not targets and not packages:
        targets = ("tme",)

    want_tme = any(is_tme_target(t) for t in targets)
    programs: list[ProcessProgram] = []
    if want_tme:
        programs.extend(tme_catalog(n=n, theta=theta))
    for target in targets:
        if not is_tme_target(target):
            programs.extend(collect_programs(target))

    for program in programs:
        lint_program(program, engine, report)

    if want_tme:
        for algorithm in TME_ALGORITHMS:
            proof = tme_interference_proof(
                algorithm, n=n, theta=theta, engine=engine
            )
            report.proofs.append(proof.as_dict())
            report.extend(filter_suppressed(proof.findings))
        if dynamic:
            from repro.lint.dynamic import cross_check

            for algorithm in TME_ALGORITHMS:
                result = cross_check(
                    algorithm,
                    n=n,
                    steps=steps,
                    seed=seed,
                    theta=theta,
                    engine=engine,
                )
                report.cross_checks.append(result)
                for name in result["violations"]:
                    report.findings.append(
                        Finding(
                            path="<dynamic-cross-check>",
                            line=0,
                            col=0,
                            rule="DYN-CONTAIN",
                            severity=Severity.ERROR,
                            message=(
                                f"observed access set of action {name!r} in "
                                f"{result['program']} escapes the inferred "
                                "static sets; the inference is unsound for "
                                "this action"
                            ),
                            action=name,
                        )
                    )

    for package_name in packages:
        from repro.lint.aio import lint_package

        result = lint_package(package_name)
        report.checked_files += len(result.files)
        report.extend(result.findings)
    if dynamic and any(p.split("/")[-1] in ("repro.service", "service") for p in packages):
        from repro.lint.aio.dynamic import cross_check_service

        result = cross_check_service(n=n, ops=3)
        report.cross_checks.append(result)
        for reason in result["violations"]:
            report.findings.append(
                Finding(
                    path="<dynamic-cross-check>",
                    line=0,
                    col=0,
                    rule="DYN-CONTAIN",
                    severity=Severity.ERROR,
                    message=(
                        f"asyncio cross-check of {result['program']}: "
                        f"{reason}; the concurrency inference is unsound "
                        "for this run"
                    ),
                )
            )
    return report


__all__ = [
    "TME_ALGORITHMS",
    "collect_programs",
    "is_tme_target",
    "lint_program",
    "run_lint",
    "tme_catalog",
]
