"""Pluggable lint rules over guard/body functions.

Two kinds of rule run over every function reachable from an action:

* **Syntactic rules** subclass :class:`Rule` and inspect the function's AST
  (with live name resolution through its closure/globals, so ``random.random``
  is distinguished from ``rng.random`` on a seeded instance).  They catch
  determinism hazards -- wall-clock reads, ambient entropy, memory-address
  identity, iteration in hash order -- and purity hazards: exactly the
  properties campaign replay (PR 3) and ``Simulator.fork()`` depend on.

* **Inference-backed checks** (:func:`findings_from_notes`,
  :func:`action_findings`, :func:`program_findings`) convert the notes and
  sets produced by :mod:`repro.lint.inference` into findings: in-place
  mutation of shared state, guards that construct effects, writes to
  undeclared variables.

Every finding honours ``# repro: lint-ok[RULE]`` suppressions at its own
line or the function's ``def`` line (:mod:`repro.lint.findings`).

Rule catalogue
==============

=================  ========  ====================================================
DET-TIME           error     wall-clock access (``time.*``, ``datetime.now``)
DET-RANDOM         error     module-level (unseeded) ``random.*``
DET-ENTROPY        error     ``os.urandom`` / ``uuid`` / ``secrets``
DET-ID             error     ``id()`` -- memory addresses differ across processes
DET-HASH           warning   builtin ``hash()`` -- salted for ``str`` by default
DET-ORDER          warn/err  iteration over sets / dict views in an order-
                             sensitive position (wrap in ``sorted(...)``)
PURITY-IO          warning   file/system calls from a guard or body
PURITY-GLOBAL      error     ``global``/``nonlocal`` rebinding
MUT-VIEW           error     assignment into the :class:`LocalView`
MUT-SHARED         error     in-place mutation of a value read from the view
CAPTURE-MUTABLE    warning   closure over a mutable container
GUARD-EFFECT       error     a guard that constructs ``Effect``/``Send``
INF-UNKNOWN        warning   read/write inference gave up at this site
WRITE-UNDECLARED   error     effect writes a variable absent from initial_vars
READ-UNDECLARED    warning   reads a variable that is never declared
GRAY-WRITE         error     wrapper writes an implementation variable
GRAY-READ          error     wrapper reads outside ``w_*``/Lspec interface
GRAY-IFACE         error     interface read outside ``LSPEC_VARIABLES``
GRAY-UNKNOWN       error     non-interference not statically provable
=================  ========  ====================================================

The asyncio pass (``repro.lint.aio``, ``--package``/``--all``) adds a
second catalogue -- AIO-RACE, AIO-BLOCK, DET-WALLCLOCK, DET-GLOBALRNG,
DET-UNSEEDED, REPLAY-ESCAPE, FORK-CAPTURE, FORK-ENTRY, LINT-STALE -- for
concurrent package code that never flows through a ``ProcessProgram``;
see that package's docstring for the full table.
"""

from __future__ import annotations

import ast
import builtins
import random as _random_module
from collections.abc import Iterable, Iterator
from dataclasses import replace
from types import ModuleType

from repro.lint.findings import Finding, Severity, is_suppressed
from repro.lint.inference import (
    META_VARS,
    AccessSets,
    ActionAnalysis,
    Note,
)
from repro.lint.source import FunctionInfo

_ORDER_SAFE = frozenset(
    {"sorted", "min", "max", "sum", "all", "any", "set", "frozenset", "len"}
)

_IO_MODULES = frozenset(
    {"os", "posix", "nt", "io", "subprocess", "socket", "shutil", "pathlib"}
)


class Rule:
    """A syntactic rule applied to one function's AST."""

    rule_id: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, info: FunctionInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", info.line),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            severity=self.severity,
            message=message,
            function=info.name,
        )


_RULES: list[Rule] = []


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule to the default rule set."""
    _RULES.append(rule_class())
    return rule_class


def default_rules() -> tuple[Rule, ...]:
    return tuple(_RULES)


# ---------------------------------------------------------------------------
# call-target resolution (live objects through the closure)
# ---------------------------------------------------------------------------


def _resolve_call_target(info: FunctionInfo, node: ast.Call) -> object | None:
    """Resolve ``time.time`` / ``os.urandom`` / ``id`` to the live object."""
    func = node.func
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    found, obj = info.resolve_name(func.id)
    if not found:
        return None
    for attr in reversed(parts):
        if not isinstance(obj, (ModuleType, type)):
            return None
        try:
            obj = getattr(obj, attr, None)
        except Exception:
            return None
        if obj is None:
            return None
    return obj


def _walk_calls(info: FunctionInfo) -> Iterator[tuple[ast.Call, object]]:
    if info.node is None:
        return
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            target = _resolve_call_target(info, node)
            if target is not None:
                yield node, target


# ---------------------------------------------------------------------------
# determinism rules
# ---------------------------------------------------------------------------


@register_rule
class WallClockRule(Rule):
    rule_id = "DET-TIME"
    severity = Severity.ERROR
    description = "actions must not read the wall clock"

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        for node, target in _walk_calls(info):
            module = getattr(target, "__module__", None)
            name = getattr(target, "__name__", "")
            if module == "time":
                yield self.finding(
                    info,
                    node,
                    f"wall-clock call time.{name}() makes the action "
                    "nondeterministic; use logical clocks",
                )
            elif module == "datetime" and name in ("now", "today", "utcnow"):
                yield self.finding(
                    info,
                    node,
                    f"wall-clock call datetime {name}() makes the action "
                    "nondeterministic; use logical clocks",
                )


@register_rule
class UnseededRandomRule(Rule):
    rule_id = "DET-RANDOM"
    severity = Severity.ERROR
    description = "actions must not draw from the unseeded module RNG"

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        hidden = getattr(_random_module, "_inst", None)
        for node, target in _walk_calls(info):
            bound_self = getattr(target, "__self__", None)
            if bound_self is not None and bound_self is hidden:
                yield self.finding(
                    info,
                    node,
                    f"random.{getattr(target, '__name__', '?')}() draws from "
                    "the process-global unseeded RNG; thread a seeded "
                    "random.Random through instead",
                )


@register_rule
class EntropyRule(Rule):
    rule_id = "DET-ENTROPY"
    severity = Severity.ERROR
    description = "actions must not read ambient entropy"

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        for node, target in _walk_calls(info):
            module = getattr(target, "__module__", None)
            name = getattr(target, "__name__", "")
            if module in ("uuid", "secrets"):
                yield self.finding(
                    info,
                    node,
                    f"{module}.{name}() reads ambient entropy; replay and "
                    "trace digests would diverge",
                )
            elif name in ("urandom", "getrandom") and module in (
                "os",
                "posix",
                "nt",
            ):
                yield self.finding(
                    info,
                    node,
                    f"os.{name}() reads ambient entropy; replay and trace "
                    "digests would diverge",
                )


@register_rule
class IdentityRule(Rule):
    rule_id = "DET-ID"
    severity = Severity.ERROR
    description = "id() values differ across processes and runs"

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        for node, target in _walk_calls(info):
            if target is builtins.id:
                yield self.finding(
                    info,
                    node,
                    "id() exposes a memory address; campaign workers fork "
                    "and replay would not reproduce it",
                )


@register_rule
class HashRule(Rule):
    rule_id = "DET-HASH"
    severity = Severity.WARNING
    description = "builtin hash() of str is salted per process"

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        for node, target in _walk_calls(info):
            if target is builtins.hash:
                yield self.finding(
                    info,
                    node,
                    "hash() of str/bytes is salted by PYTHONHASHSEED; use a "
                    "content digest (hashlib) for stable values",
                )


def _unordered_kind(info: FunctionInfo, node: ast.expr) -> str | None:
    """Classify an expression as certainly-unordered ('set'/'dict-view')."""
    if isinstance(node, ast.Set):
        return "set"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "keys",
            "values",
            "items",
        ):
            return "dict-view"
        target = _resolve_call_target(info, node)
        if target in (set, frozenset):
            return "set"
        annotations = getattr(target, "__annotations__", None) or {}
        ret = str(annotations.get("return", ""))
        if ret.startswith(("frozenset", "set[", "Set[")) or ret == "set":
            return "set"
    return None


@register_rule
class OrderedIterationRule(Rule):
    rule_id = "DET-ORDER"
    severity = Severity.WARNING  # ERROR when the iterable is a set
    description = "iteration order over sets/dict views is not canonical"

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        if info.node is None:
            return
        order_safe_args: set[int] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                name = getattr(
                    _resolve_call_target(info, node), "__name__", None
                )
                if isinstance(node.func, ast.Name):
                    name = name or node.func.id
                if name in _ORDER_SAFE:
                    for arg in node.args:
                        order_safe_args.add(id(arg))
        for node in ast.walk(info.node):
            iters: list[ast.expr] = []
            sensitive = True
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                # a comprehension handed straight to an order-insensitive
                # consumer (any/all/sum/min/max/set/sorted) is fine
                if id(node) in order_safe_args:
                    sensitive = False
                iters = [gen.iter for gen in node.generators]
            elif isinstance(node, ast.Call):
                target = _resolve_call_target(info, node)
                if target in (tuple, list) and node.args:
                    iters = [node.args[0]]
            if not sensitive:
                continue
            for it in iters:
                kind = _unordered_kind(info, it)
                if kind is None:
                    continue
                severity = (
                    Severity.ERROR if kind == "set" else Severity.WARNING
                )
                yield Finding(
                    path=info.path,
                    line=it.lineno,
                    col=it.col_offset,
                    rule=self.rule_id,
                    severity=severity,
                    message=(
                        f"iteration over a {kind} in an order-sensitive "
                        "position; wrap it in sorted(...) so effects do not "
                        "depend on hash/insertion order"
                    ),
                    function=info.name,
                )


# ---------------------------------------------------------------------------
# purity rules
# ---------------------------------------------------------------------------


@register_rule
class IoRule(Rule):
    rule_id = "PURITY-IO"
    severity = Severity.WARNING
    description = "actions must be pure functions of their view"

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        for node, target in _walk_calls(info):
            module = getattr(target, "__module__", None)
            name = getattr(target, "__name__", "")
            if target in (builtins.open, builtins.input, builtins.print):
                yield self.finding(
                    info,
                    node,
                    f"{name}() performs I/O from an action; actions must be "
                    "pure functions of their LocalView",
                )
            elif (
                module in _IO_MODULES
                and callable(target)
                and not isinstance(target, type)
                and name not in ("urandom", "getrandom")  # DET-ENTROPY's
            ):
                yield self.finding(
                    info,
                    node,
                    f"{module}.{name}() touches the environment from an "
                    "action; actions must be pure functions of their view",
                )


@register_rule
class GlobalWriteRule(Rule):
    rule_id = "PURITY-GLOBAL"
    severity = Severity.ERROR
    description = "actions must not rebind enclosing/global names"

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        if info.node is None:
            return
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield self.finding(
                    info,
                    node,
                    f"{kind} rebinding of {', '.join(node.names)} leaks "
                    "state across action executions; return updates in an "
                    "Effect instead",
                )


@register_rule
class MutableCaptureRule(Rule):
    rule_id = "CAPTURE-MUTABLE"
    severity = Severity.WARNING
    description = "closures over mutable containers outlive Simulator.fork()"

    def check(self, info: FunctionInfo) -> Iterator[Finding]:
        if info.fn is None or info.node is None:
            return
        for name, value in sorted(info.closure.items(), key=lambda kv: kv[0]):
            if isinstance(value, (list, dict, set, bytearray)):
                yield self.finding(
                    info,
                    info.node,
                    f"closure captures mutable {type(value).__name__} "
                    f"{name!r}; shared across forks and executions, this "
                    "breaks CoW forking and replay (capture an immutable "
                    "value or pass it through the view)",
                )


# ---------------------------------------------------------------------------
# inference-backed findings
# ---------------------------------------------------------------------------

_NOTE_RULES = {
    "mutation": ("MUT-SHARED", Severity.ERROR),
    "view-assign": ("MUT-VIEW", Severity.ERROR),
    "escape": ("INF-UNKNOWN", Severity.WARNING),
    "unknown-read": ("INF-UNKNOWN", Severity.WARNING),
    "unknown-write": ("INF-UNKNOWN", Severity.WARNING),
}


def findings_from_notes(
    notes: Iterable[Note],
    sets: AccessSets,
    function: str = "",
    action: str = "",
) -> list[Finding]:
    """Convert inference notes into findings.

    ``unknown-write`` notes are only surfaced when write inference actually
    gave up (a dict with odd keys that never reaches an Effect is harmless);
    likewise ``unknown-read``/``escape`` notes require ``reads_unknown``.
    """
    out: list[Finding] = []
    for note in notes:
        rule, severity = _NOTE_RULES.get(note.kind, (None, None))
        if rule is None:
            continue
        if note.kind == "unknown-write" and not sets.writes_unknown:
            continue
        if note.kind in ("unknown-read", "escape") and not sets.reads_unknown:
            continue
        out.append(
            Finding(
                path=note.path,
                line=note.line,
                col=note.col,
                rule=rule,
                severity=severity,
                message=note.message,
                function=function,
                action=action,
            )
        )
    return out


def action_findings(analysis: ActionAnalysis) -> list[Finding]:
    """Run every rule over one action: syntactic rules on each reachable
    function, plus the inference-backed checks."""
    findings: list[Finding] = []
    action_name = analysis.action.name
    for info in analysis.visited_infos():
        if info.node is None:
            continue
        for rule in default_rules():
            for finding in rule.check(info):
                findings.append(replace(finding, action=action_name))
    for label, summary, info in (
        ("guard", analysis.guard, analysis.guard_info),
        ("body", analysis.body, analysis.body_info),
    ):
        findings.extend(
            findings_from_notes(
                summary.sets.notes,
                summary.sets,
                function=info.name,
                action=action_name,
            )
        )
    guard_sets = analysis.guard.sets
    if guard_sets.writes or guard_sets.sends:
        what = "state updates" if guard_sets.writes else "message sends"
        findings.append(
            Finding(
                path=analysis.guard_info.path,
                line=analysis.guard_info.line,
                col=0,
                rule="GUARD-EFFECT",
                severity=Severity.ERROR,
                message=(
                    f"guard constructs {what}; guards must be pure "
                    "predicates -- effects belong in the body"
                ),
                function=analysis.guard_info.name,
                action=action_name,
            )
        )
    return findings


def program_findings(
    analyses: Iterable[ActionAnalysis],
    declared: frozenset[str],
    program_name: str = "",
) -> list[Finding]:
    """Program-level checks: every inferred write/read against the declared
    variable space (the ``ProcessProgram.__post_init__`` validation gap)."""
    findings: list[Finding] = []
    for analysis in analyses:
        sets = analysis.sets
        info = analysis.body_info
        for var in sorted(sets.writes - declared):
            findings.append(
                Finding(
                    path=info.path,
                    line=info.line,
                    col=0,
                    rule="WRITE-UNDECLARED",
                    severity=Severity.ERROR,
                    message=(
                        f"action {analysis.action.name!r} writes variable "
                        f"{var!r} which is absent from "
                        f"{program_name or 'the program'}'s initial_vars; "
                        "faults could never corrupt it and snapshots would "
                        "change shape mid-run"
                    ),
                    function=info.name,
                    action=analysis.action.name,
                ),
            )
        if not sets.reads_unknown:
            undeclared_reads = {
                var
                for var in sets.raw_reads - declared
                if not var.startswith("_")
            }
            for var in sorted(undeclared_reads):
                findings.append(
                    Finding(
                        path=info.path,
                        line=info.line,
                        col=0,
                        rule="READ-UNDECLARED",
                        severity=Severity.WARNING,
                        message=(
                            f"action {analysis.action.name!r} reads variable "
                            f"{var!r} which is never declared in "
                            f"{program_name or 'the program'}'s initial_vars "
                            "(typo, or a composition-partner variable?)"
                        ),
                        function=info.name,
                        action=analysis.action.name,
                    ),
                )
    return findings


def filter_suppressed(
    findings: Iterable[Finding],
    def_lines: dict[tuple[str, str], int] | None = None,
) -> list[Finding]:
    """Drop findings silenced by ``# repro: lint-ok[...]`` comments.

    ``def_lines`` maps ``(path, function_name)`` to the function's ``def``
    line, so a suppression on the header silences the whole function.
    """
    def_lines = def_lines or {}
    kept = []
    for finding in findings:
        header = def_lines.get((finding.path, finding.function))
        if not is_suppressed(finding, header):
            kept.append(finding)
    return kept


__all__ = [
    "Rule",
    "register_rule",
    "default_rules",
    "action_findings",
    "program_findings",
    "findings_from_notes",
    "filter_suppressed",
    "META_VARS",
]
