"""Lint findings: rule identities, severities, locations, suppressions.

A :class:`Finding` is one diagnosed violation of a paper contract, anchored
to a source location (file, line, column) so editors and CI logs can jump
to the definition site.  Findings can be silenced *at that site* with a
justification comment::

    deferred = view.deferred          # repro: lint-ok[DET-ORDER] sorted below

A bare ``# repro: lint-ok`` suppresses every rule on that line; the
bracketed form suppresses only the named rules (comma-separated).  The
suppression is honoured where the finding points, or on the function's
``def`` line to silence a rule for the whole function.
"""

from __future__ import annotations

import json
import re
from collections.abc import Iterable
from dataclasses import dataclass, field
from enum import IntEnum
from functools import lru_cache


class Severity(IntEnum):
    """Finding severities, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str
    function: str = ""
    action: str = ""

    def render(self) -> str:
        """``path:line:col: severity RULE message  [action]``."""
        where = f"{self.path}:{self.line}:{self.col}"
        ctx = f"  (action {self.action!r})" if self.action else ""
        return f"{where}: {self.severity.label} [{self.rule}] {self.message}{ctx}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "function": self.function,
            "action": self.action,
        }


_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok(?:\[(?P<rules>[A-Z0-9_,\- ]+)\])?"
)


@lru_cache(maxsize=256)
def _file_lines(path: str) -> tuple[str, ...]:
    try:
        with open(path, encoding="utf-8") as fh:
            return tuple(fh.read().splitlines())
    except OSError:
        return ()


def suppressed_rules(path: str, line: int) -> frozenset[str] | None:
    """The rules suppressed on ``line`` of ``path``.

    Returns ``None`` when there is no suppression comment, the empty
    frozenset for a bare ``lint-ok`` (suppress everything), or the named
    rule set for the bracketed form.
    """
    lines = _file_lines(path)
    if not 1 <= line <= len(lines):
        return None
    match = _SUPPRESS_RE.search(lines[line - 1])
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


def iter_suppressions(path: str) -> list[tuple[int, frozenset[str]]]:
    """Every suppression comment in ``path``: ``(line, rules)`` pairs.

    ``rules`` is empty for the bare ``lint-ok`` form (suppress everything)
    and the named rule set for the bracketed form.
    """
    out: list[tuple[int, frozenset[str]]] = []
    for lineno, _ in enumerate(_file_lines(path), start=1):
        rules = suppressed_rules(path, lineno)
        if rules is not None:
            out.append((lineno, rules))
    return out


def stale_suppressions(
    paths: Iterable[str],
    findings: Iterable[Finding],
    def_lines: dict[tuple[str, str], int] | None = None,
    rules_in_force: frozenset[str] | None = None,
) -> list[Finding]:
    """Suppression comments whose rule no longer fires: rot detectors.

    A ``# repro: lint-ok[RULE]`` earns its keep only while RULE actually
    fires on that line (or on a function whose ``def`` line it sits on).
    Given the *pre-suppression* findings of a run, every comment that
    matched nothing becomes a LINT-STALE warning -- an error under
    ``--strict`` -- so silenced rules cannot outlive the code they
    excused.  Named rules outside ``rules_in_force`` (rules this run did
    not evaluate) are left alone rather than guessed at.
    """
    def_lines = def_lines or {}
    covered: set[tuple[str, int, str]] = set()
    for finding in findings:
        covered.add((finding.path, finding.line, finding.rule))
        if finding.function:
            def_line = def_lines.get((finding.path, finding.function))
            if def_line is not None:
                covered.add((finding.path, def_line, finding.rule))
    out: list[Finding] = []
    for path in paths:
        for line, rules in iter_suppressions(path):
            fired_here = {r for (p, ln, r) in covered if p == path and ln == line}
            if not rules:
                if not fired_here:
                    out.append(
                        Finding(
                            path=path,
                            line=line,
                            col=0,
                            rule="LINT-STALE",
                            severity=Severity.WARNING,
                            message=(
                                "stale suppression: bare '# repro: lint-ok' "
                                "matches no finding on this line; delete it "
                                "or name the rule it should silence"
                            ),
                        )
                    )
                continue
            for rule in sorted(rules):
                if rules_in_force is not None and rule not in rules_in_force:
                    continue
                if rule not in fired_here:
                    out.append(
                        Finding(
                            path=path,
                            line=line,
                            col=0,
                            rule="LINT-STALE",
                            severity=Severity.WARNING,
                            message=(
                                f"stale suppression: lint-ok[{rule}] but "
                                f"{rule} no longer fires on this line; "
                                "delete the comment so real findings "
                                "cannot hide behind it"
                            ),
                        )
                    )
    return out


def is_suppressed(finding: Finding, def_line: int | None = None) -> bool:
    """Is ``finding`` silenced at its own line or the function header?"""
    for line in {finding.line, def_line or finding.line}:
        rules = suppressed_rules(finding.path, line)
        if rules is not None and (not rules or finding.rule in rules):
            return True
    return False


@dataclass
class LintReport:
    """The outcome of one lint run: findings plus what was proven."""

    findings: list[Finding] = field(default_factory=list)
    checked_actions: int = 0
    checked_programs: int = 0
    checked_files: int = 0
    proofs: list[dict] = field(default_factory=list)
    cross_checks: list[dict] = field(default_factory=list)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def unique_findings(self) -> list[Finding]:
        """Deduplicated, location-sorted findings (one action's helpers can
        be reached from several programs)."""
        return sorted(set(self.findings))

    def worst(self) -> Severity | None:
        return max((f.severity for f in self.findings), default=None)

    def counts(self) -> dict[str, int]:
        out = {s.label: 0 for s in Severity}
        for f in self.unique_findings():
            out[f.severity.label] += 1
        return out

    def exit_code(self, strict: bool = False) -> int:
        """0 clean; 1 on any error (or any warning under ``--strict``)."""
        threshold = Severity.WARNING if strict else Severity.ERROR
        worst = self.worst()
        return 1 if worst is not None and worst >= threshold else 0

    def render_text(self) -> str:
        lines: list[str] = []
        for f in self.unique_findings():
            lines.append(f.render())
        counts = self.counts()
        scanned = (
            f", {self.checked_files} files scanned" if self.checked_files else ""
        )
        lines.append(
            f"lint: {self.checked_programs} programs, "
            f"{self.checked_actions} actions checked{scanned} -- "
            f"{counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['info']} notes"
        )
        for proof in self.proofs:
            status = "PROVEN" if proof["proven"] else "NOT PROVEN"
            lines.append(
                f"non-interference [{proof['program']}]: {status} "
                f"(wrapper writes {sorted(proof['wrapper_writes'])}, "
                f"interface reads {sorted(proof['interface_reads'])})"
            )
        for check in self.cross_checks:
            status = "OK" if check["contained"] else "VIOLATED"
            lines.append(
                f"dynamic cross-check [{check['program']}]: {status} "
                f"({check['steps']} steps, {check['actions_observed']} "
                f"actions observed)"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.unique_findings()],
            "counts": self.counts(),
            "checked_actions": self.checked_actions,
            "checked_programs": self.checked_programs,
            "checked_files": self.checked_files,
            "proofs": self.proofs,
            "cross_checks": self.cross_checks,
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)
