"""Static non-interference proof for the graybox wrapper.

The paper's composition theorems are conditional on two side conditions
(Lemma 6 / Theorems 4, 5, 8):

1. **Write disjointness** -- the wrapper ``W`` must not write any variable
   of the wrapped implementation ``M`` (it owns only its ``w_``-prefixed
   state).  Otherwise ``M box W`` is not a superposition and the refinement
   ``[M => Lspec]`` proved for ``M`` alone says nothing about the
   composition.
2. **Graybox reads** -- ``W`` may read only the *published* Lspec interface
   (through the implementation's adapter) plus its own variables.  Reading
   implementation internals would make the wrapper whitebox, voiding the
   reuse claim (Corollary 11).

Both are proved here *statically* from the inferred access sets of
:mod:`repro.lint.inference`: for every wrapper action, the write set must
be inside the wrapper's own declared variables (and disjoint from the
implementation's), raw view reads must stay inside ``w_*``/runtime
metadata, and reads routed through the adapter boundary must name only
``LSPEC_VARIABLES``.  An *unknown* set fails the proof -- soundness over
convenience.  The runtime :class:`~repro.tme.interfaces.GrayboxView` keeps
enforcing the same contract dynamically; this check moves the error to the
definition site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.program import ProcessProgram
from repro.lint.findings import Finding, Severity
from repro.lint.inference import (
    META_VARS,
    ActionAnalysis,
    Engine,
    analyze_action,
)
from repro.tme.interfaces import LSPEC_VARIABLES


@dataclass
class InterferenceProof:
    """The outcome of checking one implementation/wrapper pair."""

    program: str
    wrapper_actions: tuple[str, ...]
    implementation_vars: frozenset[str]
    wrapper_vars: frozenset[str]
    wrapper_writes: set[str] = field(default_factory=set)
    wrapper_raw_reads: set[str] = field(default_factory=set)
    interface_reads: set[str] = field(default_factory=set)
    findings: list[Finding] = field(default_factory=list)

    @property
    def proven(self) -> bool:
        return not any(f.severity >= Severity.ERROR for f in self.findings)

    def as_dict(self) -> dict:
        return {
            "program": self.program,
            "proven": self.proven,
            "wrapper_actions": list(self.wrapper_actions),
            "implementation_vars": sorted(self.implementation_vars),
            "wrapper_vars": sorted(self.wrapper_vars),
            "wrapper_writes": sorted(self.wrapper_writes),
            "wrapper_raw_reads": sorted(self.wrapper_raw_reads),
            "interface_reads": sorted(self.interface_reads),
            "findings": [f.as_dict() for f in self.findings],
        }

    def describe(self) -> str:
        status = "PROVEN" if self.proven else "NOT PROVEN"
        overlap = sorted(self.wrapper_writes & self.implementation_vars)
        lines = [
            f"non-interference [{self.program}]: {status}",
            f"  wrapper writes     : {sorted(self.wrapper_writes)}"
            f"  (∩ {len(self.implementation_vars)} implementation vars"
            f" = {overlap})",
            f"  wrapper raw reads  : {sorted(self.wrapper_raw_reads)}",
            f"  interface reads    : {sorted(self.interface_reads)}"
            f"  (Lspec = {sorted(LSPEC_VARIABLES)})",
        ]
        for finding in self.findings:
            lines.append("  " + finding.render())
        return "\n".join(lines)


def _wrapper_finding(
    analysis: ActionAnalysis, rule: str, message: str,
    severity: Severity = Severity.ERROR,
) -> Finding:
    info = analysis.body_info
    return Finding(
        path=info.path,
        line=info.line,
        col=0,
        rule=rule,
        severity=severity,
        message=message,
        function=info.name,
        action=analysis.action.name,
    )


def check_wrapper_interference(
    implementation: ProcessProgram,
    wrapper: ProcessProgram,
    engine: Engine | None = None,
    label: str | None = None,
) -> InterferenceProof:
    """Prove (or refute) that ``wrapper`` does not interfere with
    ``implementation``.

    Both programs are the *pre-composition* per-process programs -- e.g.
    ``ra_program(...)`` and ``wrapper_program(...)`` -- so the variable
    spaces are still separate.
    """
    engine = engine or Engine()
    impl_vars = frozenset(implementation.initial_vars)
    wrapper_vars = frozenset(wrapper.initial_vars)
    wrapper_actions = wrapper.actions + wrapper.receive_actions
    proof = InterferenceProof(
        program=label or f"{implementation.name} vs {wrapper.name}",
        wrapper_actions=tuple(a.name for a in wrapper_actions),
        implementation_vars=impl_vars,
        wrapper_vars=wrapper_vars,
    )

    for action in wrapper_actions:
        analysis = analyze_action(action, engine)
        sets = analysis.sets

        if sets.writes_unknown:
            proof.findings.append(
                _wrapper_finding(
                    analysis,
                    "GRAY-UNKNOWN",
                    f"wrapper action {action.name!r}: write set could not "
                    "be inferred; non-interference (Lemma 6) is not "
                    "statically provable",
                )
            )
        proof.wrapper_writes |= sets.writes
        for var in sorted(sets.writes & impl_vars):
            proof.findings.append(
                _wrapper_finding(
                    analysis,
                    "GRAY-WRITE",
                    f"wrapper action {action.name!r} writes implementation "
                    f"variable {var!r}; the wrapper may only write its own "
                    f"state ({sorted(wrapper_vars)})",
                )
            )
        for var in sorted(sets.writes - wrapper_vars - impl_vars):
            proof.findings.append(
                _wrapper_finding(
                    analysis,
                    "GRAY-WRITE",
                    f"wrapper action {action.name!r} writes {var!r}, which "
                    "is not declared wrapper state",
                )
            )

        if sets.reads_unknown:
            proof.findings.append(
                _wrapper_finding(
                    analysis,
                    "GRAY-UNKNOWN",
                    f"wrapper action {action.name!r}: read set could not be "
                    "inferred; graybox-ness is not statically provable",
                )
            )
        proof.wrapper_raw_reads |= sets.raw_reads
        for var in sorted(sets.raw_reads - wrapper_vars):
            proof.findings.append(
                _wrapper_finding(
                    analysis,
                    "GRAY-READ",
                    f"wrapper action {action.name!r} reads {var!r} directly "
                    "from the view; only wrapper-owned variables and the "
                    "published Lspec interface (through the adapter) are "
                    "graybox-visible",
                )
            )
        proof.interface_reads |= sets.interface_reads
        for var in sorted(sets.interface_reads - set(LSPEC_VARIABLES)):
            proof.findings.append(
                _wrapper_finding(
                    analysis,
                    "GRAY-IFACE",
                    f"wrapper action {action.name!r} reads {var!r} from the "
                    f"interface view, outside Lspec {sorted(LSPEC_VARIABLES)}",
                )
            )

    # Reverse direction: the implementation must not write wrapper state.
    for action in implementation.actions + implementation.receive_actions:
        analysis = analyze_action(action, engine)
        sets = analysis.sets
        if sets.writes_unknown:
            proof.findings.append(
                _wrapper_finding(
                    analysis,
                    "GRAY-UNKNOWN",
                    f"implementation action {action.name!r}: write set could "
                    "not be inferred; reverse non-interference unchecked",
                    severity=Severity.WARNING,
                )
            )
            continue
        for var in sorted(sets.writes & wrapper_vars):
            proof.findings.append(
                _wrapper_finding(
                    analysis,
                    "GRAY-WRITE",
                    f"implementation action {action.name!r} writes wrapper "
                    f"variable {var!r}; superposition requires disjoint "
                    "write spaces in both directions",
                )
            )
    return proof


def tme_interference_proof(
    algorithm: str,
    n: int = 3,
    theta: int = 4,
    refined: bool = True,
    engine: Engine | None = None,
) -> InterferenceProof:
    """Build one TME system's implementation + wrapper pair and check it.

    ``theta > 0`` exercises both wrapper actions (``W:correct`` *and*
    ``W:tick``).  The token ring is the negative control for *reuse* --
    non-interference still holds for it (the wrapper simply does not help),
    which is exactly what Theorem 8's failure mode predicts: the missing
    piece is Lspec conformance, not superposition.
    """
    from repro.tme.interfaces import adapter_for
    from repro.tme.scenarios import tme_programs
    from repro.tme.wrapper import WrapperConfig, wrapper_program

    config = WrapperConfig(theta=theta, refined=refined)
    programs = tme_programs(algorithm, n)
    pid = sorted(programs)[0]
    implementation = programs[pid]
    all_pids = tuple(sorted(programs))
    wrapper = wrapper_program(
        pid, all_pids, adapter_for(implementation.name), config
    )
    return check_wrapper_interference(
        implementation,
        wrapper,
        engine,
        label=f"{implementation.name} [] {config.variant_name} "
        f"({algorithm}, n={n})",
    )


__all__ = [
    "InterferenceProof",
    "check_wrapper_interference",
    "tme_interference_proof",
    "META_VARS",
]
