"""AIO-RACE: shared state torn across an await while another task uses it.

The online ME1-ME3 monitor's soundness argument leans on *single-loop
discipline*: within one event loop, code between two awaits runs
atomically, so the monitor observes a total order of wrapper steps.  That
discipline is easy to break silently -- read a field, await, then assign
it from the stale value while a concurrently scheduled task also touches
it.  This is the asyncio lost-update pattern:

    snapshot = self.holder          # read
    await self.transport.send(...)  # suspension point: others may run
    self.holder = next(snapshot)    # assign from a stale snapshot

The detector builds, per module, the set of *task roots* -- coroutines
handed to the loop via ``create_task`` / ``ensure_future`` / ``gather`` /
``start_server`` / ``call_soon``-style callback registration -- inlines
each root's reachable call graph into one ordered access stream (loops
that contain an await are unrolled twice so cross-iteration staleness is
visible), and flags a field when

* some root's stream **reads** the field, then suspends, then
  **assigns** it (atomic ``+=`` / in-place mutators never tear: they
  re-read at the write point and the loop cannot preempt them), and
* a *different* concurrently runnable root (or the same root when it is
  spawned multiple times -- in a loop, a comprehension, a multi-arg
  ``gather``, or as a connection handler) also accesses the field.

Fields holding asyncio synchronization primitives (``Event``, ``Queue``,
``Lock``, ...) are exempt: they exist to mediate exactly this.  Aliased
writes (``h = self.f; h.x = 1``) are a documented blind spot.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.lint.aio.model import (
    Access,
    CallSite,
    FuncModel,
    ModuleModel,
    PackageModel,
)
from repro.lint.findings import Finding, Severity

_MAX_INLINE_DEPTH = 16


@dataclass
class RootInfo:
    """One task root: the coroutine/callback and how it is spawned."""

    func: FuncModel
    self_concurrent: bool  # may two of its tasks overlap?
    kinds: tuple[str, ...]


def _resolve_callee(
    module: ModuleModel, spawner: FuncModel, callee: tuple[str, ...]
) -> FuncModel | None:
    if callee and callee[0] == "self" and len(callee) == 2:
        if spawner.class_name is None:
            return None
        cls = module.classes.get(spawner.class_name)
        return cls.methods.get(callee[1]) if cls else None
    if len(callee) == 1:
        nested = module.functions.get(f"{spawner.qualname}.{callee[0]}")
        if nested is not None:
            return nested
        return module.functions.get(callee[0])
    if len(callee) == 2 and callee[0] in module.classes:
        return module.classes[callee[0]].methods.get(callee[1])
    return None


def module_roots(module: ModuleModel) -> dict[str, RootInfo]:
    """Task roots of one module, with spawn-multiplicity flags."""
    roots: dict[str, RootInfo] = {}
    spawn_counts: Counter[tuple[str, str]] = Counter()
    for fn in module.functions.values():
        for spawn in fn.spawns:
            if spawn.callee is None:
                continue
            target = _resolve_callee(module, fn, spawn.callee)
            if target is None:
                continue
            spawn_counts[(fn.qualname, target.qualname)] += 1
            multi = (
                spawn.kind == "server"
                or spawn.in_loop
                or spawn_counts[(fn.qualname, target.qualname)] > 1
            )
            prior = roots.get(target.qualname)
            roots[target.qualname] = RootInfo(
                func=target,
                self_concurrent=multi or (prior.self_concurrent if prior else False),
                kinds=tuple(
                    sorted(set((prior.kinds if prior else ()) + (spawn.kind,)))
                ),
            )
    return roots


def inline_stream(
    package: PackageModel,
    module: ModuleModel,
    fn: FuncModel,
    _memo: dict | None = None,
    _stack: frozenset = frozenset(),
) -> list[Access]:
    """The root's ordered access stream with resolvable calls spliced in."""
    if _memo is None:
        _memo = {}
    if id(fn) in _memo:
        return _memo[id(fn)]
    if id(fn) in _stack or len(_stack) >= _MAX_INLINE_DEPTH:
        return []
    stack = _stack | {id(fn)}
    out: list[Access] = []
    for op in fn.ops:
        if isinstance(op, Access):
            out.append(op)
            continue
        if isinstance(op, CallSite):
            callee = package.resolve_call(module, fn, op)
            if callee is None:
                continue
            callee_module = package.module_of(callee) or module
            out.extend(
                inline_stream(package, callee_module, callee, _memo, stack)
            )
    if not _stack:
        _memo[id(fn)] = out
    return out


def _torn_keys(stream: list[Access]) -> dict[tuple, Access]:
    """Keys read before a suspension and reassigned after it."""
    read_so_far: set[tuple] = set()
    candidates: set[tuple] = set()
    torn: dict[tuple, Access] = {}
    for access in stream:
        if access.kind == "await":
            candidates |= read_so_far
        elif access.kind == "read" and access.key is not None:
            read_so_far.add(access.key)
        elif access.kind == "assign" and access.key is not None:
            if access.key in candidates and access.key not in torn:
                torn[access.key] = access
    return torn


def _key_label(key: tuple) -> str:
    if key[0] == "attr":
        return f"{key[1]}.{key[2]}" if key[1] else key[2]
    return f"global {key[2]}"


def race_findings(package: PackageModel) -> list[Finding]:
    findings: list[Finding] = []
    sync_excluded: set[tuple] = set()
    for module in package.modules.values():
        for cls in module.classes.values():
            for attr in cls.sync_fields:
                sync_excluded.add(("attr", cls.name, attr))

    for module in package.modules.values():
        roots = module_roots(module)
        if not roots:
            continue
        memo: dict = {}
        streams = {
            qual: inline_stream(package, module, info.func, memo)
            for qual, info in roots.items()
        }
        touched = {
            qual: {a.key for a in stream if a.key is not None}
            for qual, stream in streams.items()
        }
        writes = {
            qual: {
                a.key
                for a in stream
                if a.key is not None and a.kind in ("assign", "mutate")
            }
            for qual, stream in streams.items()
        }
        for qual, info in roots.items():
            if not info.func.is_async:
                continue  # sync callbacks cannot suspend mid-section
            for key, access in _torn_keys(streams[qual]).items():
                if key in sync_excluded:
                    continue
                rivals = [
                    other
                    for other, other_info in roots.items()
                    if key in touched[other]
                    and (other != qual or info.self_concurrent)
                ]
                if not rivals:
                    continue
                rival = rivals[0]
                overlap = "writes" if key in writes[rival] else "reads"
                findings.append(
                    Finding(
                        path=access.path,
                        line=access.line,
                        col=access.col,
                        rule="AIO-RACE",
                        severity=Severity.ERROR,
                        message=(
                            f"{_key_label(key)} is read before an await and "
                            f"reassigned after it in task {qual!r}, while "
                            f"concurrent task {rival!r} {overlap} it; the "
                            "assigned value may be stale -- recheck state "
                            "after the suspension or serialize the section"
                        ),
                        function=access.func,
                    )
                )
    return findings


__all__ = [
    "RootInfo",
    "inline_stream",
    "module_roots",
    "race_findings",
]
