"""Dynamic cross-check for the asyncio inference (mirrors lint/dynamic.py).

The static pass claims, per coroutine method, (a) which ``self`` fields
its reachable call graph may write and (b) which coroutines may run
concurrently.  Both claims are load-bearing -- the race detector's
verdicts are only as good as them -- so, exactly like PR 4's
``cross_check`` for the DSL inference, we run the real thing
instrumented and assert **observed ⊆ inferred**:

* every class of ``repro.service`` with an async method gets its
  ``__setattr__`` patched and its coroutine methods wrapped; a live
  ``LocalCluster`` (default n=3) boots, serves a few lock
  acquire/release cycles through a real ``LockClient``, and shuts down;
* each observed attribute write is attributed to the innermost wrapped
  method *of the same task* whose ``self`` is the written object, and
  must land inside that method's statically inferred write closure;
* each observed pair of concurrently active coroutines (both task roots
  of the same module) must be in the statically inferred
  may-run-concurrently relation.

A violation means the model under-approximates real behaviour -- the
race detector could be silently blind there -- and fails the report the
same way DYN-CONTAIN does for the DSL pass.
"""

from __future__ import annotations

import asyncio
import contextvars
import functools
import importlib
import inspect
from dataclasses import dataclass, field
from types import FunctionType

from repro.lint.aio.model import PackageModel, build_package_model
from repro.lint.aio.races import module_roots

_STACK: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_lint_aio_stack", default=()
)


@dataclass
class _Recorder:
    """Observed writes, entries, and concurrent pairs of one run."""

    writes: set = field(default_factory=set)  # (qualname, attr)
    ran: set = field(default_factory=set)  # qualnames entered
    pairs: set = field(default_factory=set)  # sorted (qual, qual)
    active: dict = field(default_factory=dict)  # id(task) -> [qualname, ...]

    def enter(self, qualname: str, obj: object) -> object:
        task = asyncio.current_task()
        for tid, frames in self.active.items():
            if tid != id(task) and frames:
                self.pairs.add(tuple(sorted((qualname, frames[-1]))))
        self.active.setdefault(id(task), []).append(qualname)
        self.ran.add(qualname)
        token = _STACK.set(_STACK.get() + ((qualname, id(obj), id(task)),))
        return token

    def exit(self, token: object) -> None:
        task = asyncio.current_task()
        frames = self.active.get(id(task))
        if frames:
            frames.pop()
            if not frames:
                del self.active[id(task)]
        _STACK.reset(token)

    def record_write(self, obj: object, attr: str) -> None:
        try:
            task = asyncio.current_task()
        except RuntimeError:
            return
        if task is None:
            return
        for qualname, obj_id, task_id in reversed(_STACK.get()):
            if task_id != id(task):
                continue  # frame inherited through create_task's context copy
            if obj_id == id(obj):
                self.writes.add((qualname, attr))
                return


class _Instrumenter:
    """Patch ``__setattr__`` + wrap coroutine methods; fully reversible."""

    def __init__(self, classes: dict[str, type], recorder: _Recorder):
        self.classes = classes
        self.recorder = recorder
        self._saved: list[tuple[type, str, object, bool]] = []

    def __enter__(self) -> "_Instrumenter":
        recorder = self.recorder
        for cls in self.classes.values():
            had_own = "__setattr__" in vars(cls)
            original_setattr = cls.__setattr__

            def make_setattr(orig):
                def __setattr__(self, name, value):
                    recorder.record_write(self, name)
                    orig(self, name, value)

                return __setattr__

            self._saved.append(
                (cls, "__setattr__", original_setattr, had_own)
            )
            cls.__setattr__ = make_setattr(original_setattr)

            for name, fn in list(vars(cls).items()):
                if not isinstance(fn, FunctionType):
                    continue
                if not inspect.iscoroutinefunction(fn):
                    continue
                qualname = f"{cls.__name__}.{name}"

                def make_wrapper(qual, inner):
                    @functools.wraps(inner)
                    async def wrapper(self, *args, **kwargs):
                        token = recorder.enter(qual, self)
                        try:
                            return await inner(self, *args, **kwargs)
                        finally:
                            recorder.exit(token)

                    return wrapper

                self._saved.append((cls, name, fn, True))
                setattr(cls, name, make_wrapper(qualname, fn))
        return self

    def __exit__(self, *exc_info) -> None:
        for cls, name, original, had_own in reversed(self._saved):
            if had_own:
                setattr(cls, name, original)
            else:
                delattr(cls, name)
        self._saved.clear()


def _static_claims(package: PackageModel):
    """(instrumentable classes, per-method write closures, concurrency)."""
    class_homes: dict[str, str] = {}  # class name -> module dotted name
    write_closure: dict[str, set[str]] = {}
    rooted: dict[str, tuple[str, bool]] = {}  # qual -> (module, self-conc)
    for module in package.modules.values():
        for cls in module.classes.values():
            if not any(m.is_async for m in cls.methods.values()):
                continue
            class_homes[cls.name] = module.name
            for method in cls.methods.values():
                writes: set[str] = set()
                for fn in package.reach(module, method):
                    if fn.class_name != cls.name:
                        continue
                    for access in fn.accesses:
                        if (
                            access.kind in ("assign", "mutate")
                            and access.key is not None
                            and access.key[0] == "attr"
                            and access.key[1] == cls.name
                        ):
                            writes.add(access.key[2])
                write_closure[method.qualname] = writes
        for qual, info in module_roots(module).items():
            # a rooted *method* is loosely self-concurrent: one task per
            # instance is enough for two to overlap in a live cluster
            loose = info.self_concurrent or info.func.class_name is not None
            rooted[qual] = (module.name, loose)
    return class_homes, write_closure, rooted


async def _drive_cluster(n: int, ops: int) -> None:
    from repro.service import ClusterConfig, LocalCluster, LockClient

    cluster = LocalCluster(
        ClusterConfig(algorithm="ra", n=n, theta=8, wrapper_tick_s=0.005)
    )
    await cluster.start()
    try:
        client = LockClient()
        await client.connect("127.0.0.1", cluster.client_ports()[0])
        for _ in range(ops):
            req_id = await asyncio.wait_for(client.acquire(), timeout=30)
            await client.release(req_id)
        await client.close()
    finally:
        await cluster.stop()


def cross_check_service(n: int = 3, ops: int = 3) -> dict:
    """Boot an instrumented n-node cluster; assert observed ⊆ inferred."""
    package = build_package_model("repro.service")
    class_homes, write_closure, rooted = _static_claims(package)

    classes: dict[str, type] = {}
    for class_name, module_name in class_homes.items():
        real_module = importlib.import_module(module_name)
        real_cls = getattr(real_module, class_name, None)
        if isinstance(real_cls, type):
            classes[class_name] = real_cls

    recorder = _Recorder()
    with _Instrumenter(classes, recorder):
        asyncio.run(_drive_cluster(n, ops))

    violations: list[str] = []
    for qualname, attr in sorted(recorder.writes):
        claimed = write_closure.get(qualname)
        if claimed is None:
            violations.append(
                f"write {qualname}.{attr}: method missing from static model"
            )
        elif attr not in claimed:
            violations.append(
                f"write of {attr!r} in {qualname} escapes the inferred "
                f"write closure {sorted(claimed)}"
            )
    for left, right in sorted(recorder.pairs):
        info_l, info_r = rooted.get(left), rooted.get(right)
        if info_l is None or info_r is None:
            continue  # not task roots: outside the race detector's relation
        if info_l[0] != info_r[0]:
            continue  # cross-module pairs carry no same-module race claim
        if left == right and not info_l[1]:
            violations.append(
                f"{left} observed concurrent with itself but inferred as "
                "spawned at most once"
            )
    return {
        "program": "repro.service",
        "steps": ops,
        "actions_observed": len(recorder.ran),
        "writes_observed": len(recorder.writes),
        "pairs_observed": len(recorder.pairs),
        "contained": not violations,
        "violations": violations,
    }


__all__ = ["cross_check_service"]
