"""Fork/worker hygiene for the process-parallel layers.

``campaign.runner`` and ``explore.parallel`` fan out with
``multiprocessing.get_context("fork")``.  Fork inherits the parent's
entire address space, so two classes of bugs stay invisible until a
worker wedges in production:

* **FORK-CAPTURE** (error) -- a live OS resource (socket, asyncio loop
  primitive, thread object, open file) smuggled into a worker through
  ``Process(target=..., args=(...))``.  The child inherits a duplicated
  fd or a loop bound to the parent's thread; either is undefined
  behaviour.  Payloads must be plain data -- in this repo, the types the
  explore wire codec (``repro.explore.wire``) declares, plus the
  ``multiprocessing`` primitives built for crossing (queues, pipes).
* **FORK-ENTRY** (warning) -- a worker entry function whose reachable
  call graph touches ``asyncio``/``socket``/``threading`` APIs.  Worker
  entries are expected to speak wire-codec data over the queues/pipes
  they were handed, not to resurrect event loops or sockets inherited
  from the parent snapshot.

Both checks resolve ``Process`` through import aliases and through
locals bound from ``multiprocessing.get_context(...)``, and look up
argument provenance in local assignments and ``self.*`` field
constructor sources.
"""

from __future__ import annotations

import ast

from repro.lint.aio.model import FuncModel, ModuleModel, PackageModel
from repro.lint.findings import Finding, Severity
from repro.lint.inference import dotted_chain

#: constructor roots whose values must never cross a fork boundary
_LIVE_ROOTS = frozenset({"socket", "asyncio", "threading"})


def _local_call_sources(
    module: ModuleModel, fn: FuncModel
) -> dict[str, tuple[str, ...]]:
    """name -> resolved chain of the call its local was assigned from."""
    sources: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        chain = module.resolve_chain(dotted_chain(node.value.func))
        if not chain:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                sources.setdefault(target.id, chain)
    return sources


def _is_process_call(
    module: ModuleModel,
    call: ast.Call,
    local_sources: dict[str, tuple[str, ...]],
) -> bool:
    chain = dotted_chain(call.func)
    if not chain or chain[-1] != "Process":
        return False
    resolved = module.resolve_chain(chain)
    if resolved[0] == "multiprocessing":
        return True
    return local_sources.get(chain[0]) == ("multiprocessing", "get_context")


def _live_reason(
    module: ModuleModel,
    fn: FuncModel,
    expr: ast.expr,
    local_sources: dict[str, tuple[str, ...]],
) -> str | None:
    """Why this Process payload element holds a live resource, if it does."""

    def classify(chain: tuple[str, ...]) -> str | None:
        if not chain:
            return None
        if chain[0] in _LIVE_ROOTS:
            return ".".join(c for c in chain if c != "()")
        if chain == ("open",):
            return "open file"
        return None

    if isinstance(expr, ast.Name):
        src = local_sources.get(expr.id)
        if src is not None:
            return classify(src)
        return None
    if isinstance(expr, ast.Call):
        return classify(module.resolve_chain(dotted_chain(expr.func)))
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and fn.class_name is not None
    ):
        cls = module.classes.get(fn.class_name)
        if cls is not None:
            return classify(cls.field_sources.get(expr.attr, ()))
    return None


def _entry_offenses(
    package: PackageModel, module: ModuleModel, entry: FuncModel
) -> list[str]:
    """asyncio/socket/threading calls in the worker entry's reach."""
    offenses: list[str] = []
    for fn in package.reach(module, entry):
        fn_module = package.module_of(fn) or module
        for site in fn.calls:
            resolved = fn_module.resolve_chain(site.chain)
            if resolved and resolved[0] in _LIVE_ROOTS:
                offenses.append(
                    f"{fn.qualname}:{site.line} calls "
                    f"{'.'.join(c for c in resolved if c != '()')}"
                )
    return offenses


def fork_findings(package: PackageModel) -> list[Finding]:
    findings: list[Finding] = []
    for module in package.modules.values():
        for fn in module.functions.values():
            local_sources = _local_call_sources(module, fn)
            for site in fn.calls:
                if not _is_process_call(module, site.node, local_sources):
                    continue
                payload: list[ast.expr] = []
                target_expr: ast.expr | None = None
                for kw in site.node.keywords:
                    if kw.arg == "args" and isinstance(
                        kw.value, (ast.Tuple, ast.List)
                    ):
                        payload.extend(kw.value.elts)
                    elif kw.arg == "target":
                        target_expr = kw.value
                for elt in payload:
                    reason = _live_reason(module, fn, elt, local_sources)
                    if reason is None:
                        continue
                    findings.append(
                        Finding(
                            path=fn.path,
                            line=site.line,
                            col=site.col,
                            rule="FORK-CAPTURE",
                            severity=Severity.ERROR,
                            message=(
                                f"live resource ({reason}) captured in "
                                "Process(args=...); fork duplicates the fd/"
                                "loop into the child -- pass plain wire-codec "
                                "data or multiprocessing primitives instead"
                            ),
                            function=fn.qualname,
                        )
                    )
                if target_expr is None:
                    continue
                callee_chain = dotted_chain(target_expr)
                entry = package.resolve_chain_call(module, fn, callee_chain)
                if entry is None:
                    continue
                offenses = _entry_offenses(package, module, entry)
                if offenses:
                    findings.append(
                        Finding(
                            path=fn.path,
                            line=site.line,
                            col=site.col,
                            rule="FORK-ENTRY",
                            severity=Severity.WARNING,
                            message=(
                                f"worker entry {entry.qualname!r} reaches "
                                "live-resource APIs: "
                                + "; ".join(offenses[:3])
                                + " -- worker entries should only touch "
                                "wire-codec data and the queues/pipes "
                                "they were handed"
                            ),
                            function=fn.qualname,
                        )
                    )
    return findings


__all__ = ["fork_findings"]
