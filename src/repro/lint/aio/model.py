"""Module/package AST models for the async-aware lint pass.

PR 4's ``repro.lint`` analyzes *live* action objects (closures included)
because the DSL builds programs from captured configuration.  The layers
this pass guards -- the asyncio service, the forked campaign runner, the
sharded explorer -- are ordinary module code, so here we model whole
files without importing them: every function's ordered stream of field
accesses, await points, calls, and task-spawn sites, plus per-class and
per-module symbol tables with import-alias resolution.

The model is deliberately *syntactic*: ``self.f`` accesses and
module-global names are tracked; aliased objects (``h = self.f; h.x = 1``)
are not.  Analyzers over-approximate where it is cheap (loop bodies that
contain an await are unrolled twice so cross-iteration interleavings are
visible) and under-approximate where tracking would drown the report in
noise; each analyzer documents its blind spots.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.inference import MUTATORS, dotted_chain

#: asyncio constructors whose instances exist to mediate concurrency;
#: fields holding one are excluded from the shared-state race analysis.
_SYNC_PRIMITIVES = frozenset(
    {
        "Event",
        "Lock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Queue",
        "LifoQueue",
        "PriorityQueue",
        "Barrier",
    }
)

_MAX_REACH_DEPTH = 24


@dataclass(frozen=True)
class Access:
    """One field access, global access, or await point, in program order."""

    kind: str  # "read" | "assign" | "mutate" | "await"
    key: tuple | None  # ("attr", class, field) | ("global", module, name)
    line: int
    col: int
    func: str  # qualname of the function the access occurs in
    path: str  # file the access occurs in (streams inline across modules)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    line: int
    col: int
    chain: tuple[str, ...]  # raw dotted chain, () when not name-rooted
    node: ast.Call
    func: str  # qualname of the enclosing function


@dataclass
class SpawnSite:
    """One place a coroutine or callback is handed to the event loop."""

    line: int
    kind: str  # create_task | ensure_future | gather | server | callback
    callee: tuple[str, ...] | None  # ("self", "m") or ("f",), unresolved
    in_loop: bool  # spawned inside a loop/comprehension


@dataclass
class FuncModel:
    """One function or method: its access stream and outgoing calls."""

    name: str
    qualname: str
    class_name: str | None
    is_async: bool
    path: str
    line: int
    node: ast.AST
    ops: list = field(default_factory=list)  # Access | CallSite, ordered
    spawns: list[SpawnSite] = field(default_factory=list)
    local_names: set[str] = field(default_factory=set)
    declared_globals: set[str] = field(default_factory=set)

    @property
    def calls(self) -> list[CallSite]:
        return [op for op in self.ops if isinstance(op, CallSite)]

    @property
    def accesses(self) -> list[Access]:
        return [op for op in self.ops if isinstance(op, Access)]


@dataclass
class ClassModel:
    """One class: methods plus what its ``self`` fields were built from."""

    name: str
    line: int
    methods: dict[str, FuncModel] = field(default_factory=dict)
    #: fields assigned from an asyncio synchronization primitive
    sync_fields: set[str] = field(default_factory=set)
    #: field -> resolved constructor chain of its first ``self.f = X()``
    field_sources: dict[str, tuple[str, ...]] = field(default_factory=dict)


@dataclass
class ModuleModel:
    """One parsed module: symbol tables plus every function model."""

    path: str
    name: str  # dotted module name
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FuncModel] = field(default_factory=dict)
    classes: dict[str, ClassModel] = field(default_factory=dict)
    module_globals: set[str] = field(default_factory=set)

    def resolve_chain(self, chain: tuple[str, ...]) -> tuple[str, ...]:
        """Rewrite the chain root through the module's import aliases."""
        if chain and chain[0] in self.imports:
            return tuple(self.imports[chain[0]].split(".")) + chain[1:]
        return chain


@dataclass
class PackageModel:
    """All modules of one analyzed package, with cross-module resolution."""

    name: str
    modules: dict[str, ModuleModel] = field(default_factory=dict)

    def _lookup(self, dotted: str) -> FuncModel | None:
        """Resolve ``pkg.module.func`` / ``pkg.module.Class.method``.

        A directory target keys its modules by the directory name
        (``service.cluster``) while the sources import by absolute name
        (``repro.service.cluster``), so a module "matches" when the
        dotted path starts with it *or* contains it at a dot boundary.
        """
        for mod_name, module in self.modules.items():
            if dotted.startswith(mod_name + "."):
                rest = dotted[len(mod_name) + 1 :]
            else:
                at = dotted.find("." + mod_name + ".")
                if at < 0:
                    continue
                rest = dotted[at + len(mod_name) + 2 :]
            if rest in module.functions:
                return module.functions[rest]
            head, _, meth = rest.partition(".")
            cls = module.classes.get(head)
            if cls is not None and meth in cls.methods:
                return cls.methods[meth]
        return None

    def resolve_call(
        self, module: ModuleModel, caller: FuncModel, site: CallSite
    ) -> FuncModel | None:
        """The local/package function a call site targets, if knowable."""
        return self.resolve_chain_call(module, caller, site.chain)

    def resolve_chain_call(
        self,
        module: ModuleModel,
        caller: FuncModel,
        chain: tuple[str, ...],
    ) -> FuncModel | None:
        if not chain or "()" in chain:
            return None
        if chain[0] == "self" and len(chain) == 2:
            if caller.class_name is None:
                return None
            cls = module.classes.get(caller.class_name)
            if cls is not None:
                return cls.methods.get(chain[1])
            return None
        if len(chain) == 1:
            nested = module.functions.get(f"{caller.qualname}.{chain[0]}")
            if nested is not None:
                return nested
            target = module.functions.get(chain[0])
            if target is not None:
                return target
        if len(chain) == 2 and chain[0] in module.classes:
            return module.classes[chain[0]].methods.get(chain[1])
        resolved = module.resolve_chain(chain)
        return self._lookup(".".join(resolved))

    def reach(self, module: ModuleModel, root: FuncModel) -> list[FuncModel]:
        """Functions reachable from ``root`` via resolvable calls."""
        seen: dict[int, FuncModel] = {id(root): root}
        frontier = [(module, root, 0)]
        while frontier:
            mod, fn, depth = frontier.pop()
            if depth >= _MAX_REACH_DEPTH:
                continue
            for site in fn.calls:
                callee = self.resolve_call(mod, fn, site)
                if callee is None or id(callee) in seen:
                    continue
                seen[id(callee)] = callee
                callee_mod = self.module_of(callee)
                if callee_mod is not None:
                    frontier.append((callee_mod, callee, depth + 1))
        return list(seen.values())

    def module_of(self, fn: FuncModel) -> ModuleModel | None:
        for module in self.modules.values():
            if module.path == fn.path:
                return module
        return None


# ---------------------------------------------------------------------------
# model construction
# ---------------------------------------------------------------------------


def _contains_await(node: ast.AST) -> bool:
    """Does this subtree suspend, ignoring nested function bodies?"""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(child, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            return True
        if _contains_await(child):
            return True
    return False


_SPAWN_TAILS = {
    "create_task": "create_task",
    "ensure_future": "ensure_future",
    "gather": "gather",
    "start_server": "server",
    "start_unix_server": "server",
    "call_soon": "callback",
    "call_soon_threadsafe": "callback",
    "call_later": "callback",
    "call_at": "callback",
    "add_done_callback": "callback",
}


class _FuncWalker:
    """Builds one FuncModel's ordered op stream from its AST body."""

    def __init__(self, model: FuncModel, module: ModuleModel):
        self.model = model
        self.module = module
        self.loop_depth = 0

    # -- events -------------------------------------------------------------

    def _emit(self, kind: str, key: tuple | None, node: ast.AST) -> None:
        self.model.ops.append(
            Access(
                kind,
                key,
                node.lineno,
                node.col_offset,
                self.model.qualname,
                self.model.path,
            )
        )

    def _attr_key(self, attr: str) -> tuple:
        return ("attr", self.model.class_name or "", attr)

    def _global_key(self, name: str) -> tuple:
        return ("global", self.module.name, name)

    def _is_module_global(self, name: str) -> bool:
        return (
            name in self.module.module_globals
            and name not in self.model.local_names
        )

    # -- statements ---------------------------------------------------------

    def walk(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs get their own FuncModel
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Global):
            self.model.declared_globals.update(stmt.names)
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            for target in stmt.targets:
                self._assign_target(target)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value)
                self._assign_target(stmt.target)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            self._rmw_target(stmt.target)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._rmw_target(target)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter)
            self._assign_target(stmt.target)
            self._loop_body(stmt, stmt.body, is_async=isinstance(stmt, ast.AsyncFor))
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self._loop_body(stmt, stmt.body, is_async=False)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars)
            if isinstance(stmt, ast.AsyncWith):
                self._emit("await", None, stmt)
            self.walk(stmt.body)
            if isinstance(stmt, ast.AsyncWith):
                self._emit("await", None, stmt)
            return
        if isinstance(stmt, ast.Try):
            self.walk(stmt.body)
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
            return
        if isinstance(stmt, (ast.Expr, ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
            return
        # fall back: visit any expressions in evaluation-ish order
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child)

    def _loop_body(
        self, stmt: ast.stmt, body: list[ast.stmt], is_async: bool
    ) -> None:
        """Unroll await-carrying loop bodies twice so a value read in one
        iteration is visibly stale by the write of the next."""
        rounds = 2 if (is_async or _contains_await(stmt)) else 1
        self.loop_depth += 1
        try:
            for _ in range(rounds):
                if is_async:
                    self._emit("await", None, stmt)
                self.walk(body)
        finally:
            self.loop_depth -= 1

    # -- assignment targets -------------------------------------------------

    def _assign_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt)
            return
        if isinstance(target, ast.Starred):
            self._assign_target(target.value)
            return
        if isinstance(target, ast.Name):
            if target.id in self.model.declared_globals:
                self._emit("assign", self._global_key(target.id), target)
            else:
                self.model.local_names.add(target.id)
            return
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self._emit("assign", self._attr_key(target.attr), target)
            else:
                self._expr(target.value)
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                self._expr(target.slice)
                self._emit("assign", self._attr_key(base.attr), target)
            elif (
                isinstance(base, ast.Name)
                and base.id in self.model.declared_globals
            ):
                self._expr(target.slice)
                self._emit("assign", self._global_key(base.id), target)
            else:
                self._expr(base)
                self._expr(target.slice)
            return
        self._expr(target)

    def _rmw_target(self, target: ast.expr) -> None:
        """AugAssign/Delete: an atomic read-modify-write at one point."""
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                key = self._attr_key(target.attr)
                self._emit("read", key, target)
                self._emit("mutate", key, target)
                return
            self._expr(target.value)
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                key = self._attr_key(base.attr)
                self._expr(target.slice)
                self._emit("read", key, target)
                self._emit("mutate", key, target)
                return
            self._expr(base)
            self._expr(target.slice)
            return
        if isinstance(target, ast.Name):
            if target.id in self.model.declared_globals:
                key = self._global_key(target.id)
                self._emit("read", key, target)
                self._emit("mutate", key, target)
            return
        self._expr(target)

    # -- expressions --------------------------------------------------------

    def _expr(self, node: ast.expr | None) -> None:
        if node is None:
            return
        if isinstance(node, ast.Await):
            self._expr(node.value)
            self._emit("await", None, node)
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                self._emit("read", self._attr_key(node.attr), node)
            else:
                self._expr(node.value)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and self._is_module_global(
                node.id
            ):
                self._emit("read", self._global_key(node.id), node)
            return
        if isinstance(node, ast.Lambda):
            self._expr(node.body)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            self.loop_depth += 1
            try:
                for gen in node.generators:
                    self._expr(gen.iter)
                    self._assign_target(gen.target)
                    for cond in gen.ifs:
                        self._expr(cond)
                if isinstance(node, ast.DictComp):
                    self._expr(node.key)
                    self._expr(node.value)
                else:
                    self._expr(node.elt)
            finally:
                self.loop_depth -= 1
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)

    def _call(self, node: ast.Call) -> None:
        chain = dotted_chain(node.func)
        handled_receiver = False
        if chain and chain[0] == "self" and "()" not in chain:
            if len(chain) >= 3 and chain[-1] in MUTATORS:
                # self.f.append(...) and friends mutate the field in place
                key = self._attr_key(chain[1])
                self._emit("read", key, node)
                self._emit("mutate", key, node)
                handled_receiver = True
            elif len(chain) > 2:
                self._emit("read", self._attr_key(chain[1]), node)
                handled_receiver = True
            elif len(chain) == 2:
                handled_receiver = True  # self.m(...) -> CallSite below
        elif (
            len(chain) == 2
            and chain[-1] in MUTATORS
            and self._is_module_global(chain[0])
        ):
            key = self._global_key(chain[0])
            self._emit("read", key, node)
            self._emit("mutate", key, node)
            handled_receiver = True
        if not chain and not handled_receiver:
            self._expr(node.func)
        for arg in node.args:
            self._expr(arg)
        for kw in node.keywords:
            self._expr(kw.value)
        self.model.ops.append(
            CallSite(
                node.lineno,
                node.col_offset,
                chain,
                node,
                self.model.qualname,
            )
        )
        self._spawn(node, chain)

    def _spawn(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        if not chain or chain[-1] not in _SPAWN_TAILS:
            return
        kind = _SPAWN_TAILS[chain[-1]]
        in_loop = self.loop_depth > 0

        def callee_of(expr: ast.expr) -> tuple[str, ...] | None:
            if isinstance(expr, ast.Call):
                inner = dotted_chain(expr.func)
            else:
                inner = dotted_chain(expr)
            if not inner or "()" in inner:
                return None
            return inner

        if kind == "gather":
            for arg in node.args:
                if isinstance(arg, ast.Starred):
                    continue
                callee = callee_of(arg)
                if callee is not None:
                    self.model.spawns.append(
                        SpawnSite(node.lineno, kind, callee, in_loop)
                    )
            return
        arg_index = 1 if chain[-1] in ("call_later", "call_at") else 0
        if len(node.args) <= arg_index:
            return
        callee = callee_of(node.args[arg_index])
        self.model.spawns.append(SpawnSite(node.lineno, kind, callee, in_loop))


def _collect_imports(tree: ast.Module, module_name: str) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None and node.level == 0:
                continue
            base = node.module or ""
            if node.level:
                parent = module_name.rsplit(".", node.level)[0]
                base = f"{parent}.{base}" if base else parent
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}"
    return imports


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def build_module_model(path: Path, module_name: str) -> ModuleModel:
    """Parse one file into its module model (no imports are executed)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    model = ModuleModel(
        path=str(path),
        name=module_name,
        tree=tree,
        imports=_collect_imports(tree, module_name),
    )
    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        model.module_globals.add(name_node.id)

    def add_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        class_name: str | None,
    ) -> FuncModel:
        fn = FuncModel(
            name=node.name,
            qualname=qualname,
            class_name=class_name,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            path=str(path),
            line=node.lineno,
            node=node,
            local_names=_function_params(node),
        )
        walker = _FuncWalker(fn, model)
        walker.walk(node.body)
        model.functions[qualname] = fn
        for stmt in ast.walk(node):
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt is not node
                and stmt.name not in model.functions
            ):
                # one level of nesting is enough for the spawn patterns used
                add_function(stmt, f"{qualname}.{stmt.name}", class_name)
        return fn

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(stmt, stmt.name, None)
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassModel(name=stmt.name, line=stmt.lineno)
            model.classes[stmt.name] = cls
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{stmt.name}.{item.name}"
                    cls.methods[item.name] = add_function(
                        item, qualname, stmt.name
                    )
            _collect_field_sources(model, cls)
    return model


def _collect_field_sources(model: ModuleModel, cls: ClassModel) -> None:
    """Record what each ``self.f = X()`` field was constructed from."""
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            chain = model.resolve_chain(dotted_chain(node.value.func))
            if not chain:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.field_sources.setdefault(target.attr, chain)
                    if chain[0] == "asyncio" and chain[-1] in _SYNC_PRIMITIVES:
                        cls.sync_fields.add(target.attr)


def package_files(target: str) -> tuple[str, list[tuple[Path, str]]]:
    """Resolve a dotted package name or filesystem path into its files.

    Returns ``(display_name, [(path, dotted_module_name), ...])``.  Dotted
    names resolve through ``importlib`` metadata without executing the
    package's modules; paths are taken as-is (a directory of fixture files
    lints the same way a real package does).
    """
    path = Path(target)
    if path.exists():
        if path.is_file():
            return path.stem, [(path, path.stem)]
        files = sorted(p for p in path.glob("*.py"))
        return path.name, [(p, f"{path.name}.{p.stem}") for p in files]
    spec = importlib.util.find_spec(target)
    if spec is None:
        raise ValueError(f"cannot locate lint package {target!r}")
    if spec.submodule_search_locations:
        root = Path(next(iter(spec.submodule_search_locations)))
        files = sorted(root.glob("*.py"))
        out = []
        for p in files:
            name = target if p.stem == "__init__" else f"{target}.{p.stem}"
            out.append((p, name))
        return target, out
    if spec.origin is None:
        raise ValueError(f"lint package {target!r} has no source files")
    return target, [(Path(spec.origin), target)]


def build_package_model(target: str) -> PackageModel:
    """Build models for every module of one package (or fixture dir)."""
    name, files = package_files(target)
    package = PackageModel(name=name)
    for path, module_name in files:
        package.modules[module_name] = build_module_model(path, module_name)
    return package
