"""Determinism and replay-safety rules for whole-module lint.

Promotes the service-layer determinism audit that previously lived as a
private AST walker in ``tests/service/test_audit.py`` into first-class
catalogue rules, and adds a taint pass for replay escapes:

* **DET-WALLCLOCK** -- ``time.time``/``time.time_ns`` and any
  ``datetime.now/today/utcnow``: a persisted trace must re-validate to
  the same verdict on any machine at any time, so wall clock never feeds
  protocol code.  The *monotonic* clock stays legal -- pacing IO and
  measuring latency is fine -- until it leaks into recorded state, which
  is REPLAY-ESCAPE's job to catch.
* **DET-GLOBALRNG** -- module-level ``random.<fn>()`` draws: the shared
  global RNG is invisible to the campaign's hierarchical seed derivation.
* **DET-UNSEEDED** -- ``random.Random()`` with no seed argument.
* **REPLAY-ESCAPE** -- a nondeterministic value (monotonic/wall clock
  read, global-RNG draw, unseeded RNG, iteration order of a set) flowing
  into recorded trace or decision state (``.event(...)``, ``.mark(...)``,
  ``.on_event(...)``, ``.record(...)`` sinks) without passing through
  ``repro.campaign.record``'s recorder, which is the one blessed channel
  for capturing decisions (and is itself exempt).  Taint is tracked
  per-function through local assignments and f-strings/arithmetic.
"""

from __future__ import annotations

import ast

from repro.lint.aio.model import FuncModel, ModuleModel
from repro.lint.findings import Finding, Severity
from repro.lint.inference import dotted_chain

_WALLCLOCK = {("time", "time"), ("time", "time_ns")}
_DATETIME_TAILS = {"now", "today", "utcnow"}
_MONOTONIC = {
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
}
_SINK_ATTRS = {"event", "mark", "on_event", "record"}
#: the blessed recorder: repro.campaign.record may touch sinks freely
_RECORDER_SUFFIX = "campaign.record"


def _enclosing_function(module: ModuleModel, line: int) -> str:
    best = ""
    best_start = -1
    for fn in module.functions.values():
        end = getattr(fn.node, "end_lineno", fn.line) or fn.line
        if fn.line <= line <= end and fn.line > best_start:
            best, best_start = fn.qualname, fn.line
    return best


def _call_kind(
    module: ModuleModel, node: ast.Call
) -> tuple[str, str] | None:
    """Classify one call: (rule, description) for the DET catalogue."""
    chain = module.resolve_chain(dotted_chain(node.func))
    if not chain or "()" in chain:
        return None
    if tuple(chain[-2:]) in _WALLCLOCK and chain[0] == "time":
        return "DET-WALLCLOCK", f"wall clock {'.'.join(chain)}()"
    if (
        len(chain) >= 2
        and chain[-1] in _DATETIME_TAILS
        and chain[-2] == "datetime"
    ):
        return "DET-WALLCLOCK", f"wall clock {'.'.join(chain)}()"
    if chain[0] == "random" and len(chain) == 2:
        if chain[1] in ("Random", "SystemRandom"):
            if chain[1] == "Random" and not node.args and not node.keywords:
                return "DET-UNSEEDED", "unseeded random.Random()"
            return None
        return "DET-GLOBALRNG", f"global RNG {'.'.join(chain)}()"
    return None


def det_findings(module: ModuleModel) -> list[Finding]:
    """DET-WALLCLOCK / DET-GLOBALRNG / DET-UNSEEDED over one whole module."""
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _call_kind(module, node)
        if kind is None:
            continue
        rule, what = kind
        findings.append(
            Finding(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule=rule,
                severity=Severity.ERROR,
                message=(
                    f"{what}: replayed and revalidated runs must not depend "
                    "on ambient nondeterminism (derive seeds via "
                    "repro.campaign.seeds, timestamps stay out of decisions)"
                ),
                function=_enclosing_function(module, node.lineno),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# REPLAY-ESCAPE taint pass
# ---------------------------------------------------------------------------


def _is_nd_source_call(module: ModuleModel, node: ast.Call) -> str | None:
    chain = module.resolve_chain(dotted_chain(node.func))
    if not chain or "()" in chain:
        return None
    key = tuple(chain[-2:]) if len(chain) >= 2 else ()
    if key in _MONOTONIC and chain[0] == "time":
        return f"{'.'.join(chain)}()"
    if _call_kind(module, node) is not None:
        return f"{'.'.join(chain)}()"
    return None


def _is_set_expr(module: ModuleModel, node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        chain = module.resolve_chain(dotted_chain(node.func))
        return chain in (("set",), ("frozenset",))
    return False


class _TaintWalker(ast.NodeVisitor):
    """Per-function forward taint: ND sources -> locals -> sink arguments."""

    def __init__(self, module: ModuleModel, fn: FuncModel):
        self.module = module
        self.fn = fn
        self.tainted: set[str] = set()
        self.findings: list[Finding] = []

    def _expr_taint(self, node: ast.expr | None) -> str | None:
        """Why this expression is nondeterministic, or None."""
        if node is None:
            return None
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                source = _is_nd_source_call(self.module, sub)
                if source is not None:
                    return source
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in self.tainted:
                    return f"value derived from ND source ({sub.id})"
        return None

    def _taint_target(self, target: ast.expr) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                self.tainted.add(sub.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._expr_taint(node.value) is not None:
            for target in node.targets:
                self._taint_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._expr_taint(node.value) is not None:
            self._taint_target(node.target)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if (
            _is_set_expr(self.module, node.iter)
            or self._expr_taint(node.iter) is not None
        ):
            self._taint_target(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SINK_ATTRS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                why = self._expr_taint(arg)
                if why is not None:
                    self.findings.append(
                        Finding(
                            path=self.fn.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="REPLAY-ESCAPE",
                            severity=Severity.ERROR,
                            message=(
                                f"{why} reaches recorded state via "
                                f".{func.attr}(...) without flowing through "
                                "the repro.campaign.record recorder; replay "
                                "cannot reproduce this value"
                            ),
                            function=self.fn.qualname,
                        )
                    )
                    break
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.fn.node:
            return  # nested defs are walked as their own FuncModel
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


def replay_escape_findings(module: ModuleModel) -> list[Finding]:
    if module.name.endswith(_RECORDER_SUFFIX):
        return []
    findings: list[Finding] = []
    for fn in module.functions.values():
        walker = _TaintWalker(module, fn)
        walker.visit(fn.node)
        findings.extend(walker.findings)
    return findings


__all__ = ["det_findings", "replay_escape_findings"]
