"""repro.lint.aio: static analysis that understands concurrent Python.

PR 4's ``repro.lint`` proves the paper's action contracts for the DSL
layer by abstract interpretation of live action objects.  The layers the
production story now rests on -- the live asyncio lock service, the
forked campaign runner, the sharded explorer, the recovery ladder -- are
ordinary module code with three extra failure axes the DSL never had:
event-loop concurrency, blocking syscalls, and fork inheritance.  This
subpackage lints whole packages *without importing their closures*, via
four analyzer families:

========================  ======  =============================================
rule                      level   meaning
========================  ======  =============================================
AIO-RACE                  error   field read before an await, reassigned after
                                  it, while a concurrently scheduled task also
                                  touches it (asyncio lost-update)
AIO-BLOCK                 error   blocking syscall (sleep/socket/subprocess/
                                  file IO) reachable from ``async def``
DET-WALLCLOCK             error   ``time.time``/``datetime.now`` -- traces must
                                  revalidate identically on any machine
DET-GLOBALRNG             error   module-level ``random.<fn>()`` draw
DET-UNSEEDED              error   ``random.Random()`` with no seed
REPLAY-ESCAPE             error   nondeterministic value reaching recorded
                                  trace/decision state outside the recorder
FORK-CAPTURE              error   live socket/loop/thread in Process(args=...)
FORK-ENTRY                warn    worker entry reaches asyncio/socket/threading
LINT-STALE                warn    suppression comment whose rule no longer fires
========================  ======  =============================================

All findings flow through the shared :class:`~repro.lint.findings.Finding`
pipeline: ``# repro: lint-ok[RULE]`` suppresses at the finding line or the
enclosing ``def`` line, ``--strict`` turns warnings into failures, and
stale suppressions are themselves findings so justifications cannot rot.
Entry points: :func:`lint_package` (one package or fixture directory) and
:func:`~repro.lint.aio.dynamic.cross_check_service` (instrumented live
run asserting observed mutations/concurrency stay inside the inference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.aio.blocking import blocking_findings
from repro.lint.aio.determinism import det_findings, replay_escape_findings
from repro.lint.aio.fork import fork_findings
from repro.lint.aio.model import (
    ModuleModel,
    PackageModel,
    build_module_model,
    build_package_model,
    package_files,
)
from repro.lint.aio.races import race_findings
from repro.lint.findings import Finding

#: rules this package-level pass evaluates (LINT-STALE judges only these)
PACKAGE_RULES = frozenset(
    {
        "AIO-RACE",
        "AIO-BLOCK",
        "DET-WALLCLOCK",
        "DET-GLOBALRNG",
        "DET-UNSEEDED",
        "REPLAY-ESCAPE",
        "FORK-CAPTURE",
        "FORK-ENTRY",
        "LINT-STALE",
    }
)

#: the packages ``repro lint --all`` covers: every layer the replay and
#: revalidation guarantees depend on outside the DSL itself
DEFAULT_PACKAGES = (
    "repro.service",
    "repro.campaign",
    "repro.explore",
    "repro.recovery",
)


@dataclass
class PackageLintResult:
    """One package's lint outcome: files scanned and surviving findings."""

    package: str
    files: list[str] = field(default_factory=list)
    #: post-suppression findings, stale-suppression warnings included
    findings: list[Finding] = field(default_factory=list)
    #: every finding before suppression filtering (for harnesses/tests)
    raw_findings: list[Finding] = field(default_factory=list)


def lint_package(target: str) -> PackageLintResult:
    """Lint one package (dotted name) or directory/file of modules.

    Builds AST models for every module, runs all four analyzer families,
    honours ``lint-ok`` suppressions at finding and ``def`` lines, and
    appends a LINT-STALE warning for every suppression that silenced
    nothing.
    """
    from repro.lint.findings import stale_suppressions
    from repro.lint.rules import filter_suppressed

    package = build_package_model(target)
    findings: list[Finding] = []
    findings.extend(race_findings(package))
    findings.extend(blocking_findings(package))
    findings.extend(fork_findings(package))
    for module in package.modules.values():
        findings.extend(det_findings(module))
        findings.extend(replay_escape_findings(module))

    def_lines: dict[tuple[str, str], int] = {}
    for module in package.modules.values():
        for fn in module.functions.values():
            def_lines[(fn.path, fn.qualname)] = fn.line

    paths = [module.path for module in package.modules.values()]
    active = filter_suppressed(findings, def_lines)
    stale = stale_suppressions(
        paths, findings, def_lines, rules_in_force=PACKAGE_RULES
    )
    return PackageLintResult(
        package=package.name,
        files=paths,
        findings=sorted(set(active) | set(stale)),
        raw_findings=sorted(set(findings)),
    )


__all__ = [
    "DEFAULT_PACKAGES",
    "PACKAGE_RULES",
    "ModuleModel",
    "PackageLintResult",
    "PackageModel",
    "build_module_model",
    "build_package_model",
    "lint_package",
    "package_files",
]
