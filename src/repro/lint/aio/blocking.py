"""AIO-BLOCK: synchronous blocking calls reachable from ``async def``.

A blocking syscall inside a coroutine stalls the *whole* event loop: the
wrapper ticks stop, heartbeats miss, and the live monitor's timing story
degrades for every node in the process.  This detector knows a curated
set of blocking entry points --

* ``time.sleep``
* synchronous ``socket`` construction/resolution
* ``subprocess`` spawns and ``os.system``-style process waits
* synchronous HTTP (``urllib.request.urlopen``, ``requests.*``)
* file IO: builtin ``open``/``input`` and ``Path(...).open/read_*/write_*``

-- and propagates them *interprocedurally*: a sync helper that opens a
file is itself blocking, and every async function that can reach it
through resolvable module/package-local calls is flagged at the call
site, with the call path in the message.  Calls only *referenced* (handed
to ``run_in_executor`` / ``to_thread`` uncalled) never match, so the
standard offloading idioms are clean by construction.
"""

from __future__ import annotations

from repro.lint.aio.model import (
    CallSite,
    FuncModel,
    ModuleModel,
    PackageModel,
)
from repro.lint.findings import Finding, Severity

_SOCKET_CALLS = frozenset(
    {
        "socket",
        "create_connection",
        "create_server",
        "socketpair",
        "getaddrinfo",
        "gethostbyname",
        "gethostbyaddr",
    }
)
_SUBPROCESS_CALLS = frozenset(
    {"run", "call", "check_call", "check_output", "Popen"}
)
_OS_CALLS = frozenset({"system", "popen", "wait", "waitpid"})
_PATH_IO = frozenset(
    {
        "open",
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
    }
)


def blocking_label(
    module: ModuleModel, fn: FuncModel, site: CallSite
) -> str | None:
    """The blocking entry point a call site hits directly, if any."""
    chain = site.chain
    if not chain:
        return None
    resolved = module.resolve_chain(chain)
    if "()" in resolved:
        # method on a constructor result: Path(...).open / .read_text / ...
        j = resolved.index("()")
        base, tail = resolved[:j], resolved[j + 1 :]
        if (
            base
            and base[-1] == "Path"
            and len(tail) == 1
            and tail[0] in _PATH_IO
        ):
            return f"Path().{tail[0]}"
        return None
    if resolved in (("time", "sleep"),):
        return "time.sleep"
    root, tail = resolved[0], resolved[-1]
    if root == "socket" and len(resolved) == 2 and tail in _SOCKET_CALLS:
        return f"socket.{tail}"
    if root == "subprocess" and len(resolved) == 2 and tail in _SUBPROCESS_CALLS:
        return f"subprocess.{tail}"
    if root == "os" and len(resolved) == 2 and tail in _OS_CALLS:
        return f"os.{tail}"
    if root == "requests" and len(resolved) == 2:
        return f"requests.{tail}"
    if resolved == ("urllib", "request", "urlopen"):
        return "urllib.request.urlopen"
    if resolved in (("open",), ("input",)):
        name = resolved[0]
        shadowed = (
            name in fn.local_names
            or name in module.functions
            or name in module.imports
        )
        if not shadowed:
            return f"builtin {name}"
    return None


def _nearest_blocking(
    package: PackageModel,
    module: ModuleModel,
    fn: FuncModel,
    memo: dict,
    stack: frozenset = frozenset(),
) -> list[str] | None:
    """Shortest known call path from ``fn`` to a blocking entry point."""
    if id(fn) in memo:
        return memo[id(fn)]
    if id(fn) in stack:
        return None
    best: list[str] | None = None
    for site in fn.calls:
        label = blocking_label(module, fn, site)
        if label is not None:
            best = [label]
            break
        callee = package.resolve_call(module, fn, site)
        if callee is None or callee.is_async:
            continue
        callee_module = package.module_of(callee) or module
        sub = _nearest_blocking(
            package, callee_module, callee, memo, stack | {id(fn)}
        )
        if sub is not None and (best is None or len(sub) + 1 < len(best)):
            best = [callee.qualname] + sub
    memo[id(fn)] = best
    return best


def blocking_findings(package: PackageModel) -> list[Finding]:
    findings: list[Finding] = []
    memo: dict = {}
    for module in package.modules.values():
        for fn in module.functions.values():
            if not fn.is_async:
                continue
            for site in fn.calls:
                label = blocking_label(module, fn, site)
                path: list[str] | None
                if label is not None:
                    path = [label]
                else:
                    callee = package.resolve_call(module, fn, site)
                    if callee is None or callee.is_async:
                        continue
                    callee_module = package.module_of(callee) or module
                    sub = _nearest_blocking(
                        package, callee_module, callee, memo
                    )
                    path = [callee.qualname] + sub if sub is not None else None
                if path is None:
                    continue
                via = " -> ".join([fn.qualname] + path)
                findings.append(
                    Finding(
                        path=fn.path,
                        line=site.line,
                        col=site.col,
                        rule="AIO-BLOCK",
                        severity=Severity.ERROR,
                        message=(
                            f"blocking call reachable from async def: {via}; "
                            "this stalls the event loop for every node in "
                            "the process -- await an async equivalent or "
                            "offload via run_in_executor"
                        ),
                        function=fn.qualname,
                    )
                )
    return findings


__all__ = ["blocking_findings", "blocking_label"]
