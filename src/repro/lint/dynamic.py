"""Dynamic cross-check: observed access sets vs. the static inference.

The static inference (:mod:`repro.lint.inference`) claims to be a sound
over-approximation: whatever an action actually reads or writes at runtime
must be inside the inferred sets.  This module *tests* that claim by
running a short seeded simulation in which every :class:`~repro.dsl.guards.
LocalView` handed to a guard or body is replaced by a :class:`RecordingView`
proxy, then asserting

    observed reads  ⊆  raw_reads ∪ meta_reads   (``*`` only past a boundary)
    observed writes ⊆  inferred writes

per action.  A violation here means the abstract interpreter has a
soundness bug -- the one kind of lint defect that silently voids the
non-interference proof -- so CI runs this as a smoke test next to the
static pass.

The instrumentation is pure composition: :func:`instrument_program`
rebuilds a :class:`~repro.dsl.program.ProcessProgram` with wrapped
guards/bodies and touches nothing in the runtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.dsl.guards import Effect, GuardedAction, LocalView
from repro.dsl.program import ProcessProgram
from repro.lint.inference import Engine, analyze_action

#: Pseudo-read recorded when an action copies the whole view
#: (``view.as_dict()``) -- typically to feed it through an adapter.
STAR = "*"


class RecordingView(LocalView):
    """A :class:`LocalView` that records every variable it reveals.

    Reads are accumulated into the externally-owned ``reads`` set, so one
    set can collect observations across many view instances (one per
    guard/body evaluation).
    """

    __slots__ = ("_reads",)

    def __init__(self, variables: dict[str, Any], reads: set[str]):
        super().__init__(variables)
        object.__setattr__(self, "_reads", reads)

    def __getattr__(self, name: str) -> Any:
        self._reads.add(name)
        return super().__getattr__(name)

    def __getitem__(self, name: str) -> Any:
        self._reads.add(name)
        return super().__getitem__(name)

    def __contains__(self, name: str) -> bool:
        self._reads.add(name)
        return super().__contains__(name)

    def as_dict(self) -> dict[str, Any]:
        self._reads.add(STAR)
        return super().as_dict()


@dataclass
class ActionObservation:
    """Everything one action was seen to touch across a whole run."""

    name: str
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    guard_evals: int = 0
    body_runs: int = 0


def _instrument_action(
    action: GuardedAction, obs: ActionObservation
) -> GuardedAction:
    guard, body = action.guard, action.body

    def recording_guard(view: LocalView) -> bool:
        obs.guard_evals += 1
        return guard(RecordingView(view.as_dict(), obs.reads))

    def recording_body(view: LocalView) -> Effect:
        obs.body_runs += 1
        effect = body(RecordingView(view.as_dict(), obs.reads))
        obs.writes.update(effect.updates)
        return effect

    return GuardedAction(
        action.name, recording_guard, recording_body, action.message_kind
    )


def instrument_program(
    program: ProcessProgram,
    observations: dict[str, ActionObservation],
) -> ProcessProgram:
    """A behaviourally identical program whose views record accesses.

    ``observations`` is keyed by action name and shared: instrumenting
    several per-process instances of the same program with one dict merges
    their observations, which is exactly what the containment check wants
    (the access *names* are per-program, not per-process).
    """
    def wrap(action: GuardedAction) -> GuardedAction:
        obs = observations.setdefault(
            action.name, ActionObservation(action.name)
        )
        return _instrument_action(action, obs)

    return ProcessProgram(
        program.name,
        program.initial_vars,
        tuple(wrap(a) for a in program.actions),
        tuple(wrap(a) for a in program.receive_actions),
    )


@dataclass
class _StaticSets:
    """Merged static claim for one action name (across process instances)."""

    allowed_reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    star_ok: bool = False
    reads_unknown: bool = False
    writes_unknown: bool = False


def _static_sets_for(
    programs: dict[str, ProcessProgram], engine: Engine
) -> dict[str, _StaticSets]:
    out: dict[str, _StaticSets] = {}
    for program in programs.values():
        for action in program.actions + program.receive_actions:
            sets = analyze_action(action, engine).sets
            static = out.setdefault(action.name, _StaticSets())
            static.allowed_reads |= sets.raw_reads | sets.meta_reads
            static.writes |= sets.writes
            static.star_ok |= sets.boundary_crossed or sets.reads_unknown
            static.reads_unknown |= sets.reads_unknown
            static.writes_unknown |= sets.writes_unknown
    return out


def cross_check(
    algorithm: str,
    n: int = 3,
    steps: int = 300,
    seed: int = 0,
    theta: int = 4,
    wrapped: bool = True,
    engine: Engine | None = None,
) -> dict:
    """Run one instrumented TME simulation and check observed ⊆ inferred.

    Returns a JSON-able result with per-action detail; ``contained`` is the
    overall verdict.  Guards of internal actions are evaluated every step
    by the scheduler, so read sets get exercised even for actions that
    never fire (e.g. the wrapper in a fault-free run).
    """
    from repro.runtime.scheduler import RandomScheduler
    from repro.runtime.simulator import Simulator
    from repro.tme.scenarios import tme_programs
    from repro.tme.wrapper import WrapperConfig

    engine = engine or Engine()
    wrapper = WrapperConfig(theta=theta) if wrapped else None
    programs = tme_programs(algorithm, n, wrapper=wrapper)
    static = _static_sets_for(programs, engine)

    observations: dict[str, ActionObservation] = {}
    instrumented = {
        pid: instrument_program(prog, observations)
        for pid, prog in programs.items()
    }
    simulator = Simulator(
        instrumented,
        RandomScheduler(random.Random(seed)),
        record_states=False,
    )
    simulator.run(steps)

    actions = []
    violations = []
    observed_count = 0
    for name in sorted(observations):
        obs = observations[name]
        claim = static[name]
        if obs.guard_evals or obs.body_runs:
            observed_count += 1
        extra_reads = set()
        if not claim.reads_unknown:
            extra_reads = obs.reads - claim.allowed_reads
            if STAR in extra_reads and claim.star_ok:
                extra_reads.discard(STAR)
        extra_writes = set()
        if not claim.writes_unknown:
            extra_writes = obs.writes - claim.writes
        entry = {
            "action": name,
            "guard_evals": obs.guard_evals,
            "body_runs": obs.body_runs,
            "observed_reads": sorted(obs.reads),
            "observed_writes": sorted(obs.writes),
            "static_reads": sorted(claim.allowed_reads),
            "static_writes": sorted(claim.writes),
            "extra_reads": sorted(extra_reads),
            "extra_writes": sorted(extra_writes),
            "contained": not extra_reads and not extra_writes,
        }
        actions.append(entry)
        if not entry["contained"]:
            violations.append(name)

    program_name = next(iter(sorted(programs)))
    return {
        "program": programs[program_name].name,
        "algorithm": algorithm,
        "n": n,
        "steps": steps,
        "seed": seed,
        "wrapped": wrapped,
        "contained": not violations,
        "violations": violations,
        "actions_observed": observed_count,
        "actions": actions,
    }


__all__ = [
    "STAR",
    "ActionObservation",
    "RecordingView",
    "cross_check",
    "instrument_program",
]
