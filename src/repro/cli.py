"""Command-line interface: ``python -m repro <command>``.

Four commands cover the common workflows without writing any Python:

``run``
    Simulate a TME system (optionally wrapped, optionally under the
    standard fault campaign) and print the full verification bundle.

``experiment``
    Regenerate one of the EXPERIMENTS.md tables (E2-E14) at a chosen
    repetition count.

``figure1``
    Decide the Figure 1 relations and print the verdicts.

``explore``
    Run the unified exploration engine over a TME system's global (or one
    process's local) state space and print the full
    :class:`~repro.explore.ExplorationStats` instrumentation.

Everything is seeded; identical invocations produce identical output.
"""

from __future__ import annotations

import argparse
from collections.abc import Callable, Sequence

EXPERIMENTS: dict[str, tuple[str, str]] = {
    "E2": ("experiment_stabilization", "Theorem 8: W stabilizes RA/Lamport"),
    "E3": ("experiment_deadlock", "Section-4 deadlock, bare vs wrapped"),
    "E4": ("experiment_timeout", "W' timeout sweep"),
    "E5": ("experiment_scaling", "stabilization vs system size"),
    "E6": ("experiment_reuse", "wrapper reuse matrix"),
    "E7": ("experiment_verification_cost", "graybox vs whitebox surfaces"),
    "E8": ("experiment_everywhere", "Theorems 9/10: everywhere implementation"),
    "E9": ("experiment_interference", "Lemma 6: interference freedom"),
    "E10": ("experiment_theorem5", "Theorem 5: Lspec => TME Spec"),
    "E12": ("experiment_synthesis", "automatic wrapper synthesis"),
    "E13": ("experiment_fifo_ablation", "FIFO assumption ablation"),
    "E14": ("experiment_refinement", "basic vs refined wrapper"),
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graybox Stabilization (DSN 2001) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a TME system and verify it")
    run.add_argument(
        "--algorithm",
        default="ra",
        choices=["ra", "ra-count", "lamport", "token"],
    )
    run.add_argument("--n", type=int, default=3, help="number of processes")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--steps", type=int, default=3000)
    run.add_argument(
        "--theta",
        type=int,
        default=None,
        help="attach the wrapper W' with this timeout (omit for bare)",
    )
    run.add_argument(
        "--faults",
        nargs=2,
        type=int,
        metavar=("START", "STOP"),
        default=None,
        help="inject the standard fault campaign in this step window",
    )
    run.add_argument(
        "--grace",
        type=int,
        default=400,
        help="liveness grace horizon for the verdicts",
    )

    exp = sub.add_parser("experiment", help="regenerate an EXPERIMENTS.md table")
    exp.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    exp.add_argument(
        "--seeds",
        type=int,
        default=2,
        help="repetitions per configuration (where applicable)",
    )

    sub.add_parser("figure1", help="decide the Figure 1 relations")

    explore = sub.add_parser(
        "explore",
        help="explore a TME state space and print engine statistics",
    )
    explore.add_argument(
        "--algorithm",
        default="ra",
        choices=["ra", "ra-count", "lamport", "token"],
    )
    explore.add_argument("--n", type=int, default=3, help="number of processes")
    explore.add_argument(
        "--local",
        metavar="PID",
        default=None,
        help="explore this process's local space instead of the global one",
    )
    explore.add_argument("--max-depth", type=int, default=8)
    explore.add_argument("--max-states", type=int, default=200_000)
    explore.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-time budget for the exploration",
    )
    explore.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for global exploration (1 = serial)",
    )
    explore.add_argument(
        "--max-clock",
        type=int,
        default=6,
        help="clock bound for the local message alphabet (with --local)",
    )
    explore.add_argument(
        "--symmetry",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "deduplicate process-permutation orbits: the full symmetric "
            "group for ra/ra-count/lamport, ring rotations for token, "
            "peer permutations with --local (default: off, exact space)"
        ),
    )

    listing = sub.add_parser("list", help="list available experiments")
    del listing
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.tme import (
        WrapperConfig,
        build_simulation,
        standard_fault_campaign,
    )
    from repro.verification import verify_run

    wrapper = WrapperConfig(theta=args.theta) if args.theta is not None else None
    hook = None
    if args.faults is not None:
        start, stop = args.faults
        hook = standard_fault_campaign(seed=args.seed + 1, start=start, stop=stop)
    sim = build_simulation(
        args.algorithm,
        n=args.n,
        seed=args.seed,
        wrapper=wrapper,
        fault_hook=hook,
    )
    label = f"{args.algorithm} n={args.n} seed={args.seed}"
    label += f" wrapper={wrapper.variant_name}" if wrapper else " (bare)"
    print(f"Running {label} for {args.steps} steps...")
    trace = sim.run(args.steps)
    if hook is not None:
        print(f"Faults injected: {len(trace.fault_step_indices())}")
    programs = {pid: proc.program for pid, proc in sim.processes.items()}
    bundle = verify_run(
        trace,
        programs,
        liveness_grace=args.grace,
        check_fcfs=args.algorithm != "token",
    )
    print(bundle.describe())
    return 0 if bundle.convergence.converged else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.analysis as analysis

    fn_name, title = EXPERIMENTS[args.id]
    fn: Callable = getattr(analysis, fn_name)
    seeds = tuple(range(1, args.seeds + 1))
    kwargs = {}
    if "seeds" in fn.__code__.co_varnames:
        kwargs["seeds"] = seeds
    rows = fn(**kwargs)
    analysis.print_table(rows, f"{args.id} -- {title}")
    return 0


def _cmd_figure1() -> int:
    from repro.core import (
        everywhere_implements,
        figure1_A,
        figure1_C,
        implements,
        is_stabilizing_to,
    )

    A, C = figure1_A(), figure1_C()
    for report in (
        implements(C, A),
        is_stabilizing_to(A, A),
        is_stabilizing_to(C, A),
        everywhere_implements(C, A),
    ):
        print(report.describe())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.tme import ClientConfig, tme_programs
    from repro.verification import explore_global, explore_local

    programs = tme_programs(
        args.algorithm, args.n, ClientConfig(think_delay=1, eat_delay=1)
    )
    if args.local is not None:
        if args.local not in programs:
            print(f"unknown pid {args.local!r}; have {sorted(programs)}")
            return 2
        result = explore_local(
            programs[args.local],
            args.local,
            tuple(sorted(programs)),
            kinds=("request", "reply"),
            max_depth=args.max_depth,
            max_clock=args.max_clock,
            max_states=args.max_states,
            max_seconds=args.max_seconds,
            symmetry=args.symmetry,
        )
        surface = f"local space of {args.local}"
    else:
        # The token ring's nxt topology only survives rotations; every
        # other TME algorithm is a pid-template, so the full group is
        # sound (see repro.explore.canon).
        symmetry = None
        if args.symmetry:
            symmetry = "ring" if args.algorithm == "token" else "full"
        result = explore_global(
            programs,
            max_depth=args.max_depth,
            max_states=args.max_states,
            max_seconds=args.max_seconds,
            workers=args.workers,
            symmetry=symmetry,
        )
        surface = "global space"
    print(
        f"{args.algorithm} n={args.n}: {surface}, "
        f"{result.states} distinct states"
    )
    print(result.stats.describe())
    return 0


def _cmd_list() -> int:
    for exp_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
        _fn, title = EXPERIMENTS[exp_id]
        print(f"{exp_id:>4}  {title}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "figure1":
        return _cmd_figure1()
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "list":
        return _cmd_list()
    raise AssertionError(f"unhandled command {args.command!r}")
